"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation pits the paper's design against the alternative it argues
against, on the same data:

1. **typed array payloads vs text leaves** — §3's claim that typed atomic
   values ("native machine form") are the key to performance;
2. **one ArrayElement vs a LeafElement per item** — §4.1's frame
   granularity argument (numerous small frames degrade efficiency);
3. **namespace tokenization vs repeated URIs** — §4.1's symbol-table
   QName references;
4. **accelerated sequential access vs full decode** — §4.1's Size-field
   skipping.
"""

import numpy as np
import pytest

from repro.bxsa import FrameScanner, decode, encode
from repro.workloads.lead import lead_dataset
from repro.xdm import QName, TreeBuilder, array, element, leaf, text

N = 20_000


# ---------------------------------------------------------------------------
# 1. typed array vs text-per-number


def _typed_tree():
    return lead_dataset(N).to_bxdm()


def _text_tree():
    """The same data as an untyped, text-content tree (XML-Infoset style)."""
    ds = lead_dataset(N)
    b = TreeBuilder()
    with b.element("d"):
        with b.element("i"):
            for v in ds.index.tolist():
                b.add(element("i", text(str(v))))
        with b.element("v"):
            for v in ds.values.tolist():
                b.add(element("v", text(repr(v))))
    return b.document.root


class TestTypedVsText:
    def test_encode_typed(self, benchmark):
        tree = _typed_tree()
        blob = benchmark(encode, tree)
        assert len(blob) < N * 13

    def test_encode_text(self, benchmark):
        tree = _text_tree()
        blob = benchmark(encode, tree)
        assert len(blob) > N * 13  # text forms are bigger on the wire too

    def test_size_gap(self):
        typed = len(encode(_typed_tree()))
        texty = len(encode(_text_tree()))
        assert texty > 1.5 * typed


# ---------------------------------------------------------------------------
# 2. one ArrayElement vs a LeafElement per item


def _array_element_tree():
    return element("d", array("v", lead_dataset(N).values, item_name="v"))


def _leaf_per_item_tree():
    ds = lead_dataset(N)
    b = TreeBuilder()
    with b.element("d"):
        with b.element("v"):
            for v in ds.values.tolist():
                b.leaf("v", v, "double")
    return b.document.root


class TestArrayVsLeafFrames:
    def test_encode_array_element(self, benchmark):
        tree = _array_element_tree()
        benchmark(encode, tree)

    def test_encode_leaf_per_item(self, benchmark):
        tree = _leaf_per_item_tree()
        benchmark(encode, tree)

    def test_decode_array_element(self, benchmark):
        blob = encode(_array_element_tree())
        benchmark(decode, blob)

    def test_decode_leaf_per_item(self, benchmark):
        blob = encode(_leaf_per_item_tree())
        benchmark(decode, blob)

    def test_frame_overhead_gap(self):
        """Per-item frames pay a header per number; the array frame one
        header per million numbers."""
        array_size = len(encode(_array_element_tree()))
        leaf_size = len(encode(_leaf_per_item_tree()))
        assert leaf_size > 1.5 * array_size


# ---------------------------------------------------------------------------
# 3. namespace tokenization


def _namespaced_tree(n_elements: int = 2_000, *, declare_everywhere: bool) -> object:
    """A deep chain of qualified elements.

    With ``declare_everywhere=False`` (the paper's design) the namespace is
    declared once at the root and every descendant references it by
    (scope depth, index); with ``True`` every element re-declares it —
    the wire then repeats the URI string per element.
    """
    uri = "urn:example:quite/a/long/namespace/uri/for/science"
    b = TreeBuilder()
    with b.element(QName("root", uri, "p"), namespaces={"p": uri}):
        for _ in range(n_elements):
            kwargs = {"namespaces": {"p": uri}} if declare_everywhere else {}
            b.start_element(QName("e", uri, "p"), **kwargs)
        for _ in range(n_elements):
            b.end_element()
    return b.document


class TestNamespaceTokenization:
    def test_encode_tokenized(self, benchmark):
        tree = _namespaced_tree(declare_everywhere=False)
        blob = benchmark(encode, tree)
        assert blob.count(b"urn:example") == 1  # the URI travels once

    def test_encode_redeclared(self, benchmark):
        tree = _namespaced_tree(declare_everywhere=True)
        blob = benchmark(encode, tree)
        assert blob.count(b"urn:example") > 1_000

    def test_size_gap(self):
        tokenized = len(encode(_namespaced_tree(declare_everywhere=False)))
        redeclared = len(encode(_namespaced_tree(declare_everywhere=True)))
        assert redeclared > 3 * tokenized


# ---------------------------------------------------------------------------
# 4. accelerated sequential access


@pytest.fixture(scope="module")
def wide_document():
    """A body whose last child hides behind many large array siblings."""
    children = [array(f"a{i}", np.arange(50_000, dtype="f8")) for i in range(20)]
    children.append(leaf("needle", 42, "int"))
    return encode(element("body", *children))


class TestAcceleratedAccess:
    def test_scanner_skips_to_needle(self, benchmark, wide_document):
        scanner = FrameScanner(wide_document)

        def find():
            info = scanner.find_child_named(0, "needle")
            return scanner.decode_frame(info.start)

        node = benchmark(find)
        assert node.value == 42

    def test_full_decode_then_search(self, benchmark, wide_document):
        def find():
            root = decode(wide_document)
            return [c for c in root.elements() if c.name.local == "needle"][0]

        node = benchmark(find)
        assert node.value == 42

    def test_scanner_is_faster(self, wide_document):
        """Not a timing assert (the harness handles those) — a structural
        one: scanning touches only headers, so it must not materialize any
        array values."""
        scanner = FrameScanner(wide_document)
        names = [
            scanner.element_name(i.start)
            for i in scanner.children(0)
        ]
        assert names[-1] == "needle"
