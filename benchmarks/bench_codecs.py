"""Micro-benchmarks of the individual codecs on the evaluation dataset.

These decompose the figure-level results: the XML float↔ASCII conversion
cost the paper identifies as *the* SOAP bottleneck shows up here directly
as the gap between the xml and bxsa rows at equal model size.
"""

import pytest

from repro.bxsa.decoder import decode as bxsa_decode
from repro.bxsa.encoder import encode as bxsa_encode
from repro.netcdf.reader import read_dataset_bytes
from repro.netcdf.writer import write_dataset_bytes
from repro.workloads.lead import lead_dataset
from repro.xmlcodec.parser import parse_document
from repro.xmlcodec.serializer import serialize

SIZES = [1_000, 87_360]


@pytest.fixture(scope="module", params=SIZES, ids=lambda n: f"n={n}")
def dataset(request):
    return lead_dataset(request.param)


class TestBXSA:
    def test_encode(self, benchmark, dataset):
        doc = dataset.to_document()
        blob = benchmark(bxsa_encode, doc)
        assert len(blob) >= dataset.native_bytes

    def test_decode(self, benchmark, dataset):
        blob = bxsa_encode(dataset.to_document())
        out = benchmark(bxsa_decode, blob)
        assert out.root.name.local == "d"


class TestXML:
    def test_serialize_typed(self, benchmark, dataset):
        doc = dataset.to_document()
        xml = benchmark(serialize, doc)
        assert "bx:Array" in xml

    def test_parse_typed(self, benchmark, dataset):
        xml = serialize(dataset.to_document())
        out = benchmark(parse_document, xml)
        assert out.root.name.local == "d"

    def test_serialize_untyped(self, benchmark, dataset):
        doc = dataset.to_document()
        xml = benchmark(serialize, doc, emit_types=False)
        assert xml.startswith("<d>")


class TestNetCDF:
    def test_write(self, benchmark, dataset):
        ds = dataset.to_netcdf()
        blob = benchmark(write_dataset_bytes, ds)
        assert blob[:3] == b"CDF"

    def test_read(self, benchmark, dataset):
        blob = write_dataset_bytes(dataset.to_netcdf())
        out = benchmark(read_dataset_bytes, blob)
        assert "values" in out.variables


class TestVerification:
    def test_verify(self, benchmark, dataset):
        record = benchmark(dataset.verify)
        assert record["ok"]
