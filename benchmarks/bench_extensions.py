"""Extension experiments: the paper's untested assertions, benchmarked.

* **Extension A** — the skipped attachment solution (§6 footnote 1),
  raw-binary vs base64 packaging against the Figure 5 baselines;
* **Extension B** — the RTT sweep interpolating Figures 5 and 6, locating
  the crossover where GridFTP's parallel streams start to pay.
"""

from benchmarks.conftest import quick_mode, spool_result
from repro.harness import extension_attachments, extension_rtt


def test_extension_attachments(benchmark, results_dir):
    sizes = [1365, 21840] if quick_mode() else None
    result = benchmark.pedantic(
        extension_attachments.run, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    spool_result(results_dir, "extension_attachments", result.render())
    if not quick_mode():
        assert result.all_checks_pass, result.render()


def test_extension_rtt_sweep(benchmark, results_dir):
    kwargs = {}
    if quick_mode():
        kwargs = {"rtts": [0.0002, 0.00575], "model_size": 349_440}
    result = benchmark.pedantic(extension_rtt.run, kwargs=kwargs, rounds=1, iterations=1)
    spool_result(results_dir, "extension_rtt", result.render())
    if not quick_mode():
        assert result.checks[0].passed and result.checks[1].passed, result.render()


def test_compression_is_no_substitute(benchmark, results_dir):
    """The §2 'compressed representation' alternative, quantified: deflate
    narrows XML's size gap but cannot remove the conversion CPU."""
    import time

    from repro.core import BXSAEncoding, DeflateEncoding, XMLEncoding
    from repro.workloads.lead import lead_dataset

    dataset = lead_dataset(87_360)
    doc = dataset.to_document()
    rows = []
    for label, encoding in (
        ("xml", XMLEncoding()),
        ("xml+deflate", DeflateEncoding(XMLEncoding())),
        ("bxsa", BXSAEncoding()),
        ("bxsa+deflate", DeflateEncoding(BXSAEncoding())),
    ):
        start = time.perf_counter()
        payload = encoding.encode(doc)
        encode_time = time.perf_counter() - start
        start = time.perf_counter()
        encoding.decode(payload)
        decode_time = time.perf_counter() - start
        rows.append(
            [label, str(len(payload)), f"{encode_time * 1e3:.1f}", f"{decode_time * 1e3:.1f}"]
        )

    from repro.harness.report import render_table

    table = render_table(["encoding", "bytes", "encode ms", "decode ms"], rows)
    spool_result(results_dir, "extension_compression", table)

    sizes = {row[0]: int(row[1]) for row in rows}
    decode_ms = {row[0]: float(row[3]) for row in rows}
    # deflate shrinks XML a lot...
    assert sizes["xml+deflate"] < sizes["xml"] / 2
    # ...but the decode CPU stays text-bound, far above BXSA's
    assert decode_ms["xml+deflate"] > 5 * decode_ms["bxsa"]

    def roundtrip():
        encoding = DeflateEncoding(XMLEncoding())
        encoding.decode(encoding.encode(doc))

    benchmark(roundtrip)
