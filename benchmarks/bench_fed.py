"""Federated data-plane benchmarks: goodput scaling and cache-hit cost.

Figure F's two quantitative claims, pinned to
``benchmarks/results/fed.json`` for ``tools/bench_guard.py``:

* ``fed_vs_single_goodput`` — the same offered rate driven at one node
  and at a 3-node federation (real ``repro.fed.node`` processes over
  TCP, backend-bound ``Work`` exchanges).  The single node saturates
  its worker pool and sheds; the federation must sustain at least 1.5x
  the single node's goodput while completing the full offered load.
  Measured ~2.3x full / ~2.0x quick; the floor leaves noise room
  without letting the scaling claim rot.
* ``cache_hit_us`` — one warm hit through :class:`CachingClient`
  (content-address the envelope, look it up, return the cached
  response; **zero** upstream exchanges, asserted against the
  balancer's request counter).  Measured ~70 µs, dominated by encoding
  the request for its digest; the ceiling is a loose absolute bound
  only a complexity regression (per-hit upstream call, lock convoy,
  re-encode of the response) would blow.

The floor/ceiling are duplicated in ``tools/bench_guard.py``
(``FED_FLOORS`` / ``FED_CEILINGS``) so a stale ``fed.json`` from a
regressed run fails CI even if this module is skipped.
"""

import json
import time

import pytest

from repro.core.envelope import SoapEnvelope
from repro.fed import (
    Balancer,
    CachingClient,
    FederatedClient,
    Replica,
    ResponseCache,
)
from repro.fed.node import fed_dispatcher
from repro.harness.figure_fed import federation_goodput
from repro.serve import ServeConfig, SoapServeService
from repro.transport.memory import MemoryNetwork
from repro.xdm import element, leaf

from benchmarks.conftest import quick_mode

pytestmark = pytest.mark.bench

HIT_OPS = 1_000 if quick_mode() else 5_000
GOODPUT_RATE = 200.0 if quick_mode() else 220.0
GOODPUT_TOTAL = 200 if quick_mode() else 440

#: Floor/ceiling — keep in sync with tools/bench_guard.py.
MIN_FED_VS_SINGLE_GOODPUT = 1.5
MAX_CACHE_HIT_US = 300.0


def _measure_cache_hit_us() -> float:
    """Median-free steady-state cost of one warm cache hit, microseconds."""
    network = MemoryNetwork()
    service = SoapServeService(
        network.listen("bench-fed"),
        fed_dispatcher(blob_size=1 << 12),
        config=ServeConfig(workers=2, queue_depth=8),
    ).start()
    try:
        balancer = Balancer([Replica("bench-fed", lambda: network.connect("bench-fed"))])
        client = CachingClient(
            FederatedClient(balancer), ResponseCache(ttl_seconds=None)
        )
        envelope = SoapEnvelope.wrap(element("Echo", leaf("n", 1, "int")))
        client.call(envelope)  # the one allowed miss
        upstream = balancer.upstream_requests
        start = time.perf_counter()
        for _ in range(HIT_OPS):
            client.call(envelope)
        per_hit = (time.perf_counter() - start) / HIT_OPS
        assert balancer.upstream_requests == upstream, (
            "warm hits made upstream exchanges — the cache is not in the path"
        )
        client.close()
        return per_hit * 1e6
    finally:
        service.stop()


class TestFedPins:
    def test_fed_pins(self, results_dir):
        cache_hit_us = _measure_cache_hit_us()
        goodput = federation_goodput(
            rate=GOODPUT_RATE, total=GOODPUT_TOTAL, seed=0
        )
        ratio = goodput["fed_vs_single_goodput"]
        print(
            f"\ncache hit {cache_hit_us:.1f}us, single "
            f"{goodput['single']['goodput_rps']:.0f} rps (shed "
            f"{goodput['single']['shed']}), federation "
            f"{goodput['federation']['goodput_rps']:.0f} rps -> {ratio:.2f}x"
        )

        measured = {
            "fed_vs_single_goodput": ratio,
            "cache_hit_us": cache_hit_us,
            "single_goodput_rps": goodput["single"]["goodput_rps"],
            "fed_goodput_rps": goodput["federation"]["goodput_rps"],
            "single_shed": goodput["single"]["shed"],
            "fed_failed": goodput["federation"]["failed"],
        }
        document = {"quick": quick_mode(), "measured": measured}
        (results_dir / "fed.json").write_text(json.dumps(document, indent=2) + "\n")

        assert goodput["single"]["accounting_exact"]
        assert goodput["federation"]["accounting_exact"]
        assert goodput["single"]["shed"] > 0, (
            "the single node never saturated — the comparison measures nothing"
        )
        assert goodput["federation"]["failed"] == 0
        assert ratio >= MIN_FED_VS_SINGLE_GOODPUT, (
            f"federation goodput is {ratio:.2f}x the saturated single node "
            f"(floor {MIN_FED_VS_SINGLE_GOODPUT:.1f}x)"
        )
        assert cache_hit_us <= MAX_CACHE_HIT_US, (
            f"warm cache hit costs {cache_hit_us:.1f}us "
            f"(ceiling {MAX_CACHE_HIT_US:.0f}us)"
        )
