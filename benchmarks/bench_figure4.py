"""Regenerates Figure 4: LAN response time for small datasets.

The full paper sweep (model size 0→1000, four schemes) runs once inside the
benchmark; the rendered series table and shape verdicts are spooled to
``benchmarks/results/figure4.txt``.
"""

from benchmarks.conftest import quick_mode, spool_result
from repro.harness import figure4


def test_figure4_regeneration(benchmark, results_dir):
    sizes = [0, 500, 1000] if quick_mode() else None
    result = benchmark.pedantic(
        figure4.run, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    spool_result(results_dir, "figure4", result.render())
    assert result.all_checks_pass, result.render()
