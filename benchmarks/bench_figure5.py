"""Regenerates Figure 5: LAN bandwidth for large datasets (16 KB → 64 MB).

Runs the full paper sweep once (six series including the slow XML/HTTP one)
and spools the rendered table + shape verdicts to
``benchmarks/results/figure5.txt``.
"""

from benchmarks.conftest import quick_mode, spool_result
from repro.harness import figure5


def test_figure5_regeneration(benchmark, results_dir):
    kwargs = {}
    if quick_mode():
        kwargs = {"sizes": [1365, 21840, 349440], "xml_size_cap": 21840}
    result = benchmark.pedantic(figure5.run, kwargs=kwargs, rounds=1, iterations=1)
    spool_result(results_dir, "figure5", result.render())
    if not quick_mode():
        assert result.all_checks_pass, result.render()
