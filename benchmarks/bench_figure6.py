"""Regenerates Figure 6: WAN bandwidth for large datasets — the partial flip
where GridFTP's parallel streams overtake every single-stream scheme.

Spools the rendered table + shape verdicts to
``benchmarks/results/figure6.txt``.
"""

from benchmarks.conftest import quick_mode, spool_result
from repro.harness import figure6


def test_figure6_regeneration(benchmark, results_dir):
    sizes = [1365, 21840, 349440] if quick_mode() else None
    result = benchmark.pedantic(
        figure6.run, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    spool_result(results_dir, "figure6", result.render())
    if not quick_mode():
        assert result.all_checks_pass, result.render()
