"""Benchmarks of the GridFTP-like substrate: handshake and striped pulls."""

import itertools

import pytest

from repro.gridftp import GridFTPClient, GridFTPServer, HostCredential
from repro.transport import MemoryNetwork


@pytest.fixture(scope="module")
def grid():
    net = MemoryNetwork()
    credential = HostCredential.generate()
    counter = itertools.count()

    def data_listener_factory():
        name = f"bd{next(counter)}"
        return name, net.listen(name)

    server = GridFTPServer(net.listen("bgftp"), data_listener_factory, credential)
    server.publish("/blob", b"\xab" * (4 * 1024 * 1024))
    server.start()
    yield net, credential
    server.stop()


def test_session_setup(benchmark, grid):
    """Connect + GSI-style handshake + QUIT (the per-request fixed cost)."""
    net, credential = grid

    def session():
        client = GridFTPClient(lambda: net.connect("bgftp"), net.connect, credential)
        client.quit()

    benchmark(session)


@pytest.mark.parametrize("n_streams", [1, 4, 16])
def test_striped_retrieve_4mb(benchmark, grid, n_streams):
    net, credential = grid

    def fetch():
        client = GridFTPClient(lambda: net.connect("bgftp"), net.connect, credential)
        try:
            return client.retrieve("/blob", n_streams)
        finally:
            client.quit()

    blob = benchmark(fetch)
    assert len(blob) == 4 * 1024 * 1024
