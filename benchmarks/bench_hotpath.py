"""Hot-path codec benchmarks: warm CodecSession vs cold stateless codec.

Pins the speedup ratios the compiled-plan/session work exists for, on the
Figure 5 payload (a SOAP-wrapped doubles array from the LEAD workload):

* ``encode``   — session plan replay vs a fresh stateless encode per message
* ``decode``   — session decode-plan replay vs stateless decode
* ``roundtrip``— encode + decode, warm vs cold

Ratios (cold/warm, >1 means the session wins) are written to
``benchmarks/results/hotpath.json`` for ``tools/bench_guard.py`` to compare
across runs, plus a rendered ``hotpath.txt``.  The acceptance bar — warm
encode at least 2x the cold encoder on the smallest Figure 5 size, where
per-message interpreter overhead (not array memcpy) dominates — is asserted
here directly.  Byte compatibility is asserted on every measured message.
"""

import json

import pytest

from repro.bxsa import CodecSession, decode, encode
from repro.harness.measure import median_seconds, timed_median
from repro.workloads.lead import lead_dataset

from benchmarks.conftest import quick_mode

pytestmark = pytest.mark.bench

#: Figure 5 sweep prefix; the small end is where plan replay pays off and
#: the large end shows the ratio converging to 1 as memcpy dominates.
SIZES = [1365] if quick_mode() else [1365, 5460, 21840, 87360]
#: Acceptance criteria at SIZES[0], where per-message interpreter overhead
#: (not array memcpy) dominates: warm-session encode, decode-plan replay
#: (the ISSUE 6 bar: ≥1.8x with self-verification on) and the roundtrip.
MIN_ENCODE_SPEEDUP = 2.0
MIN_DECODE_SPEEDUP = 1.8
MIN_ROUNDTRIP_SPEEDUP = 1.9
#: Absolute ceiling on the warm per-message decode at SIZES[0], enforced by
#: tools/bench_guard.py as a fixed bound (complexity-regression tripwire,
#: not a noise-sensitive rolling pin).  Keep in sync with bench_guard's
#: HOTPATH_CEILINGS.
WARM_DECODE_US_CEILING = 60.0
#: Same sample counts in quick and full mode: the guarded ratios come from
#: SIZES[0] (microseconds per run), so quick mode only trims the sweep —
#: pinned numbers stay comparable across modes for tools/bench_guard.py.
REPEATS = 30
ROUNDS = 5


def _interleaved_medians(pairs: dict) -> dict:
    """Median runtime per label, measured in interleaved rounds.

    Alternating cold/warm within each round cancels slow drift (thermal,
    allocator growth, background load) that sequential measurement would
    attribute to whichever side ran later — the ratio, not the absolute
    time, is what this benchmark pins.
    """
    samples: dict = {label: [] for label in pairs}
    for _ in range(ROUNDS):
        for label, fn in pairs.items():
            samples[label].append(timed_median(fn, REPEATS, scale=False)[0])
    return {label: median_seconds(times) for label, times in samples.items()}


def _ratios_for(size: int) -> dict:
    document = lead_dataset(size).to_document()
    session = CodecSession()

    warm_blob = session.encode(document)
    cold_blob = encode(document)
    assert warm_blob == cold_blob, "warm session output must be byte-identical"
    # warm output decodes with a stateless decoder (wire compatibility)
    assert encode(decode(warm_blob)) == cold_blob

    medians = _interleaved_medians(
        {
            "cold_encode": lambda: encode(document),
            "warm_encode": lambda: session.encode(document),
            "cold_decode": lambda: decode(cold_blob),
            "warm_decode": lambda: session.decode(cold_blob),
            "cold_roundtrip": lambda: decode(encode(document)),
            "warm_roundtrip": lambda: session.decode(session.encode(document)),
        }
    )
    cold_encode = medians["cold_encode"]
    warm_encode = medians["warm_encode"]
    cold_decode = medians["cold_decode"]
    warm_decode = medians["warm_decode"]
    cold_roundtrip = medians["cold_roundtrip"]
    warm_roundtrip = medians["warm_roundtrip"]

    assert session.stats.poisoned_shapes == 0
    assert session.stats.plan_hits > 0
    # the decode side must have ridden verified plan replay, not fallbacks
    assert session.stats.decode_plan_hits > 0
    assert session.stats.decode_poisoned == 0
    return {
        "model_size": size,
        "cold_encode_us": cold_encode * 1e6,
        "warm_encode_us": warm_encode * 1e6,
        "cold_decode_us": cold_decode * 1e6,
        "warm_decode_us": warm_decode * 1e6,
        "encode_speedup": cold_encode / warm_encode,
        "decode_speedup": cold_decode / warm_decode,
        "roundtrip_speedup": cold_roundtrip / warm_roundtrip,
    }


def _render(rows: list[dict]) -> str:
    header = (
        f"{'n':>8} {'cold enc us':>12} {'warm enc us':>12} "
        f"{'cold dec us':>12} {'warm dec us':>12} "
        f"{'enc x':>7} {'dec x':>7} {'rt x':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['model_size']:>8} {row['cold_encode_us']:>12.1f} "
            f"{row['warm_encode_us']:>12.1f} {row['cold_decode_us']:>12.1f} "
            f"{row['warm_decode_us']:>12.1f} {row['encode_speedup']:>7.2f} "
            f"{row['decode_speedup']:>7.2f} {row['roundtrip_speedup']:>7.2f}"
        )
    return "\n".join(lines)


class TestHotPath:
    def test_warm_session_speedups(self, results_dir):
        rows = [_ratios_for(size) for size in SIZES]
        rendered = _render(rows)
        print("\n" + rendered)
        (results_dir / "hotpath.txt").write_text(rendered + "\n")
        pinned = {
            "quick": quick_mode(),
            "sizes": SIZES,
            "rows": rows,
            # the guarded ratios: measured at the smallest size, where the
            # session's win is structural rather than noise
            "pinned": {
                "encode_speedup": rows[0]["encode_speedup"],
                "decode_speedup": rows[0]["decode_speedup"],
                "roundtrip_speedup": rows[0]["roundtrip_speedup"],
            },
            # absolute values bench_guard checks against fixed ceilings
            "measured": {
                "warm_decode_us": rows[0]["warm_decode_us"],
            },
        }
        (results_dir / "hotpath.json").write_text(json.dumps(pinned, indent=2) + "\n")
        assert rows[0]["encode_speedup"] >= MIN_ENCODE_SPEEDUP, (
            f"warm encode speedup {rows[0]['encode_speedup']:.2f}x at "
            f"n={SIZES[0]} below the {MIN_ENCODE_SPEEDUP:.1f}x acceptance bar"
        )
        assert rows[0]["decode_speedup"] >= MIN_DECODE_SPEEDUP, (
            f"warm decode speedup {rows[0]['decode_speedup']:.2f}x at "
            f"n={SIZES[0]} below the {MIN_DECODE_SPEEDUP:.1f}x acceptance bar"
        )
        assert rows[0]["roundtrip_speedup"] >= MIN_ROUNDTRIP_SPEEDUP, (
            f"warm roundtrip speedup {rows[0]['roundtrip_speedup']:.2f}x at "
            f"n={SIZES[0]} below the {MIN_ROUNDTRIP_SPEEDUP:.1f}x acceptance bar"
        )
        assert rows[0]["warm_decode_us"] <= WARM_DECODE_US_CEILING
