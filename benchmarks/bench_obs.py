"""Overhead benchmarks for the repro.obs instrumentation layer.

The acceptance bar: with tracing *disabled* (the default null recorder),
the instrumented BXSA encode hot path must stay within 5% of the raw
encoder — the figures' measured-CPU numbers may not move because the
library grew observability hooks.

The labelled-metrics and sampling additions get their own pins, written
to ``benchmarks/results/obs.json`` for ``tools/bench_guard.py``:

* a labelled counter increment (the dict-keyed family lookup) may cost at
  most :data:`MAX_LABELLED_RATIO` times an unlabelled one;
* one :meth:`HeadSampler.decide` (a CRC32 over the key) and one
  disabled-path ``obs.counter(...).add()`` site must each stay under
  microseconds — the budgets are deliberately loose absolute ceilings
  that only a complexity regression (per-call allocation, lock
  contention, accidental O(n)) would blow.
"""

import json
import time

import pytest

from repro import obs
from repro.bxsa.encoder import encode as raw_bxsa_encode
from repro.core.policies import BXSAEncoding
from repro.harness.measure import median_seconds, timed_median
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import HeadSampler
from repro.workloads.lead import lead_dataset

from benchmarks.conftest import quick_mode

pytestmark = pytest.mark.bench

SIZE = 5_000 if quick_mode() else 87_360
#: Overhead bound on the disabled path (acceptance criterion: < 5%).
MAX_DISABLED_OVERHEAD = 0.05
#: Labelled counter increment vs unlabelled, worst acceptable ratio.
MAX_LABELLED_RATIO = 10.0
#: Absolute per-op ceilings, microseconds (see module docstring).
MAX_SAMPLER_DECIDE_US = 10.0
MAX_DISABLED_SITE_US = 5.0


@pytest.fixture(scope="module")
def document():
    return lead_dataset(SIZE).to_document()


def _median_runtime(fn, repeats=15):
    seconds, _ = timed_median(fn, repeats, scale=False)
    return seconds


class TestDisabledOverhead:
    def test_null_recorder_is_active_by_default(self):
        assert obs.get_recorder() is obs.NULL_RECORDER

    def test_bxsa_encode_overhead_under_5_percent(self, document):
        """Instrumented policy encode vs the raw encoder, tracing off.

        Interleaved measurement rounds cancel slow drift (thermal, GC);
        the medians of the per-round medians are compared.
        """
        # session=False keeps both sides on the stateless encoder — this
        # test isolates instrumentation overhead, not warm-plan replay
        policy = BXSAEncoding(session=False)
        raw, instrumented = [], []
        for _ in range(5):
            raw.append(_median_runtime(lambda: raw_bxsa_encode(document)))
            instrumented.append(_median_runtime(lambda: policy.encode(document)))
        raw_s = median_seconds(raw)
        inst_s = median_seconds(instrumented)
        overhead = inst_s / raw_s - 1.0
        print(
            f"\nbxsa encode n={SIZE}: raw {raw_s * 1e6:.1f}us, "
            f"instrumented {inst_s * 1e6:.1f}us, overhead {overhead * 100:+.2f}%"
        )
        assert overhead < MAX_DISABLED_OVERHEAD, (
            f"disabled-path overhead {overhead * 100:.2f}% exceeds "
            f"{MAX_DISABLED_OVERHEAD * 100:.0f}%"
        )

    def test_disabled_span_site_costs_nanoseconds(self, benchmark):
        def instrumented_noop():
            with obs.span("bench.noop") as sp:
                sp.set("k", 1)

        benchmark(instrumented_noop)


class TestEnabledPath:
    def test_bxsa_encode_while_recording(self, benchmark, document):
        """The enabled path is allowed to cost more — this pins how much."""
        policy = BXSAEncoding()
        with obs.recording(obs.TraceRecorder()):
            benchmark(policy.encode, document)

    def test_span_open_close_while_recording(self, benchmark):
        with obs.recording(obs.TraceRecorder()) as rec:
            def one_span():
                with rec.span("bench.span"):
                    pass

            benchmark(one_span)


def _per_op_seconds(fn, ops: int, rounds: int = 5) -> float:
    """Median over rounds of (wall time of ``fn()`` / ops)."""
    samples = []
    fn()  # warmup
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) / ops)
    return median_seconds(samples)


class TestTelemetryOverhead:
    """Pins for the labelled-metrics and sampling additions."""

    OPS = 20_000 if quick_mode() else 200_000

    def test_labelled_and_sampler_pins(self, results_dir):
        ops = self.OPS

        registry = MetricsRegistry()

        # both sides pay the realistic call-site shape — one registry
        # lookup per increment — so the ratio isolates the label machinery
        def unlabelled():
            counter = registry.counter
            for _ in range(ops):
                counter("bench_plain_total").add()

        def labelled():
            counter = registry.counter
            for _ in range(ops):
                counter(
                    "bench_labelled_total", labels={"op": "echo", "status": "ok"}
                ).add()

        unlabelled_s = _per_op_seconds(unlabelled, ops)
        labelled_s = _per_op_seconds(labelled, ops)
        ratio = labelled_s / unlabelled_s

        sampler = HeadSampler(0.5, seed=1)
        keys = [f"figure5-scheme-n{i}" for i in range(64)]

        def decide():
            decide_one = sampler.decide
            for i in range(ops):
                decide_one(keys[i & 63])

        sampler_s = _per_op_seconds(decide, ops)

        assert obs.get_recorder() is obs.NULL_RECORDER

        def disabled_site():
            counter = obs.counter
            for _ in range(ops):
                counter("bench_disabled_total").add()

        disabled_s = _per_op_seconds(disabled_site, ops)

        print(
            f"\nlabelled {labelled_s * 1e9:.0f}ns vs unlabelled "
            f"{unlabelled_s * 1e9:.0f}ns ({ratio:.1f}x); sampler.decide "
            f"{sampler_s * 1e9:.0f}ns; disabled site {disabled_s * 1e9:.0f}ns"
        )

        measured = {
            "labelled_vs_unlabelled_ratio": ratio,
            "sampler_decide_us": sampler_s * 1e6,
            "disabled_counter_site_us": disabled_s * 1e6,
        }
        (results_dir / "obs.json").write_text(
            json.dumps({"quick": quick_mode(), "measured": measured}, indent=2) + "\n"
        )

        assert ratio <= MAX_LABELLED_RATIO, (
            f"labelled counter costs {ratio:.1f}x an unlabelled one "
            f"(ceiling {MAX_LABELLED_RATIO:.0f}x)"
        )
        assert sampler_s * 1e6 <= MAX_SAMPLER_DECIDE_US
        assert disabled_s * 1e6 <= MAX_DISABLED_SITE_US
