"""Overhead benchmarks for the repro.obs instrumentation layer.

The acceptance bar: with tracing *disabled* (the default null recorder),
the instrumented BXSA encode hot path must stay within 5% of the raw
encoder — the figures' measured-CPU numbers may not move because the
library grew observability hooks.
"""

import pytest

from repro import obs
from repro.bxsa.encoder import encode as raw_bxsa_encode
from repro.core.policies import BXSAEncoding
from repro.harness.measure import median_seconds, timed_median
from repro.workloads.lead import lead_dataset

from benchmarks.conftest import quick_mode

pytestmark = pytest.mark.bench

SIZE = 5_000 if quick_mode() else 87_360
#: Overhead bound on the disabled path (acceptance criterion: < 5%).
MAX_DISABLED_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def document():
    return lead_dataset(SIZE).to_document()


def _median_runtime(fn, repeats=15):
    seconds, _ = timed_median(fn, repeats, scale=False)
    return seconds


class TestDisabledOverhead:
    def test_null_recorder_is_active_by_default(self):
        assert obs.get_recorder() is obs.NULL_RECORDER

    def test_bxsa_encode_overhead_under_5_percent(self, document):
        """Instrumented policy encode vs the raw encoder, tracing off.

        Interleaved measurement rounds cancel slow drift (thermal, GC);
        the medians of the per-round medians are compared.
        """
        # session=False keeps both sides on the stateless encoder — this
        # test isolates instrumentation overhead, not warm-plan replay
        policy = BXSAEncoding(session=False)
        raw, instrumented = [], []
        for _ in range(5):
            raw.append(_median_runtime(lambda: raw_bxsa_encode(document)))
            instrumented.append(_median_runtime(lambda: policy.encode(document)))
        raw_s = median_seconds(raw)
        inst_s = median_seconds(instrumented)
        overhead = inst_s / raw_s - 1.0
        print(
            f"\nbxsa encode n={SIZE}: raw {raw_s * 1e6:.1f}us, "
            f"instrumented {inst_s * 1e6:.1f}us, overhead {overhead * 100:+.2f}%"
        )
        assert overhead < MAX_DISABLED_OVERHEAD, (
            f"disabled-path overhead {overhead * 100:.2f}% exceeds "
            f"{MAX_DISABLED_OVERHEAD * 100:.0f}%"
        )

    def test_disabled_span_site_costs_nanoseconds(self, benchmark):
        def instrumented_noop():
            with obs.span("bench.noop") as sp:
                sp.set("k", 1)

        benchmark(instrumented_noop)


class TestEnabledPath:
    def test_bxsa_encode_while_recording(self, benchmark, document):
        """The enabled path is allowed to cost more — this pins how much."""
        policy = BXSAEncoding()
        with obs.recording(obs.TraceRecorder()):
            benchmark(policy.encode, document)

    def test_span_open_close_while_recording(self, benchmark):
        with obs.recording(obs.TraceRecorder()) as rec:
            def one_span():
                with rec.span("bench.span"):
                    pass

            benchmark(one_span)
