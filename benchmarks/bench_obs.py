"""Overhead benchmarks for the repro.obs instrumentation layer.

The acceptance bar: with tracing *disabled* (the default null recorder),
the instrumented BXSA encode hot path must stay within 5% of the raw
encoder — the figures' measured-CPU numbers may not move because the
library grew observability hooks.

The labelled-metrics and sampling additions get their own pins, written
to ``benchmarks/results/obs.json`` for ``tools/bench_guard.py``:

* a labelled counter increment (the dict-keyed family lookup) may cost at
  most :data:`MAX_LABELLED_RATIO` times an unlabelled one;
* one :meth:`HeadSampler.decide` (a CRC32 over the key) and one
  disabled-path ``obs.counter(...).add()`` site must each stay under
  microseconds — the budgets are deliberately loose absolute ceilings
  that only a complexity regression (per-call allocation, lock
  contention, accidental O(n)) would blow.
"""

import json
import time

import pytest

from repro import obs
from repro.bxsa.encoder import encode as raw_bxsa_encode
from repro.core.policies import BXSAEncoding
from repro.harness.measure import median_seconds, timed_median
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import HeadSampler
from repro.workloads.lead import lead_dataset

from benchmarks.conftest import quick_mode

pytestmark = pytest.mark.bench

SIZE = 5_000 if quick_mode() else 87_360
#: Overhead bound on the disabled path (acceptance criterion: < 5%).
MAX_DISABLED_OVERHEAD = 0.05
#: Labelled counter increment vs unlabelled, worst acceptable ratio.
MAX_LABELLED_RATIO = 10.0
#: Absolute per-op ceilings, microseconds (see module docstring).
MAX_SAMPLER_DECIDE_US = 10.0
MAX_DISABLED_SITE_US = 5.0
#: Trace-context propagation (header format/parse on every exchange) vs
#: the same traced exchange without it, worst acceptable ratio.
MAX_PROPAGATION_RATIO = 1.10


@pytest.fixture(scope="module")
def document():
    return lead_dataset(SIZE).to_document()


def _median_runtime(fn, repeats=15):
    seconds, _ = timed_median(fn, repeats, scale=False)
    return seconds


class TestDisabledOverhead:
    def test_null_recorder_is_active_by_default(self):
        assert obs.get_recorder() is obs.NULL_RECORDER

    def test_bxsa_encode_overhead_under_5_percent(self, document):
        """Instrumented policy encode vs the raw encoder, tracing off.

        Interleaved measurement rounds cancel slow drift (thermal, GC);
        the medians of the per-round medians are compared.
        """
        # session=False keeps both sides on the stateless encoder — this
        # test isolates instrumentation overhead, not warm-plan replay
        policy = BXSAEncoding(session=False)
        raw, instrumented = [], []
        for _ in range(5):
            raw.append(_median_runtime(lambda: raw_bxsa_encode(document)))
            instrumented.append(_median_runtime(lambda: policy.encode(document)))
        raw_s = median_seconds(raw)
        inst_s = median_seconds(instrumented)
        overhead = inst_s / raw_s - 1.0
        print(
            f"\nbxsa encode n={SIZE}: raw {raw_s * 1e6:.1f}us, "
            f"instrumented {inst_s * 1e6:.1f}us, overhead {overhead * 100:+.2f}%"
        )
        assert overhead < MAX_DISABLED_OVERHEAD, (
            f"disabled-path overhead {overhead * 100:.2f}% exceeds "
            f"{MAX_DISABLED_OVERHEAD * 100:.0f}%"
        )

    def test_disabled_span_site_costs_nanoseconds(self, benchmark):
        def instrumented_noop():
            with obs.span("bench.noop") as sp:
                sp.set("k", 1)

        benchmark(instrumented_noop)


class TestEnabledPath:
    def test_bxsa_encode_while_recording(self, benchmark, document):
        """The enabled path is allowed to cost more — this pins how much."""
        policy = BXSAEncoding()
        with obs.recording(obs.TraceRecorder()):
            benchmark(policy.encode, document)

    def test_span_open_close_while_recording(self, benchmark):
        with obs.recording(obs.TraceRecorder()) as rec:
            def one_span():
                with rec.span("bench.span"):
                    pass

            benchmark(one_span)


def _merge_results(results_dir, **measured) -> None:
    """Merge pins into ``obs.json`` — two tests feed one guard file."""
    path = results_dir / "obs.json"
    try:
        previous = json.loads(path.read_text()).get("measured", {})
    except (OSError, ValueError):
        previous = {}
    previous.update(measured)
    path.write_text(
        json.dumps({"quick": quick_mode(), "measured": previous}, indent=2) + "\n"
    )


def _per_op_seconds(fn, ops: int, rounds: int = 5) -> float:
    """Median over rounds of (wall time of ``fn()`` / ops)."""
    samples = []
    fn()  # warmup
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) / ops)
    return median_seconds(samples)


class TestTelemetryOverhead:
    """Pins for the labelled-metrics and sampling additions."""

    OPS = 20_000 if quick_mode() else 200_000

    def test_labelled_and_sampler_pins(self, results_dir):
        ops = self.OPS

        registry = MetricsRegistry()

        # both sides pay the realistic call-site shape — one registry
        # lookup per increment — so the ratio isolates the label machinery
        def unlabelled():
            counter = registry.counter
            for _ in range(ops):
                counter("bench_plain_total").add()

        def labelled():
            counter = registry.counter
            for _ in range(ops):
                counter(
                    "bench_labelled_total", labels={"op": "echo", "status": "ok"}
                ).add()

        unlabelled_s = _per_op_seconds(unlabelled, ops)
        labelled_s = _per_op_seconds(labelled, ops)
        ratio = labelled_s / unlabelled_s

        sampler = HeadSampler(0.5, seed=1)
        keys = [f"figure5-scheme-n{i}" for i in range(64)]

        def decide():
            decide_one = sampler.decide
            for i in range(ops):
                decide_one(keys[i & 63])

        sampler_s = _per_op_seconds(decide, ops)

        assert obs.get_recorder() is obs.NULL_RECORDER

        def disabled_site():
            counter = obs.counter
            for _ in range(ops):
                counter("bench_disabled_total").add()

        disabled_s = _per_op_seconds(disabled_site, ops)

        print(
            f"\nlabelled {labelled_s * 1e9:.0f}ns vs unlabelled "
            f"{unlabelled_s * 1e9:.0f}ns ({ratio:.1f}x); sampler.decide "
            f"{sampler_s * 1e9:.0f}ns; disabled site {disabled_s * 1e9:.0f}ns"
        )

        _merge_results(
            results_dir,
            labelled_vs_unlabelled_ratio=ratio,
            sampler_decide_us=sampler_s * 1e6,
            disabled_counter_site_us=disabled_s * 1e6,
        )

        assert ratio <= MAX_LABELLED_RATIO, (
            f"labelled counter costs {ratio:.1f}x an unlabelled one "
            f"(ceiling {MAX_LABELLED_RATIO:.0f}x)"
        )
        assert sampler_s * 1e6 <= MAX_SAMPLER_DECIDE_US
        assert disabled_s * 1e6 <= MAX_DISABLED_SITE_US


class TestPropagationOverhead:
    """Pin: carrying trace context across the wire must be nearly free.

    Both sides run the SAME traced SOAP echo exchange (recording client,
    recording server, in-memory transport); the only difference is
    whether the trace context is serialized, injected (HTTP header +
    SOAP header block) and parsed back.  Interleaved measurement rounds
    cancel drift; the ratio of the per-request medians is pinned at
    :data:`MAX_PROPAGATION_RATIO` and enforced by
    ``tools/bench_guard.py``.
    """

    REQUESTS = 40 if quick_mode() else 150

    def _exchange_seconds(self, client, envelope) -> float:
        # per-request median, not the mean: a single scheduler stall or
        # GC pause inside a round would otherwise dominate the ratio
        samples = []
        for _ in range(self.REQUESTS):
            start = time.perf_counter()
            client.call(envelope)
            samples.append(time.perf_counter() - start)
        return median_seconds(samples)

    def test_propagation_overhead_under_10_percent(self, results_dir, monkeypatch):
        from repro.core.client import SoapHttpClient
        from repro.core.dispatcher import Dispatcher
        from repro.core.envelope import SoapEnvelope
        from repro.core.service import SoapHttpService
        from repro.obs import propagation
        from repro.transport.memory import MemoryNetwork
        from repro.xdm import element, leaf

        dispatcher = Dispatcher()

        @dispatcher.operation("Echo")
        def echo(request):
            return element("EchoResponse", *request.body_root.children)

        envelope = SoapEnvelope.wrap(element("Echo", leaf("n", 1, "int")))
        net = MemoryNetwork()
        service = SoapHttpService(net.listen("bench"), dispatcher).start()
        try:
            with obs.recording(obs.TraceRecorder()):
                client = SoapHttpClient(lambda: net.connect("bench"))
                with_prop, without = [], []
                try:
                    for _ in range(5):
                        with_prop.append(self._exchange_seconds(client, envelope))
                        # strip the propagation work from both sides:
                        # nothing serialized or injected client-side
                        # (header or envelope block), nothing to parse
                        # server-side — the spans themselves remain
                        monkeypatch.setattr(
                            propagation, "outbound_context", lambda span=None: None
                        )
                        without.append(self._exchange_seconds(client, envelope))
                        monkeypatch.undo()
                finally:
                    client.close()
        finally:
            service.stop()

        with_s = median_seconds(with_prop)
        without_s = median_seconds(without)
        ratio = with_s / without_s
        print(
            f"\nsoap echo with propagation {with_s * 1e6:.1f}us, "
            f"without {without_s * 1e6:.1f}us ({ratio:.3f}x)"
        )

        _merge_results(results_dir, propagation_overhead_ratio=ratio)

        assert ratio <= MAX_PROPAGATION_RATIO, (
            f"context propagation costs {(ratio - 1) * 100:+.1f}% per "
            f"exchange (ceiling {(MAX_PROPAGATION_RATIO - 1) * 100:.0f}%)"
        )
