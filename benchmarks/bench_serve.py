"""Serving-runtime benchmarks: admission overhead and goodput floors.

The worker-pool runtime exists so overload costs microseconds, not
collapse.  This module pins that claim with three numbers, written to
``benchmarks/results/serve.json`` for ``tools/bench_guard.py``:

* ``shed_decision_us`` — a :meth:`WorkerPool.submit` against a full
  admission queue must stay a constant-time decision: no lock convoy,
  no allocation proportional to queue depth.  The ceiling is a loose
  absolute bound only a complexity regression would blow.
* ``pool_roundtrip_ms`` — submit + ``result()`` through an idle
  single-worker pool: the fixed tax every pooled exchange pays on top
  of its handler.  Pinned in milliseconds because it includes a real
  thread handoff.
* ``serve_goodput_rps`` — closed-loop goodput through the *full*
  serving stack (memory transport, HTTP framing, BXSA decode, worker
  pool) must stay above a deliberately conservative floor; this is the
  number ``repro.harness.figure_load`` sweeps, so a collapse here means
  the figure is measuring a broken runtime.
* ``aio_ladder_connections`` / ``aio_vs_threaded_goodput`` — the
  event-driven core must hold thousands of keep-alive connections (the
  top rung of Figure L's connection ladder, >= 4096) while completing at
  least as much work as the threaded core manages at its own best point
  (a 10% noise allowance on the ratio floor).  These are the numbers the
  selector-loop rebuild exists for.

The floors/ceilings are duplicated in ``tools/bench_guard.py``
(``SERVE_CEILINGS`` / ``SERVE_FLOORS``) so a stale ``serve.json`` from a
regressed run fails CI even if this module is skipped.
"""

import json
import threading
import time

import pytest

from repro.core.envelope import SoapEnvelope
from repro.core.policies import BXSA_CONTENT_TYPE
from repro.harness.measure import median_seconds
from repro.harness.figure_load import _call_factory, _make_dispatcher, connection_ladder
from repro.loadgen import closed_loop
from repro.serve import AdmissionQueueFull, ServeConfig, SoapServeService, WorkerPool
from repro.transport.memory import MemoryNetwork
from repro.workloads.lead import lead_dataset
from repro.xdm import element

from benchmarks.conftest import quick_mode

pytestmark = pytest.mark.bench

OPS = 2_000 if quick_mode() else 20_000
ROUNDTRIPS = 200 if quick_mode() else 1_000
GOODPUT_REQUESTS = 60 if quick_mode() else 400
LADDER_RUNGS = (256, 4096) if quick_mode() else (256, 1024, 4096)
LADDER_REQUESTS_PER_CONN = 2 if quick_mode() else 4

#: Ceilings/floors — keep in sync with tools/bench_guard.py.
MAX_SHED_DECISION_US = 50.0
MAX_POOL_ROUNDTRIP_MS = 10.0
MIN_SERVE_GOODPUT_RPS = 25.0
MIN_AIO_LADDER_CONNECTIONS = 4096
MIN_AIO_VS_THREADED_GOODPUT = 0.9


def _per_op_seconds(fn, ops: int, rounds: int = 5) -> float:
    """Median over rounds of (wall time of ``fn()`` / ops)."""
    samples = []
    fn()  # warmup
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) / ops)
    return median_seconds(samples)


def _measure_shed_decision_us() -> float:
    """Per-op cost of submit() raising AdmissionQueueFull on a full queue."""
    release = threading.Event()
    pool = WorkerPool(workers=1, queue_depth=1)
    with pool:
        pool.submit(lambda _state: release.wait())  # wedges the worker
        # the queue slot fills on the first loop iteration; every
        # subsequent submit exercises the pure shed path
        def shed_storm():
            submit = pool.submit
            for _ in range(OPS):
                try:
                    submit(lambda _state: None)
                except AdmissionQueueFull:
                    pass

        per_op = _per_op_seconds(shed_storm, OPS)
        release.set()
    return per_op * 1e6


def _measure_pool_roundtrip_ms() -> float:
    """Median submit -> result() latency through an idle one-worker pool."""
    with WorkerPool(workers=1, queue_depth=4) as pool:
        def roundtrips():
            submit = pool.submit
            for _ in range(ROUNDTRIPS):
                submit(lambda _state: None).result(timeout=5.0)

        per_op = _per_op_seconds(roundtrips, ROUNDTRIPS, rounds=3)
    return per_op * 1e3


def _measure_serve_goodput_rps() -> float:
    """Closed-loop BXSA/HTTP goodput through the full serving stack."""
    dispatcher = _make_dispatcher()
    payload = SoapEnvelope.wrap(
        element("PutModel", lead_dataset(50, seed=0).to_bxdm())
    )
    config = ServeConfig(workers=2, queue_depth=4)
    network = MemoryNetwork()
    service = SoapServeService(
        network.listen("bench-serve"), dispatcher, config=config
    )
    with service:
        result = closed_loop(
            _call_factory(network, "bench-serve", BXSA_CONTENT_TYPE, payload),
            clients=config.workers,
            requests_per_client=GOODPUT_REQUESTS // config.workers,
            seed=0,
        )
    # at concurrency == workers nothing queues, so nothing may shed or fail
    assert result.failed == 0 and result.shed == 0, result.as_dict()
    return result.goodput


def _measure_connection_ladder() -> dict:
    """Figure L's connection ladder (threaded best vs event-driven rungs)
    over real loopback TCP, trimmed for bench cadence."""
    return connection_ladder(
        workers=2,
        queue_depth=64,
        rungs=LADDER_RUNGS,
        threaded_probe=(16, 64),
        requests_per_connection=LADDER_REQUESTS_PER_CONN,
        model_size=20,
        seed=0,
    )


class TestServePins:
    def test_serve_pins(self, results_dir):
        shed_us = _measure_shed_decision_us()
        roundtrip_ms = _measure_pool_roundtrip_ms()
        goodput_rps = _measure_serve_goodput_rps()
        ladder = _measure_connection_ladder()

        aio_top = ladder["aio"][-1]
        threaded_best = ladder["threaded_best_goodput_rps"]
        ratio = aio_top["goodput_rps"] / max(threaded_best, 1e-9)
        print(
            f"\nshed decision {shed_us:.2f}us, pool roundtrip "
            f"{roundtrip_ms:.3f}ms, serve goodput {goodput_rps:.0f} rps, "
            f"ladder top {aio_top['connections']} conns at "
            f"{aio_top['goodput_rps']:.0f} rps ({ratio:.2f}x threaded best)"
        )

        measured = {
            "shed_decision_us": shed_us,
            "pool_roundtrip_ms": roundtrip_ms,
            "serve_goodput_rps": goodput_rps,
            "aio_ladder_connections": aio_top["connections"],
            "aio_ladder_goodput_rps": aio_top["goodput_rps"],
            "threaded_best_goodput_rps": threaded_best,
            "aio_vs_threaded_goodput": ratio,
        }
        document = {
            "quick": quick_mode(),
            "measured": measured,
            "ladder": {"threaded": ladder["threaded"], "aio": ladder["aio"]},
        }
        (results_dir / "serve.json").write_text(
            json.dumps(document, indent=2) + "\n"
        )

        assert shed_us <= MAX_SHED_DECISION_US, (
            f"shed decision costs {shed_us:.2f}us "
            f"(ceiling {MAX_SHED_DECISION_US:.0f}us) — admission control "
            "must stay constant-time"
        )
        assert roundtrip_ms <= MAX_POOL_ROUNDTRIP_MS, (
            f"pool roundtrip {roundtrip_ms:.3f}ms exceeds "
            f"{MAX_POOL_ROUNDTRIP_MS:.0f}ms"
        )
        assert goodput_rps >= MIN_SERVE_GOODPUT_RPS, (
            f"serve goodput {goodput_rps:.0f} rps fell below the "
            f"{MIN_SERVE_GOODPUT_RPS:.0f} rps floor"
        )
        assert aio_top["connections"] >= MIN_AIO_LADDER_CONNECTIONS, (
            f"ladder topped out at {aio_top['connections']} connections "
            f"(floor {MIN_AIO_LADDER_CONNECTIONS})"
        )
        assert ratio >= MIN_AIO_VS_THREADED_GOODPUT, (
            f"event-driven goodput at the top rung is {ratio:.2f}x the "
            f"threaded best (floor {MIN_AIO_VS_THREADED_GOODPUT:.1f}x)"
        )
        assert all(
            point["failed"] == 0 and point["established"] == point["connections"]
            for point in ladder["threaded"] + ladder["aio"]
        ), "ladder rungs must establish every connection and fail nothing"
