"""End-to-end SOAP round trips over the live in-process stack.

Unlike the figure harness (which separates CPU from modelled wire time),
these run the complete engine + dispatcher + transport threads and measure
real wall time per call — the latency floor of the implementation itself.
"""

import pytest

from repro.core import (
    BXSAEncoding,
    SoapTcpClient,
    SoapTcpService,
    XMLEncoding,
)
from repro.services import build_verification_dispatcher, make_unified_request
from repro.transport import MemoryNetwork
from repro.workloads.lead import lead_dataset


@pytest.fixture(scope="module")
def service():
    net = MemoryNetwork()
    svc = SoapTcpService(net.listen("svc"), build_verification_dispatcher()).start()
    yield net
    svc.stop()


@pytest.mark.parametrize("encoding_cls", [BXSAEncoding, XMLEncoding], ids=["bxsa", "xml"])
@pytest.mark.parametrize("model_size", [100, 10_000], ids=lambda n: f"n={n}")
def test_verify_call(benchmark, service, encoding_cls, model_size):
    client = SoapTcpClient(lambda: service.connect("svc"), encoding=encoding_cls())
    request = make_unified_request(lead_dataset(model_size))
    try:
        response = benchmark(client.call, request)
        assert response.body_root.name.local == "VerifyResponse"
    finally:
        client.close()
