"""Streaming-pipeline benchmarks: TTFB and peak-memory pins for Figure S.

The streaming data plane (sink-driven BXSA writer -> chunked HTTP ->
incremental decoder, optional per-chunk signing) exists for two numbers,
and this module pins both, written to ``benchmarks/results/stream.json``
for ``tools/bench_guard.py``:

* ``streamed_peak_over_chunk`` — peak Python-heap allocation of a whole
  streamed exchange (client + server + producer share the process),
  divided by the transfer chunk size, worst case over the unsigned and
  signed modes at the largest size.  The pipeline's memory must be
  O(chunk), not O(message): the ceiling is 4 chunks (measured ~3.3).
* ``ttfb_ratio_64mib`` — buffered time-to-first-byte over streamed at
  64 MiB.  Buffered must materialize and encode everything before byte
  one; streamed answers as soon as the first chunk exists (measured
  ~50-200x; the floor of 5x only catches the pipeline losing its
  early-first-byte property entirely).
* ``buffered_peak_over_payload`` — the baseline's peak over the payload
  size at 64 MiB; a floor of 1.0 keeps the comparison honest (if the
  "buffered" path ever stops materializing, the ratio above is
  measuring nothing).
* ``signed_total_over_unsigned`` — per-chunk HMAC signing must cost
  bounded throughput (measured ~3x; the generous ceiling catches a
  complexity regression like per-byte rehashing, not machine noise).

The floors/ceilings are duplicated in ``tools/bench_guard.py``
(``STREAM_CEILINGS`` / ``STREAM_FLOORS``) so a stale ``stream.json``
from a regressed run fails CI even if this module is skipped.
"""

import json

import pytest

from repro.harness.figure_stream import (
    DEFAULT_CHUNK_BYTES,
    MIB,
    sweep,
)

from benchmarks.conftest import quick_mode

pytestmark = pytest.mark.bench

SIZES_MIB = (1, 64) if quick_mode() else (1, 8, 64)
PIN_MIB = 64

#: Ceilings/floors — keep in sync with tools/bench_guard.py.
MAX_STREAMED_PEAK_CHUNKS = 4.0
MIN_TTFB_RATIO = 5.0
MIN_BUFFERED_PEAK_OVER_PAYLOAD = 1.0
MAX_SIGNED_OVER_UNSIGNED = 6.0


def _point(document: dict, mib: int, mode: str) -> dict:
    for point in document["points"]:
        if point["mib"] == mib and point["mode"] == mode:
            return point
    raise AssertionError(f"no ({mib} MiB, {mode}) point in the sweep")


class TestStreamPins:
    def test_stream_pins(self, results_dir):
        document = sweep(sizes_mib=SIZES_MIB, buffered_cap_mib=PIN_MIB)
        assert all(p["verified"] for p in document["points"]), document["points"]

        chunk = document["config"]["chunk_bytes"]
        assert chunk == DEFAULT_CHUNK_BYTES
        buffered = _point(document, PIN_MIB, "buffered")
        streamed = _point(document, PIN_MIB, "streamed")
        signed = _point(document, PIN_MIB, "signed")

        peak_chunks = max(streamed["peak_bytes"], signed["peak_bytes"]) / chunk
        ttfb_ratio = buffered["ttfb_s"] / max(streamed["ttfb_s"], 1e-9)
        buffered_ratio = buffered["peak_bytes"] / (PIN_MIB * MIB)
        signed_ratio = signed["total_s"] / max(streamed["total_s"], 1e-9)
        print(
            f"\nstreamed peak {peak_chunks:.2f} chunks, TTFB ratio "
            f"{ttfb_ratio:.0f}x at {PIN_MIB} MiB, buffered peak "
            f"{buffered_ratio:.2f}x payload, signing {signed_ratio:.2f}x "
            f"unsigned total"
        )

        measured = {
            "streamed_peak_over_chunk": peak_chunks,
            "ttfb_ratio_64mib": ttfb_ratio,
            "buffered_peak_over_payload": buffered_ratio,
            "signed_total_over_unsigned": signed_ratio,
            "streamed_throughput_mib_s": streamed["throughput_mib_s"],
        }
        document_out = {
            "quick": quick_mode(),
            "measured": measured,
            "points": document["points"],
            "config": document["config"],
        }
        (results_dir / "stream.json").write_text(
            json.dumps(document_out, indent=2) + "\n"
        )

        assert peak_chunks <= MAX_STREAMED_PEAK_CHUNKS, (
            f"streamed exchange peaked at {peak_chunks:.2f} transfer chunks "
            f"(ceiling {MAX_STREAMED_PEAK_CHUNKS:g}) — the pipeline must stay "
            "O(chunk), not O(message)"
        )
        assert ttfb_ratio >= MIN_TTFB_RATIO, (
            f"buffered TTFB is only {ttfb_ratio:.1f}x streamed at {PIN_MIB} MiB "
            f"(floor {MIN_TTFB_RATIO:g}x) — streaming lost its early first byte"
        )
        assert buffered_ratio >= MIN_BUFFERED_PEAK_OVER_PAYLOAD, (
            f"buffered peak is {buffered_ratio:.2f}x the payload — the "
            "baseline stopped materializing; the comparison is broken"
        )
        assert signed_ratio <= MAX_SIGNED_OVER_UNSIGNED, (
            f"signing costs {signed_ratio:.2f}x the unsigned streamed total "
            f"(ceiling {MAX_SIGNED_OVER_UNSIGNED:g}x)"
        )
