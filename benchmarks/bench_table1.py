"""Regenerates Table 1 (serialization sizes) and benchmarks the encoders
behind each of its rows at the paper's model size of 1000."""

import pytest

from benchmarks.conftest import spool_result
from repro.bxsa.encoder import encode as bxsa_encode
from repro.harness import table1
from repro.netcdf.writer import write_dataset_bytes
from repro.workloads.lead import lead_dataset
from repro.xmlcodec.serializer import serialize

DATASET = lead_dataset(1000)


def test_table1_regeneration(benchmark, results_dir):
    """The deliverable: regenerate Table 1 and verify its shape checks."""
    result = benchmark.pedantic(table1.run, kwargs={"model_size": 1000}, rounds=3)
    spool_result(results_dir, "table1", result.render())
    assert result.all_checks_pass, result.render()


@pytest.mark.parametrize(
    "fmt,encode",
    [
        ("bxsa", lambda: bxsa_encode(DATASET.to_document())),
        ("netcdf", lambda: write_dataset_bytes(DATASET.to_netcdf())),
        ("xml", lambda: serialize(DATASET.to_document(), emit_types=False)),
    ],
)
def test_encode_model_size_1000(benchmark, fmt, encode):
    """Encoder cost per format for the Table 1 dataset."""
    out = benchmark(encode)
    assert len(out) > DATASET.native_bytes * 0.9
