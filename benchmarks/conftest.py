"""Shared benchmark fixtures and result spooling.

Every ``bench_table*/bench_figure*`` benchmark regenerates its experiment
and writes the rendered table (with shape-check verdicts) to
``benchmarks/results/<experiment>.txt`` so the artifacts survive pytest's
output capture.  ``REPRO_BENCH_QUICK=1`` shrinks the sweeps for smoke runs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def spool_result(results_dir: pathlib.Path, name: str, rendered: str) -> None:
    (results_dir / f"{name}.txt").write_text(rendered + "\n")
