#!/usr/bin/env python
"""Distributed data mining scenario: unified vs separated bulk transfer.

The paper's other motivating regime: "a large binary data set usually must
be transmitted" (distributed data mining, Open DMIX / SOAP+ in related
work).  This example ships feature-matrix partitions from a coordinator to
a worker two ways:

* **unified** — the partition rides inside the SOAP message as a packed
  ArrayElement (BXSA over TCP);
* **separated** — the partition is written to a netCDF file, published on
  an HTTP data channel, and the SOAP message carries only the URL, which
  the worker then dereferences.

Both produce identical numerics; the point is the difference in moving
parts (one channel and zero files vs two channels and four file touches).

Run:  python examples/data_mining.py
"""

import time

import numpy as np

from repro.core import (
    BXSAEncoding,
    Dispatcher,
    SoapEnvelope,
    SoapTcpClient,
    SoapTcpService,
    XMLEncoding,
)
from repro.datachannel import HttpDataChannel
from repro.netcdf import Dataset, read_dataset_bytes, write_dataset_bytes
from repro.transport import MemoryNetwork
from repro.workloads.datamining import block_from_bxdm, block_to_bxdm, feature_block
from repro.xdm import element, leaf
from repro.xdm.path import children_named

ROWS, FEATURES = 4000, 32


def build_worker(http_channel: HttpDataChannel) -> Dispatcher:
    """The worker computes per-feature means of whatever block it gets."""
    dispatcher = Dispatcher()

    def feature_means(matrix: np.ndarray):
        means = matrix.mean(axis=0)
        return element(
            "TrainResponse",
            leaf("rows", int(matrix.shape[0]), "int"),
            leaf("checksum", float(means.sum()), "double"),
        )

    @dispatcher.operation("Train")
    def train_unified(request: SoapEnvelope):
        _bid, matrix = block_from_bxdm(children_named(request.body_root, "block")[0])
        return feature_means(matrix)

    @dispatcher.operation("TrainByReference")
    def train_by_reference(request: SoapEnvelope):
        url = str(children_named(request.body_root, "url")[0].value)
        blob = http_channel.fetch(url)
        ds = read_dataset_bytes(blob)
        matrix = np.asarray(ds.variables["features"].data, dtype="f8")
        return feature_means(matrix)

    return dispatcher


def main() -> None:
    net = MemoryNetwork()
    http_channel = HttpDataChannel(net.listen("web"), lambda: net.connect("web")).start()
    service = SoapTcpService(net.listen("worker"), build_worker(http_channel)).start()
    block = feature_block(ROWS, FEATURES, seed=11)

    try:
        # ---- unified: data inside the message ---------------------------
        client = SoapTcpClient(lambda: net.connect("worker"), encoding=BXSAEncoding())
        start = time.perf_counter()
        response = client.call(
            SoapEnvelope.wrap(element("Train", block_to_bxdm(block, block_id=1)))
        )
        unified_time = time.perf_counter() - start
        unified_sum = children_named(response.body_root, "checksum")[0].value
        client.close()

        # ---- separated: netCDF file + URL in the message ----------------
        start = time.perf_counter()
        ds = Dataset()
        ds.create_variable("features", block, ("row", "feature"))
        url = http_channel.publish("partition-1.nc", write_dataset_bytes(ds))
        client = SoapTcpClient(lambda: net.connect("worker"), encoding=XMLEncoding())
        response = client.call(
            SoapEnvelope.wrap(
                element("TrainByReference", leaf("url", url, "string"))
            )
        )
        separated_time = time.perf_counter() - start
        separated_sum = children_named(response.body_root, "checksum")[0].value
        client.close()
    finally:
        service.stop()
        http_channel.stop()

    assert abs(unified_sum - separated_sum) < 1e-9
    print(f"partition: {ROWS} x {FEATURES} float64 ({block.nbytes / 1e6:.1f} MB)")
    print(f"unified   (BXSA in message) : {unified_time * 1e3:7.1f} ms, checksum {unified_sum:.6f}")
    print(f"separated (netCDF over HTTP): {separated_time * 1e3:7.1f} ms, checksum {separated_sum:.6f}")
    print(
        "\nIdentical results; the separated path needed a second server, a\n"
        "spool file, a URL convention and a download — the development-cost\n"
        "half of the paper's argument, before performance even enters."
    )


if __name__ == "__main__":
    main()
