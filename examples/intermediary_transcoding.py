#!/usr/bin/env python
"""Intermediary hop with BXSA as the inter-hop protocol (§5.1).

"Transcodability enables BXSA to be the intermediate protocol over the
message hops, even when the message sender and receiver are communicating
via textual XML."

Topology::

    XML client ──(text/xml over TCP)──> intermediary ──(BXSA over TCP)──> backend

The client and the backend dispatcher never learn that the middle hop ran
binary; the intermediary is just two generic engines with different policy
configurations bridged back to back.

Run:  python examples/intermediary_transcoding.py
"""

import numpy as np

from repro.core import (
    BXSAEncoding,
    SoapEnvelope,
    SoapTcpClient,
    SoapTcpService,
    TcpIntermediary,
    XMLEncoding,
)
from repro.services import build_verification_dispatcher, make_unified_request, parse_verification_response
from repro.transport import MemoryNetwork
from repro.workloads.lead import lead_dataset


def main() -> None:
    net = MemoryNetwork()

    backend = SoapTcpService(
        net.listen("backend"),
        build_verification_dispatcher(),
        encoding=BXSAEncoding(),  # the backend prefers binary
    ).start()

    hop = TcpIntermediary(
        net.listen("front"),
        lambda: net.connect("backend"),
        inbound_encoding=XMLEncoding(),  # clients speak textual XML
        outbound_encoding=BXSAEncoding(),  # the backbone runs BXSA
        name="edge-hop",
    ).start()

    dataset = lead_dataset(5000, seed=3)
    xml = XMLEncoding()
    bxsa = BXSAEncoding()
    request = make_unified_request(dataset)
    doc = request.to_document()

    try:
        client = SoapTcpClient(lambda: net.connect("front"), encoding=XMLEncoding())
        response = client.call(request)
        result = parse_verification_response(response.body_root)
        client.close()
    finally:
        hop.stop()
        backend.stop()

    assert result.ok and result.count == dataset.model_size
    print(f"verification through the hop: ok={result.ok}, count={result.count}")
    print(f"messages forwarded by the intermediary: {hop.forwarded}")
    print(f"client-side   message size (text/xml)       : {len(xml.encode(doc)):8d} bytes")
    print(f"backbone-side message size (application/bxsa): {len(bxsa.encode(doc)):8d} bytes")
    print(
        "\nThe client spoke textual XML end to end as far as it knows; the\n"
        "intermediary re-encoded the same bXDM envelope onto a binary hop\n"
        "and back — the hop-by-hop rebinding §5.1 of the paper describes."
    )


if __name__ == "__main__":
    main()
