#!/usr/bin/env python
"""LEAD-style workflow: the full Section 6 experiment, live and end to end.

Reproduces (at laptop scale, over real in-process transports) the exact
client/server programs the paper benchmarks:

1. **Unified solution** — the client builds the atmospheric dataset in the
   bXDM model and sends request + data in one SOAP message (BXSA/TCP and
   XML/HTTP variants); the server deserializes, verifies every value, and
   replies with the verification result.
2. **Separated solution** — the client saves the dataset as a netCDF file
   published on an HTTP server and on a GridFTP-like striped server, sends
   a SOAP message containing just the URL, and the verification server
   pulls the file, reads it and verifies it.

All four configurations return the same verification verdict for the same
dataset — the interoperability half of the paper's claim — while the wire
sizes and moving parts differ exactly as Section 6 describes.

Run:  python examples/lead_workflow.py
"""

import itertools
import time

from repro.core import (
    BXSAEncoding,
    SoapHttpClient,
    SoapHttpService,
    SoapTcpClient,
    SoapTcpService,
    XMLEncoding,
)
from repro.datachannel import GridFTPDataChannel, HttpDataChannel, UrlResolver
from repro.netcdf import write_dataset_bytes
from repro.services import (
    build_verification_dispatcher,
    make_reference_request,
    make_unified_request,
    parse_verification_response,
)
from repro.transport import MemoryNetwork
from repro.workloads.lead import lead_dataset

MODEL_SIZE = 20_000


def main() -> None:
    net = MemoryNetwork()
    counter = itertools.count()

    # -- infrastructure: data channels + the verification service ---------
    http_channel = HttpDataChannel(net.listen("web"), lambda: net.connect("web")).start()

    def data_listener_factory():
        name = f"gd{next(counter)}"
        return name, net.listen(name)

    gftp_channel = GridFTPDataChannel(
        net.listen("gftp"),
        data_listener_factory,
        lambda: net.connect("gftp"),
        net.connect,
        n_streams=4,
    ).start()

    resolver = UrlResolver().register(http_channel).register(gftp_channel)
    dispatcher = build_verification_dispatcher(fetch_url=resolver.fetch)
    tcp_service = SoapTcpService(net.listen("soap-tcp"), dispatcher).start()
    http_service = SoapHttpService(net.listen("soap-http"), dispatcher).start()

    dataset = lead_dataset(MODEL_SIZE, seed=42)
    print(
        f"dataset: model size {dataset.model_size} "
        f"({dataset.native_bytes / 1e3:.0f} KB native)\n"
    )

    results = []

    def record(name, call, message_bytes):
        start = time.perf_counter()
        response = call()
        elapsed = time.perf_counter() - start
        result = parse_verification_response(response.body_root)
        assert result.ok and result.count == MODEL_SIZE
        results.append((name, message_bytes, elapsed, result.checksum))

    try:
        # 1a. unified over BXSA/TCP
        request = make_unified_request(dataset)
        client = SoapTcpClient(lambda: net.connect("soap-tcp"), encoding=BXSAEncoding())
        record(
            "unified  BXSA/TCP",
            lambda: client.call(request),
            len(BXSAEncoding().encode(request.to_document())),
        )
        client.close()

        # 1b. unified over XML/HTTP
        client = SoapHttpClient(lambda: net.connect("soap-http"), encoding=XMLEncoding())
        record(
            "unified  XML/HTTP",
            lambda: client.call(request),
            len(XMLEncoding().encode(request.to_document())),
        )
        client.close()

        # 2a. separated via HTTP data channel
        blob = write_dataset_bytes(dataset.to_netcdf())
        url = http_channel.publish("lead/run42.nc", blob)
        reference = make_reference_request(url)
        client = SoapTcpClient(lambda: net.connect("soap-tcp"), encoding=XMLEncoding())
        record(
            "separated SOAP+HTTP",
            lambda: client.call(reference),
            len(XMLEncoding().encode(reference.to_document())),
        )
        client.close()

        # 2b. separated via GridFTP data channel (4 parallel streams)
        gurl = gftp_channel.publish("run42.nc", blob)
        greference = make_reference_request(gurl, n_streams=4)
        client = SoapTcpClient(lambda: net.connect("soap-tcp"), encoding=XMLEncoding())
        record(
            "separated SOAP+GridFTP(4)",
            lambda: client.call(greference),
            len(XMLEncoding().encode(greference.to_document())),
        )
        client.close()
    finally:
        http_service.stop()
        tcp_service.stop()
        gftp_channel.stop()
        http_channel.stop()

    print(f"{'configuration':28s} {'SOAP msg':>10s} {'wall time':>10s}  checksum")
    for name, nbytes, elapsed, checksum in results:
        print(f"{name:28s} {nbytes:8d} B {elapsed * 1e3:8.1f} ms  {checksum:.4f}")

    print(
        "\nEvery configuration verified the same data and produced the same\n"
        "checksum.  The unified binary message carries the whole dataset in\n"
        "barely more than its native size; the separated schemes carry a\n"
        "300-byte control message plus an entire out-of-band machinery.\n"
        "(Wall times here are in-process plumbing only — the calibrated\n"
        "network-era comparison is what `benchmarks/` regenerates.)"
    )


if __name__ == "__main__":
    main()
