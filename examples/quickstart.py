#!/usr/bin/env python
"""Quickstart: a SOAP service and two clients — textual XML and binary XML.

Demonstrates the paper's headline claim in ~60 lines: the *same* generic
engine, service and payload work over both encodings; only the policy
object changes, and the binary encoding moves numeric arrays in native
form.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    BXSAEncoding,
    Dispatcher,
    SoapEnvelope,
    SoapTcpClient,
    SoapTcpService,
    XMLEncoding,
)
from repro.transport import MemoryNetwork
from repro.xdm import array, element, leaf
from repro.xdm.path import children_named


def build_service() -> Dispatcher:
    """A tiny numeric service: returns basic statistics of an array."""
    dispatcher = Dispatcher()

    @dispatcher.operation("Stats")
    def stats(request: SoapEnvelope):
        values = children_named(request.body_root, "values")[0].values
        return element(
            "StatsResponse",
            leaf("count", int(values.size), "int"),
            leaf("mean", float(values.mean()), "double"),
            leaf("minimum", float(values.min()), "double"),
            leaf("maximum", float(values.max()), "double"),
        )

    return dispatcher


def main() -> None:
    net = MemoryNetwork()  # swap for TcpListener/connect_tcp for real sockets
    service = SoapTcpService(net.listen("stats-svc"), build_service()).start()

    payload = np.linspace(-1.0, 1.0, 101) ** 3
    request = SoapEnvelope.wrap(element("Stats", array("values", payload)))

    try:
        for name, encoding in (("textual XML", XMLEncoding()), ("binary XML", BXSAEncoding())):
            client = SoapTcpClient(lambda: net.connect("stats-svc"), encoding=encoding)
            wire_size = len(encoding.encode(request.to_document()))
            response = client.call(request)
            result = {
                child.name.local: child.value for child in response.body_root.elements()
            }
            client.close()
            print(f"{name:12s} message={wire_size:5d} bytes -> {result}")
    finally:
        service.stop()

    print("\nSame service, same payload, same engine — only the encoding policy differs.")


if __name__ == "__main__":
    main()
