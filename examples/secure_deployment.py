#!/usr/bin/env python
"""Policy composition: description-driven, signed, compressed SOAP.

§5 of the paper claims the generic design absorbs new concerns "by just
adding more template parameters".  This example composes all of this
project's policies at once:

* the service publishes a WSDL-lite description declaring a *compressed
  binary* encoding (``application/bxsa+deflate``) over TCP;
* the client configures itself purely from that description;
* both sides run an HMAC security policy — the signature covers the
  *data model*, so it is independent of the encoding stack under it;
* a tampering middlebox demonstrates what the security policy catches.

Run:  python examples/secure_deployment.py
"""

import numpy as np

from repro.core import (
    BXSAEncoding,
    DeflateEncoding,
    Dispatcher,
    HmacSigningPolicy,
    SecretKey,
    SoapEnvelope,
    SoapFault,
    SoapTcpService,
    XMLEncoding,
)
from repro.core.wsdl import ServiceDescription
from repro.transport import MemoryNetwork
from repro.xdm import array, element, leaf
from repro.xdm.path import children_named


def build_service() -> Dispatcher:
    dispatcher = Dispatcher()

    @dispatcher.operation("Integrate")
    def integrate(request: SoapEnvelope):
        values = children_named(request.body_root, "samples")[0].values
        dx = children_named(request.body_root, "dx")[0].value
        return element(
            "IntegrateResponse",
            leaf("integral", float(np.trapezoid(values, dx=dx)), "double"),
        )

    return dispatcher


def main() -> None:
    net = MemoryNetwork()
    key = SecretKey.generate(key_id="prod-2026")

    # register the compressed encoding so content negotiation knows it
    DeflateEncoding(BXSAEncoding()).register()

    service = SoapTcpService(
        net.listen("calc"),
        build_service(),
        encoding=DeflateEncoding(BXSAEncoding()),
        security=HmacSigningPolicy(key),
    ).start()

    description = ServiceDescription(
        name="CalculusService",
        operations=("Integrate",),
        transport="tcp",
        encoding_content_type="application/bxsa+deflate",
        location="calc",
    )
    print("service description declares:")
    print(f"  transport : {description.transport}")
    print(f"  encoding  : {description.encoding_content_type}")
    print(f"  operations: {', '.join(description.operations)}\n")

    try:
        # -- a well-behaved client configured from the description --------
        client = description.make_client(
            lambda loc: (lambda: net.connect(loc)),
            security=HmacSigningPolicy(key),
        )
        request = SoapEnvelope.wrap(
            element(
                "Integrate",
                array("samples", np.sin(np.linspace(0, np.pi, 10_001))),
                leaf("dx", np.pi / 10_000, "double"),
            )
        )
        response = client.call(request)
        integral = children_named(response.body_root, "integral")[0].value
        print(f"signed, compressed call: integral of sin over [0, pi] = {integral:.6f}")
        client.close()

        # -- a tampering path: modified body, stale signature --------------
        tampered = SoapEnvelope.wrap(
            element(
                "Integrate",
                array("samples", np.sin(np.linspace(0, np.pi, 101))),
                leaf("dx", np.pi / 100, "double"),
            )
        )
        HmacSigningPolicy(key).sign(tampered)
        children_named(tampered.body_root, "dx")[0].value = 1e6  # the "attack"
        evil_client = description.make_client(lambda loc: (lambda: net.connect(loc)))
        try:
            evil_client.call(tampered)
            print("!! tampering went unnoticed")
        except SoapFault as fault:
            print(f"tampered call rejected: {fault.code}: {fault.string}")
        evil_client.close()
    finally:
        service.stop()

    print(
        "\nEncoding (BXSA), compression (deflate), transport (TCP) and\n"
        "security (HMAC over the data model) are four independent policies\n"
        "on one generic engine; the WSDL-lite description made the stack\n"
        "discoverable instead of hardcoded."
    )


if __name__ == "__main__":
    main()
