#!/usr/bin/env python
"""Sensor network scenario: many small messages at high frequency.

The paper's introduction motivates binary XML with "wide-scale wireless
sensor networks [where] small data messages are transmitted between the
machines but at very high frequency and on real-time demand" — the regime
where the separated schemes' fixed costs (extra channels, file handling,
GridFTP authentication) are fatal, and where even textual XML's per-message
overhead adds up.

This example streams readings from a simulated station fleet into an
aggregation service over one persistent connection per encoding, comparing
throughput and bytes moved.

Run:  python examples/sensor_network.py
"""

import time

import numpy as np

from repro.core import (
    BXSAEncoding,
    Dispatcher,
    SoapEnvelope,
    SoapTcpClient,
    SoapTcpService,
    XMLEncoding,
)
from repro.services.verification import VerificationResult  # noqa: F401 (doc pointer)
from repro.transport import MemoryNetwork
from repro.workloads.sensors import SensorReading, sensor_stream
from repro.xdm import element, leaf
from repro.xdm.path import children_named

N_MESSAGES = 400


def build_aggregator() -> tuple[Dispatcher, dict]:
    """Keeps a running mean per station; returns current fleet summary."""
    state: dict[int, list] = {}
    dispatcher = Dispatcher()

    @dispatcher.operation("Report")
    def report(request: SoapEnvelope):
        reading = SensorReading.from_bxdm(
            children_named(request.body_root, "reading")[0]
        )
        entry = state.setdefault(reading.station, [0, 0.0])
        entry[0] += 1
        entry[1] += float(reading.channels.mean())
        return element(
            "ReportResponse",
            leaf("station", reading.station, "int"),
            leaf("acknowledged", True, "boolean"),
        )

    return dispatcher, state


def run_stream(net: MemoryNetwork, encoding, label: str) -> None:
    client = SoapTcpClient(lambda: net.connect("agg"), encoding=encoding)
    sent_bytes = 0
    start = time.perf_counter()
    for reading in sensor_stream(N_MESSAGES, n_stations=16, n_channels=8):
        envelope = SoapEnvelope.wrap(element("Report", reading.to_bxdm()))
        sent_bytes += len(encoding.encode(envelope.to_document()))
        response = client.call(envelope)
        assert children_named(response.body_root, "acknowledged")[0].value is True
    elapsed = time.perf_counter() - start
    client.close()
    print(
        f"{label:12s} {N_MESSAGES} readings in {elapsed * 1e3:7.1f} ms "
        f"({N_MESSAGES / elapsed:7.0f} msg/s), {sent_bytes / N_MESSAGES:6.1f} bytes/msg"
    )


def main() -> None:
    net = MemoryNetwork()
    dispatcher, state = build_aggregator()
    service = SoapTcpService(net.listen("agg"), dispatcher).start()
    try:
        run_stream(net, XMLEncoding(), "textual XML")
        run_stream(net, BXSAEncoding(), "binary XML")
    finally:
        service.stop()

    means = {
        station: round(total / count, 2) for station, (count, total) in sorted(state.items())
    }
    print(f"\nfleet summary (station -> mean of means): {means}")
    print(
        "\nBoth encodings ride the same persistent SOAP channel; the binary\n"
        "one shrinks each message and skips all float<->text conversion —\n"
        "the per-message margin that matters at sensor-network rates."
    )


if __name__ == "__main__":
    main()
