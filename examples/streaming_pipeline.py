#!/usr/bin/env python
"""Streaming pipeline: process a huge binary-XML message in bounded memory.

Two capabilities the frame format enables, demonstrated on one message:

1. **accelerated sequential access** (§4.1) — a consumer pulls a single
   element out of a many-megabyte document by skipping sibling frames via
   their Size fields, never touching the bulk payloads;
2. **streaming consumption** — a reducer walks the document as a pull-event
   stream (zero-copy array views), computing per-station statistics without
   ever materializing the tree.

The message: a day of high-rate sensor batches — 96 stations × a packed
array of samples each, plus a trailing manifest element.

Run:  python examples/streaming_pipeline.py
"""

import time

import numpy as np

from repro.bxsa import BXSAStreamReader, BXSAStreamWriter, EventKind, FrameScanner, decode
from repro.xdm import leaf

N_STATIONS = 96
SAMPLES_PER_STATION = 50_000


def build_message() -> bytes:
    """Stream-write the day's batches (the producer never holds the whole
    dataset either — each station's array is emitted and released)."""
    writer = BXSAStreamWriter().start_document()
    writer.start_element("day", attributes={"date": "2006-07-07"})
    rng = np.random.default_rng(7)
    for station in range(N_STATIONS):
        samples = np.round(rng.normal(20.0, 5.0, SAMPLES_PER_STATION), 2)
        writer.array(f"st{station:02d}", samples, item_name="s")
    writer.leaf("manifest", f"{N_STATIONS} stations, {SAMPLES_PER_STATION} samples each", "string")
    writer.end_element()
    return writer.end_document()


def main() -> None:
    blob = build_message()
    print(f"message: {len(blob) / 1e6:.1f} MB of BXSA "
          f"({N_STATIONS} stations x {SAMPLES_PER_STATION} samples)\n")

    # -- 1. pluck the manifest out without decoding anything else ---------
    scanner = FrameScanner(blob)
    start = time.perf_counter()
    day = next(scanner.children(0))
    manifest_info = scanner.find_child_named(day.start, "manifest")
    manifest = scanner.decode_frame(manifest_info.start, ancestors=(day.start,))
    scan_time = time.perf_counter() - start
    print(f"scanner: found the manifest in {scan_time * 1e3:.2f} ms")
    print(f"         -> {manifest.value!r}")

    # -- 2. stream-reduce the whole message -------------------------------
    start = time.perf_counter()
    hottest_station, hottest_mean = None, -1e9
    total_samples = 0
    for event in BXSAStreamReader(blob):
        if event.kind is EventKind.ARRAY:
            mean = float(event.values.mean())  # zero-copy view into blob
            total_samples += int(event.values.size)
            if mean > hottest_mean:
                hottest_station, hottest_mean = event.name.local, mean
    stream_time = time.perf_counter() - start
    print(f"\nstream reduce: {total_samples} samples in {stream_time * 1e3:.1f} ms")
    print(f"               hottest station {hottest_station} (mean {hottest_mean:.2f})")

    # -- reference: the full-tree path ------------------------------------
    start = time.perf_counter()
    tree = decode(blob)
    tree_time = time.perf_counter() - start
    print(f"\nfull decode (reference): {tree_time * 1e3:.1f} ms for the whole tree")
    print(
        "\nThe scanner answered its query by *skipping* "
        f"{N_STATIONS} array frames; the stream reducer visited every value "
        "through zero-copy views.  Neither built the document tree."
    )


if __name__ == "__main__":
    main()
