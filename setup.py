"""Legacy setup shim: the offline environment lacks the `wheel` package, so
PEP 517 editable installs cannot build; this keeps `pip install -e .` working
via the classic setuptools develop path."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
    python_requires=">=3.10",
)
