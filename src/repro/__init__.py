"""repro: a generic SOAP framework over binary XML (HPDC 2006 reproduction).

Public API re-exports.  The package layers, bottom-up:

``repro.xbs`` → ``repro.xdm`` → ``repro.bxsa`` / ``repro.xmlcodec`` →
``repro.core`` (the generic SOAP engine) → ``repro.transport`` bindings,
with the evaluation substrates (``netcdf``, ``gridftp``, ``datachannel``,
``netsim``, ``workloads``, ``services``, ``harness``) alongside.

Most applications only need what is re-exported here: the data-model
builders, the two encodings, the engine/service/client classes and a
transport.
"""

__version__ = "0.1.0"

from repro.xdm import (
    ArrayElement,
    DocumentNode,
    ElementNode,
    LeafElement,
    QName,
    TreeBuilder,
    array,
    deep_equal,
    doc,
    element,
    leaf,
    text,
)
from repro.bxsa import decode as bxsa_decode
from repro.bxsa import encode as bxsa_encode
from repro.xmlcodec import parse_document, serialize
from repro.core import (
    BXSAEncoding,
    Dispatcher,
    ServiceProxy,
    SoapEngine,
    SoapEnvelope,
    SoapFault,
    SoapHttpClient,
    SoapHttpService,
    SoapTcpClient,
    SoapTcpService,
    XMLEncoding,
)
from repro.transport import MemoryNetwork, TcpListener, connect_tcp

__all__ = [
    "ArrayElement",
    "BXSAEncoding",
    "Dispatcher",
    "DocumentNode",
    "ElementNode",
    "LeafElement",
    "MemoryNetwork",
    "QName",
    "ServiceProxy",
    "SoapEngine",
    "SoapEnvelope",
    "SoapFault",
    "SoapHttpClient",
    "SoapHttpService",
    "SoapTcpClient",
    "SoapTcpService",
    "TcpListener",
    "TreeBuilder",
    "XMLEncoding",
    "__version__",
    "array",
    "bxsa_decode",
    "bxsa_encode",
    "connect_tcp",
    "deep_equal",
    "doc",
    "element",
    "leaf",
    "parse_document",
    "serialize",
    "text",
]
