"""XML databinding: Python dataclasses ↔ bXDM elements.

The paper's Figure 3 places an "XML databinding" box directly on the SOAP
layer — the layer that lets application code exchange typed objects without
hand-assembling message trees.  This package is that box: declare a
dataclass, and :func:`to_element` / :func:`from_element` map it to and from
bXDM using the same atomic-type machinery both codecs share, so a bound
object rides textual XML or BXSA unchanged.

Supported field types: ``int``/``float``/``bool``/``str`` (typed leaves),
``numpy.ndarray`` (packed ArrayElement — annotate the dtype with
:class:`Array`), ``Optional`` of any of those, nested bound dataclasses,
and ``list`` of nested bound dataclasses.

Example::

    @dataclass
    class Reading:
        station: int
        tick: int
        channels: Array["f4"]

    element = to_element(Reading(3, 99, np.zeros(8, "f4")))
    reading = from_element(Reading, element)
"""

from repro.binding.fields import Array
from repro.binding.mapper import BindingError, from_element, to_element

__all__ = ["Array", "BindingError", "from_element", "to_element"]
