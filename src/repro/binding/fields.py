"""Field annotation helpers for the databinding layer."""

from __future__ import annotations

import numpy as np


class _ArrayMeta(type):
    """Makes ``Array["f8"]`` produce a dtype-carrying annotation class."""

    _cache: dict[str, type] = {}

    def __getitem__(cls, dtype_spec) -> type:
        key = np.dtype(dtype_spec).str
        cached = cls._cache.get(key)
        if cached is None:
            cached = _ArrayMeta(
                f"Array[{key}]", (Array,), {"dtype": np.dtype(dtype_spec)}
            )
            cls._cache[key] = cached
        return cached


class Array(metaclass=_ArrayMeta):
    """Annotation for packed numpy array fields: ``channels: Array["f4"]``.

    The subscript fixes the element dtype; the bound value is always a
    1-D C-contiguous array of that dtype (coerced on construction of the
    element, validated on extraction).
    """

    dtype: np.dtype = np.dtype("f8")
