"""The dataclass ↔ bXDM mapping engine.

Mapping rules (field name = element local name):

=====================  ===================================================
field annotation       element form
=====================  ===================================================
``int``                ``LeafElement`` typed xsd:long (any int fits)
``float``              ``LeafElement`` typed xsd:double
``bool``               ``LeafElement`` typed xsd:boolean
``str``                ``LeafElement`` typed xsd:string
``Array[dtype]``       ``ArrayElement`` of that dtype
bound dataclass        nested component element
``list[dataclass]``    repeated nested elements (one per item)
``Optional[T]``        element omitted when the value is None
=====================  ===================================================

``from_element`` is strict: missing required fields, type mismatches and
unknown child elements raise :class:`BindingError` with the field path —
the databinding layer is where silent schema drift must be caught.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.binding.fields import Array
from repro.xdm.nodes import ArrayElement, ElementNode, LeafElement
from repro.xdm.builder import array as make_array
from repro.xdm.builder import element as make_element
from repro.xdm.builder import leaf as make_leaf


class BindingError(TypeError):
    """A value or element does not fit its declared binding."""


def _is_bound_dataclass(tp) -> bool:
    return dataclasses.is_dataclass(tp) and isinstance(tp, type)


def _unwrap_optional(tp) -> tuple[object, bool]:
    """(inner type, is_optional) for Optional[T]; passthrough otherwise."""
    origin = typing.get_origin(tp)
    if origin is typing.Union:
        args = [a for a in typing.get_args(tp) if a is not type(None)]
        if len(args) == 1 and type(None) in typing.get_args(tp):
            return args[0], True
    return tp, False


def _list_item_type(tp):
    if typing.get_origin(tp) in (list, typing.List):
        (item,) = typing.get_args(tp) or (None,)
        return item
    return None


_LEAF_TYPES = {int: "long", float: "double", bool: "boolean", str: "string"}


# ---------------------------------------------------------------------------
# object → element


def to_element(obj, name: str | None = None) -> ElementNode:
    """Map a bound dataclass instance to a component element.

    The element name defaults to the class name; fields become children in
    declaration order.
    """
    cls = type(obj)
    if not _is_bound_dataclass(cls):
        raise BindingError(f"{cls.__name__} is not a dataclass")
    node = make_element(name or cls.__name__)
    hints = typing.get_type_hints(cls)
    for field in dataclasses.fields(cls):
        value = getattr(obj, field.name)
        node.children.extend(_field_to_nodes(field.name, hints[field.name], value))
    return node


def _field_to_nodes(field_name: str, annotation, value) -> list:
    inner, optional = _unwrap_optional(annotation)
    if value is None:
        if optional:
            return []
        raise BindingError(f"field {field_name!r} is None but not Optional")

    if isinstance(inner, type) and issubclass(inner, Array):
        arr = np.asarray(value)
        if arr.ndim != 1:
            raise BindingError(f"field {field_name!r}: arrays must be 1-D")
        return [make_array(field_name, arr.astype(inner.dtype, copy=False))]

    if inner in _LEAF_TYPES:
        if inner is not bool and isinstance(value, bool):
            raise BindingError(f"field {field_name!r}: bool given for {inner.__name__}")
        if not isinstance(value, inner) and not (
            inner is float and isinstance(value, int)
        ):
            raise BindingError(
                f"field {field_name!r}: expected {inner.__name__}, "
                f"got {type(value).__name__}"
            )
        return [make_leaf(field_name, inner(value), _LEAF_TYPES[inner])]

    item_type = _list_item_type(inner)
    if item_type is not None:
        if not _is_bound_dataclass(item_type):
            raise BindingError(
                f"field {field_name!r}: list items must be bound dataclasses"
            )
        return [to_element(item, field_name) for item in value]

    if _is_bound_dataclass(inner):
        return [to_element(value, field_name)]

    raise BindingError(
        f"field {field_name!r}: unsupported annotation {annotation!r}"
    )


# ---------------------------------------------------------------------------
# element → object


def from_element(cls, node: ElementNode, *, path: str = ""):
    """Rebuild a bound dataclass instance from a component element."""
    if not _is_bound_dataclass(cls):
        raise BindingError(f"{cls.__name__} is not a dataclass")
    path = path or cls.__name__
    children: dict[str, list[ElementNode]] = {}
    for child in node.elements():
        children.setdefault(child.name.local, []).append(child)

    hints = typing.get_type_hints(cls)
    kwargs = {}
    consumed: set[str] = set()
    for field in dataclasses.fields(cls):
        annotation = hints[field.name]
        inner, optional = _unwrap_optional(annotation)
        matches = children.get(field.name, [])
        consumed.add(field.name)
        field_path = f"{path}.{field.name}"

        item_type = _list_item_type(inner)
        if item_type is not None:
            kwargs[field.name] = [
                from_element(item_type, m, path=field_path) for m in matches
            ]
            continue
        if not matches:
            if optional:
                kwargs[field.name] = None
                continue
            raise BindingError(f"{field_path}: required element is missing")
        if len(matches) > 1:
            raise BindingError(f"{field_path}: {len(matches)} elements, expected 1")
        kwargs[field.name] = _node_to_value(inner, matches[0], field_path)

    unknown = set(children) - consumed
    if unknown:
        raise BindingError(f"{path}: unknown child element(s) {sorted(unknown)}")
    return cls(**kwargs)


def _node_to_value(inner, node: ElementNode, path: str):
    if isinstance(inner, type) and issubclass(inner, Array):
        if not isinstance(node, ArrayElement):
            raise BindingError(f"{path}: expected an array element")
        values = np.asarray(node.values)
        if values.dtype != inner.dtype:
            try:
                values = values.astype(inner.dtype)
            except (TypeError, ValueError) as exc:
                raise BindingError(f"{path}: cannot convert {values.dtype} array: {exc}")
        return values

    if inner in _LEAF_TYPES:
        if not isinstance(node, LeafElement):
            raise BindingError(f"{path}: expected a typed leaf element")
        value = node.value
        if inner is bool:
            if node.atype.xsd_name != "boolean":
                raise BindingError(f"{path}: expected xsd:boolean, got {node.atype.xsd_name}")
            return bool(value)
        if inner is int:
            if not isinstance(value, int) or isinstance(value, bool):
                raise BindingError(f"{path}: expected an integer leaf")
            return int(value)
        if inner is float:
            if isinstance(value, bool) or isinstance(value, str):
                raise BindingError(f"{path}: expected a numeric leaf")
            return float(value)
        if not isinstance(value, str):
            raise BindingError(f"{path}: expected a string leaf")
        return value

    if _is_bound_dataclass(inner):
        return from_element(inner, node, path=path)

    raise BindingError(f"{path}: unsupported annotation {inner!r}")
