"""BXSA: Binary XML for Scientific Applications.

The frame-based binary XML encoding of §4 of the paper, layered on XBS.  A
BXSA document is a sequence of *frames*, one per bXDM node, with container
frames (document, component element) embedding their children recursively.
Every frame starts with the Common Frame Prefix — a byte-order/frame-type
byte plus a variable-length ``Size`` field — so a consumer can skip over any
frame without parsing it (*accelerated sequential access*, exposed by
:mod:`repro.bxsa.scanner`).

Highlights reproduced from the paper:

* coarse frame granularity — attributes and namespace declarations live
  *inside* their element's frame rather than as separate tiny frames (§4.1);
* namespace tokenization — QNames reference a namespace by (scope depth,
  table index) instead of by prefix string (§4.1);
* typed leaf and array payloads in native machine form, with per-frame byte
  order so frames can be embedded in containers of a different endianness;
* transcodability with textual XML (§4.2), via :mod:`repro.bxsa.transcode`.

See :mod:`repro.bxsa.constants` for the exact wire layout.
"""

from repro.bxsa.constants import FrameType, pack_prefix_byte, unpack_prefix_byte
from repro.bxsa.decoder import BXSADecoder, decode, decode_document
from repro.bxsa.encoder import BXSAEncoder, encode, encode_document
from repro.bxsa.errors import BXSADecodeError, BXSAEncodeError, BXSAError
from repro.bxsa.scanner import FrameInfo, FrameScanner
from repro.bxsa.session import CodecSession, SessionStats
from repro.bxsa.stream import (
    BXSAStreamReader,
    BXSAStreamWriter,
    EventKind,
    StreamDecoder,
    StreamEvent,
    write_document,
)
from repro.bxsa.transcode import bxsa_to_xml, xml_to_bxsa

__all__ = [
    "BXSADecodeError",
    "BXSAStreamReader",
    "BXSAStreamWriter",
    "EventKind",
    "StreamEvent",
    "BXSADecoder",
    "BXSAEncodeError",
    "BXSAEncoder",
    "BXSAError",
    "CodecSession",
    "FrameInfo",
    "FrameScanner",
    "FrameType",
    "SessionStats",
    "StreamDecoder",
    "bxsa_to_xml",
    "decode",
    "decode_document",
    "encode",
    "encode_document",
    "pack_prefix_byte",
    "unpack_prefix_byte",
    "write_document",
    "xml_to_bxsa",
]
