"""BXSA wire-format constants and the exact frame layout.

Common Frame Prefix (paper Figure 2)::

    byte 0   bits 7..6  byte-order of everything in this frame
                        (00 = little endian, 01 = big endian)
             bits 5..0  frame type code (FrameType)
    bytes 1+ Size       VLS integer: number of body bytes that follow it

Because the prefix carries the byte order *per frame*, a frame encoded on a
big-endian host can be embedded verbatim inside a little-endian document —
the paper's rationale for not making endianness a document-level property.

Frame bodies:

``DOCUMENT``
    child count (VLS), then that many child frames back to back.

``COMPONENT_ELEMENT``
    element header (below), child count (VLS), then child frames.

``LEAF_ELEMENT``
    element header, value type code (u8 :class:`~repro.xbs.constants.TypeCode`),
    value (fixed-width scalar in frame byte order; STRING = VLS length + UTF-8).

``ARRAY_ELEMENT``
    element header, item type code (u8), item-name hint (VLS length + UTF-8,
    zero length = none — an extension this implementation adds so textual
    re-serialization keeps the original item element names), item count
    (VLS), pad length (u8) + that many zero bytes aligning the payload to
    the item size relative to the body start, then ``count×size`` raw item
    bytes in frame byte order.

``CHARACTER_DATA`` / ``COMMENT``
    VLS byte length + UTF-8 text.

``PI``
    target (VLS length + UTF-8), data (VLS length + UTF-8).

Streamed container profile (the three ``STREAM_*`` frame types)
---------------------------------------------------------------

The container frames above embed their children, so their ``Size`` field
cannot be written until every child is byte-complete — fine for a tree
encoder that back-patches in memory, fatal for a sink-driven writer that
must flush bytes it will never see again.  The streamed profile replaces
each container frame with a *pair* of small forward-length frames; child
frames appear between them **byte-identical** to the standard profile
(leaf, array, text, comment and PI frames are already forward-length):

``STREAM_DOCUMENT``
    empty body.  Opens a document whose children follow as sibling frames.

``STREAM_ELEMENT``
    element header (exactly the layout above).  Opens an element; its
    namespace table participates in scope-depth resolution exactly as a
    ``COMPONENT_ELEMENT`` table would.

``STREAM_END``
    child count (VLS).  Closes the innermost open streamed container; the
    count is an integrity check against the children actually seen, the
    role the embedded child count plays in the standard profile.

Only :class:`~repro.bxsa.stream.BXSAStreamWriter` (in sink mode) emits
this profile and only :class:`~repro.bxsa.stream.StreamDecoder` consumes
it; the tree decoder and the scanner reject the ``STREAM_*`` codes with a
pointer at the streaming reader.

Element header (shared by the three element frame types)::

    N1 (VLS)                      number of namespace declarations
    N1 × { prefix (VLS len + UTF-8), uri (VLS len + UTF-8) }
    element name reference:
        scope depth (VLS)         0 = element is in no namespace
        [table index (VLS)]       present only when depth > 0
    element local name (VLS len + UTF-8)
    N2 (VLS)                      number of attributes
    N2 × { scope depth (VLS), [table index (VLS)],
           attribute local name (VLS len + UTF-8),
           value type code (u8), value (scalar / string as for leaves) }

A *scope depth* of ``d ≥ 1`` refers to the namespace table of the element
frame ``d − 1`` levels above the current one (1 = this frame's own table,
2 = the parent element's, …), counting element frames only — the paper's
"count backwards to indicate where the namespace was declared".  The table
index selects the entry within that frame's declarations.  This tokenized
reference is what replaces prefixes on the wire (§4.1).
"""

from __future__ import annotations

import enum

from repro.bxsa.errors import BXSADecodeError


class FrameType(enum.IntEnum):
    """6-bit frame type codes (wire values; do not renumber)."""

    DOCUMENT = 0x01
    COMPONENT_ELEMENT = 0x02
    LEAF_ELEMENT = 0x03
    ARRAY_ELEMENT = 0x04
    CHARACTER_DATA = 0x05
    COMMENT = 0x06
    PI = 0x07
    # streamed container profile (sink-driven writer / incremental reader)
    STREAM_DOCUMENT = 0x08
    STREAM_ELEMENT = 0x09
    STREAM_END = 0x0A


#: Frame types of the streamed container profile: produced only by the
#: sink-driven :class:`~repro.bxsa.stream.BXSAStreamWriter`, consumed only
#: by :class:`~repro.bxsa.stream.StreamDecoder`.
STREAM_FRAME_TYPES = frozenset(
    {FrameType.STREAM_DOCUMENT, FrameType.STREAM_ELEMENT, FrameType.STREAM_END}
)


def pack_prefix_byte(byte_order: int, frame_type: FrameType) -> int:
    """Combine the 2-bit byte order and 6-bit frame type into byte 0."""
    return ((byte_order & 0x03) << 6) | (int(frame_type) & 0x3F)


def unpack_prefix_byte(value: int) -> tuple[int, FrameType]:
    """Split byte 0 into (byte_order, frame_type), validating both."""
    byte_order = (value >> 6) & 0x03
    if byte_order not in (0, 1):
        raise BXSADecodeError(f"reserved byte-order value {byte_order} in frame prefix")
    code = value & 0x3F
    try:
        return byte_order, FrameType(code)
    except ValueError:
        raise BXSADecodeError(f"unknown frame type code 0x{code:02x}") from None
