"""Compiled BXSA decode plans: replay the byte stream of a known shape.

The stateless :class:`~repro.bxsa.decoder.BXSADecoder` re-runs the whole
parse machinery for every message: per-frame type dispatch, scope pushes and
pops, VLS name references resolved against the scope stack, UTF-8 decoding
of the same header strings, QName construction, attribute list assembly.
In the repeated-message regime the paper's Figures 4-6 measure, all of that
work is identical from one message to the next — only the *values* change.

A decode plan is the receive-side mirror of the session's encode plans
(:mod:`repro.bxsa.session`).  After the first stateless decode of a shape,
:func:`compile_decode_plan` re-walks the same bytes and records a flat
instruction list in which every value-independent byte run (frame prefixes,
namespace tables, name references, local names, attribute names and type
codes, child counts, array item-name hints, PI targets) is captured as a
constant, and only the value-dependent holes (frame sizes, attribute and
leaf values, text runs, array counts/pads/payloads) remain live.  Names and
QNames are resolved **once, at compile time**, through the session's intern
tables; replay never touches a scope stack or decodes a header string.

**Replay is self-checking by construction.**  Every constant run is compared
(``memcmp``) against the incoming bytes and every frame ``Size`` field is
validated against the actually-consumed span, exactly as the stateless
decoder validates it; any mismatch makes :func:`replay_decode_plan` return
``None`` and the caller falls back to the stateless path, which either
succeeds (and recompiles) or raises the proper error.  On top of that the
session byte/structure-checks the first reuse of every plan against a full
stateless decode and poisons the fingerprint if they diverge — see
``CodecSession.decode``.

Array payloads keep the documented ``copy=False`` aliasing contract: replay
hands out the same zero-copy ``np.frombuffer`` views over the input buffer
that the stateless decoder produces (``copy=True`` materializes independent
native-order arrays), so a warm session is a pure execution strategy on the
receive side too.
"""

from __future__ import annotations

import numpy as np

from repro.bxsa.constants import FrameType, unpack_prefix_byte
from repro.bxsa.errors import BXSADecodeError
from repro.bxsa.frames import (
    read_name_ref,
    read_string,
    read_type_code,
    read_vls,
    skip_header_names,
)
from repro.bxsa.namespaces import ScopeStack
from repro.xbs.constants import TypeCode
from repro.xbs.errors import XBSDecodeError
from repro.xbs.structcache import struct_for, wire_dtype
from repro.xbs.varint import decode_vls
from repro.xdm.nodes import (
    ArrayElement,
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    NamespaceNode,
    PINode,
    TextNode,
)
from repro.xdm.qname import QName
from repro.xdm.types import atomic_type_for_code

# Plan instruction tags.  Each op is a tuple whose first element is one of
# these; the replay loop dispatches on it with a flat if/elif chain.
_D_CONST = 0  # (tag, expected)   structural bytes, memcmp'd against the stream
_D_SIZE = 1  # (tag,)             read a frame Size field, push the frame end
_D_DOC = 2  # (tag,)              open a DocumentNode container
_D_ELEM = 3  # (tag, qname, ns_pairs, attr_meta)  open a component element
_D_END = 4  # (tag,)              close a container: size check + attach
_D_LEAF = 5  # (tag, qname, ns_pairs, attr_meta, atype, size, struct, is_bool)
_D_ARRAY = 6  # (tag, qname, ns_pairs, attr_meta, atype, item_name, dtype, item_size)
_D_TEXT = 7  # (tag,)             CHARACTER_DATA frame
_D_COMMENT = 8  # (tag,)
_D_PI = 9  # (tag, target)
_D_ATTRVAL = 10  # (tag, size, struct, is_bool)  one attribute's value bytes

#: Frame types that start with an element header (whose name part is the
#: structural fingerprint material).
_HEADER_FRAMES = frozenset(
    (FrameType.COMPONENT_ELEMENT, FrameType.LEAF_ELEMENT, FrameType.ARRAY_ELEMENT)
)


class DecodePlan:
    """A compiled per-shape instruction list (internal to the session)."""

    __slots__ = ("ops", "verified")

    def __init__(self, ops: list[tuple]) -> None:
        self.ops = ops
        #: Set by the session once a replay has been byte/structure-checked
        #: against the stateless decoder (first reuse).
        self.verified = False


def decode_fingerprint(data, offset: int = 0) -> tuple:
    """A cheap, value-independent structural key for the frame at ``offset``.

    Captures the frame prefix byte plus the *name* part of the root
    element's header (namespace table, QName reference, local name — see
    :func:`repro.bxsa.frames.skip_header_names`); for document frames, the
    child count and the first child's name bytes.  Those bytes are
    identical across same-shape messages and differ for most distinct
    shapes, so the key is a good cache index — it does **not** need to be
    collision-free, because replay memcmps every structural byte anyway and
    bails to the stateless path on any mismatch.

    Raises :class:`BXSADecodeError` on a malformed frame head; the caller
    routes such buffers straight to the stateless decoder for the real
    error message.
    """
    if offset >= len(data):
        raise BXSADecodeError(f"truncated frame prefix at offset {offset}")
    lead = data[offset]
    _, frame_type = unpack_prefix_byte(lead)
    size, pos = read_vls(data, offset + 1)
    if pos + size > len(data):
        raise BXSADecodeError(
            f"frame at offset {offset} claims {size} body bytes but only "
            f"{len(data) - pos} remain"
        )
    if frame_type in _HEADER_FRAMES:
        return (lead, bytes(data[pos : skip_header_names(data, pos)]))
    if frame_type is FrameType.DOCUMENT:
        count, pos = read_vls(data, pos)
        if count == 0 or pos >= len(data):
            return (lead, count)
        child_lead = data[pos]
        _, child_type = unpack_prefix_byte(child_lead)
        _, cpos = read_vls(data, pos + 1)
        if child_type in _HEADER_FRAMES:
            return (lead, count, child_lead, bytes(data[cpos : skip_header_names(data, cpos)]))
        return (lead, count, child_lead)
    return (lead,)


# ---------------------------------------------------------------------------
# compilation


class _Compiler:
    """Re-walk an already-validated frame and record a plan.

    Mirrors ``BXSADecoder.read_node``/``_read_frame``/``_read_header`` field
    for field, but instead of building nodes it partitions the byte stream
    into constant (structural) runs and value holes.  The caller decodes the
    buffer statelessly *first*, so compilation only ever sees well-formed
    input; it still re-validates sizes as it goes, cheaply, and any surprise
    raises — the session poisons the fingerprint in response.
    """

    def __init__(self, data, offset: int, qname_cache: dict | None) -> None:
        self.data = data
        self.pos = offset
        self.ops: list[tuple] = []
        self._const_start = offset
        self._scopes = ScopeStack()
        self._qnames = qname_cache

    def compile(self) -> DecodePlan:
        containers: list[list] = []  # [remaining, is_element, end]
        while True:
            opened = self._frame()
            if opened is not None and opened[0]:
                containers.append(list(opened))
                continue
            if opened is not None:  # empty container closes immediately
                self._close(opened[1], opened[2])
            # bubble the completed node upward, closing filled containers
            while True:
                if not containers:
                    self._flush()
                    return DecodePlan(self.ops)
                top = containers[-1]
                top[0] -= 1
                if top[0]:
                    break
                containers.pop()
                self._close(top[1], top[2])

    # -- byte partitioning ------------------------------------------------

    def _flush(self) -> None:
        """Emit the pending constant run, if any."""
        if self.pos > self._const_start:
            self.ops.append((_D_CONST, bytes(self.data[self._const_start : self.pos])))
            self._const_start = self.pos

    def _skip_value(self, value_end: int) -> None:
        """Mark ``[pos, value_end)`` as a value hole (the op just emitted
        reads it at replay time)."""
        self.pos = value_end
        self._const_start = value_end

    # -- frames -----------------------------------------------------------

    def _frame(self):
        """Compile one frame.  Returns ``(count, is_element, end)`` for a
        container frame, ``None`` for a complete node."""
        data = self.data
        if self.pos >= len(data):
            raise BXSADecodeError(f"truncated frame prefix at offset {self.pos}")
        byte_order, frame_type = unpack_prefix_byte(data[self.pos])
        self.pos += 1  # the prefix byte rides the constant run
        self._flush()
        size, pos = read_vls(data, self.pos)
        end = pos + size
        if end > len(data):
            raise BXSADecodeError(
                f"frame claims {size} body bytes but only {len(data) - pos} remain"
            )
        self.ops.append((_D_SIZE,))
        self._skip_value(pos)

        if frame_type is FrameType.DOCUMENT:
            count, self.pos = read_vls(data, self.pos)  # structural: stays const
            self.ops.append((_D_DOC,))
            return (count, False, end)

        if frame_type is FrameType.COMPONENT_ELEMENT:
            qname, ns_pairs, attr_meta = self._header(byte_order)
            count, self.pos = read_vls(data, self.pos)
            self.ops.append((_D_ELEM, qname, ns_pairs, attr_meta))
            return (count, True, end)

        if frame_type is FrameType.LEAF_ELEMENT:
            qname, ns_pairs, attr_meta = self._header(byte_order)
            self._scopes.pop()
            code, self.pos = read_type_code(data, self.pos)
            atype = atomic_type_for_code(code)
            self._flush()
            if code is TypeCode.STRING:
                op = (_D_LEAF, qname, ns_pairs, attr_meta, atype, 0, None, False)
                length, vpos = read_vls(data, self.pos)
                value_end = vpos + length
            else:
                op = (
                    _D_LEAF,
                    qname,
                    ns_pairs,
                    attr_meta,
                    atype,
                    code.size,
                    struct_for(byte_order, code),
                    code is TypeCode.BOOL,
                )
                value_end = self.pos + code.size
            self.ops.append(op)
            self._skip_value(value_end)
            self._require_end(end)
            return None

        if frame_type is FrameType.ARRAY_ELEMENT:
            qname, ns_pairs, attr_meta = self._header(byte_order)
            self._scopes.pop()
            code, self.pos = read_type_code(data, self.pos)
            if code is TypeCode.STRING:
                raise BXSADecodeError("array frames cannot hold strings")
            atype = atomic_type_for_code(code)
            item_name, self.pos = read_string(data, self.pos)
            self._flush()
            # count, pad and payload are per-message; the op reads them
            count, pos = read_vls(data, self.pos)
            if pos >= end:
                raise BXSADecodeError(f"truncated array frame at offset {pos}")
            pad = data[pos]
            pos += 1 + pad
            nbytes = count * code.size
            if pos + nbytes > end:
                raise BXSADecodeError(
                    f"array payload of {nbytes} bytes overruns frame end {end}"
                )
            self.ops.append(
                (
                    _D_ARRAY,
                    qname,
                    ns_pairs,
                    attr_meta,
                    atype,
                    item_name or None,
                    wire_dtype(byte_order, code),
                    code.size,
                )
            )
            self._skip_value(pos + nbytes)
            self._require_end(end)
            return None

        if frame_type in (FrameType.CHARACTER_DATA, FrameType.COMMENT):
            self._flush()
            self.ops.append(
                (_D_TEXT,) if frame_type is FrameType.CHARACTER_DATA else (_D_COMMENT,)
            )
            length, pos = read_vls(data, self.pos)
            self._skip_value(pos + length)
            self._require_end(end)
            return None

        if frame_type is FrameType.PI:
            target, self.pos = read_string(data, self.pos)  # structural
            self._flush()
            self.ops.append((_D_PI, target))
            length, pos = read_vls(data, self.pos)
            self._skip_value(pos + length)
            self._require_end(end)
            return None

        raise BXSADecodeError(f"unhandled frame type {frame_type!r}")

    def _close(self, is_element: bool, end: int) -> None:
        if is_element:
            self._scopes.pop()
        self._flush()  # e.g. an empty element's trailing child-count bytes
        self._require_end(end)
        self.ops.append((_D_END,))

    def _require_end(self, end: int) -> None:
        if self.pos != end:
            raise BXSADecodeError(
                f"frame size mismatch: content ends at {self.pos}, "
                f"Size field says {end}"
            )

    # -- headers ----------------------------------------------------------

    def _header(self, byte_order: int):
        """Compile an element header.  Pushes the frame's scope (the caller
        pops it), emits ``_D_ATTRVAL`` ops for the value holes, and returns
        the pre-resolved ``(qname, ns_pairs, attr_meta)`` for the build op.
        """
        data = self.data
        pos = self.pos
        n1, pos = read_vls(data, pos)
        table: list[tuple[str, str]] = []
        for _ in range(n1):
            prefix, pos = read_string(data, pos)
            uri, pos = read_string(data, pos)
            table.append((prefix, uri))
        self._scopes.push(table)
        depth, index, pos = read_name_ref(data, pos)
        local, pos = read_string(data, pos)
        qname = self._qname(local, depth, index)
        n2, pos = read_vls(data, pos)
        self.pos = pos  # everything so far is structural
        attr_meta: list[tuple] = []
        for _ in range(n2):
            a_depth, a_index, pos = read_name_ref(data, self.pos)
            a_local, pos = read_string(data, pos)
            code, pos = read_type_code(data, pos)
            self.pos = pos  # the ref, name and type-code byte are structural
            self._flush()
            atype = atomic_type_for_code(code)
            if code is TypeCode.STRING:
                self.ops.append((_D_ATTRVAL, 0, None, False))
                length, vpos = read_vls(data, self.pos)
                value_end = vpos + length
            else:
                self.ops.append(
                    (_D_ATTRVAL, code.size, struct_for(byte_order, code),
                     code is TypeCode.BOOL)
                )
                value_end = self.pos + code.size
            self._skip_value(value_end)
            attr_meta.append((self._qname(a_local, a_depth, a_index), atype))
        return qname, tuple(table), tuple(attr_meta)

    def _qname(self, local: str, depth: int, index: int) -> QName:
        if depth == 0:
            prefix = uri = ""
        else:
            prefix, uri = self._scopes.resolve(depth, index)
        cache = self._qnames
        if cache is None:
            return QName(local, uri, prefix)
        key = (local, uri, prefix)
        name = cache.get(key)
        if name is None:
            name = QName(local, uri, prefix)
            cache[key] = name
        return name


def compile_decode_plan(data, offset: int = 0, *, qname_cache: dict | None = None) -> DecodePlan:
    """Compile a plan for the (already stateless-decoded) frame at ``offset``.

    ``qname_cache`` is the session's intern table: the QNames baked into the
    plan are the very objects the stateless warm path interned, so plan
    replay preserves cross-message name identity.
    """
    return _Compiler(data, offset, qname_cache).compile()


# ---------------------------------------------------------------------------
# replay


def _string_value(data, pos: int, n: int):
    """Read a VLS-length-prefixed UTF-8 value; ``(None, 0)`` on any
    malformed input (the caller bails to the stateless path, which raises
    the proper error)."""
    try:
        length, pos = decode_vls(data, pos)
    except XBSDecodeError:
        return None, 0
    end = pos + length
    if end > n:
        return None, 0
    try:
        return str(data[pos:end], "utf-8"), end
    except UnicodeDecodeError:
        return None, 0


def _make_attrs(attr_meta: tuple, values: list) -> list:
    attrs = []
    for (qname, atype), value in zip(attr_meta, values):
        attr = AttributeNode.__new__(AttributeNode)
        attr.name = qname
        attr.value = value
        attr.atype = atype
        attrs.append(attr)
    values.clear()
    return attrs


def _make_ns(ns_pairs: tuple) -> list:
    if not ns_pairs:
        return []
    # NamespaceNode is mutable — each replayed tree gets fresh instances
    return [NamespaceNode(prefix, uri) for prefix, uri in ns_pairs]


def replay_decode_plan(plan: DecodePlan, data, pos: int, copy: bool):
    """Run ``plan`` against ``data`` starting at ``pos``.

    Returns ``(root_node, end_pos)`` on success, or ``None`` whenever the
    stream does not byte-match the plan's structure or a size field fails
    validation — the caller falls back to the stateless decoder, which
    either decodes the (differently-shaped) message correctly or raises the
    decoder's own error for malformed input.  Node-validity errors that the
    stateless path would raise (e.g. ``--`` inside a comment) propagate as
    exceptions and are treated as bails by the session.
    """
    n = len(data)
    ends: list[int] = []
    stack: list = []  # open container nodes, innermost last
    attr_values: list = []
    root = None
    for op in plan.ops:
        tag = op[0]
        if tag == _D_CONST:
            expected = op[1]
            new_pos = pos + len(expected)
            if data[pos:new_pos] != expected:
                return None
            pos = new_pos
        elif tag == _D_SIZE:
            try:
                size, pos = decode_vls(data, pos)
            except XBSDecodeError:
                return None
            end = pos + size
            if end > n:
                return None
            ends.append(end)
        elif tag == _D_ATTRVAL:
            _, vsize, packer, is_bool = op
            if packer is not None:
                if pos + vsize > n:
                    return None
                value = packer.unpack_from(data, pos)[0]
                pos += vsize
                if is_bool:
                    value = bool(value)
            else:
                value, pos = _string_value(data, pos, n)
                if value is None:
                    return None
            attr_values.append(value)
        elif tag == _D_LEAF:
            _, qname, ns_pairs, attr_meta, atype, vsize, packer, is_bool = op
            if packer is not None:
                if pos + vsize > n:
                    return None
                value = packer.unpack_from(data, pos)[0]
                pos += vsize
                if is_bool:
                    value = bool(value)
            else:
                value, pos = _string_value(data, pos, n)
                if value is None:
                    return None
            if pos != ends.pop():
                return None
            node = LeafElement.__new__(LeafElement)
            node.name = qname
            node.attributes = _make_attrs(attr_meta, attr_values)
            node.namespaces = _make_ns(ns_pairs)
            node.children = []
            node.atype = atype
            node.value = value
            if stack:
                stack[-1].children.append(node)
            else:
                root = node
        elif tag == _D_ARRAY:
            _, qname, ns_pairs, attr_meta, atype, item_name, dtype, item_size = op
            try:
                count, pos = decode_vls(data, pos)
            except XBSDecodeError:
                return None
            end = ends.pop()
            if pos >= end:
                return None
            pad = data[pos]
            pos += 1 + pad
            nbytes = count * item_size
            if pos + nbytes > end:
                return None
            values = np.frombuffer(data[pos : pos + nbytes], dtype=dtype, count=count)
            if copy:
                values = values.astype(dtype.newbyteorder("="), copy=True)
            pos += nbytes
            if pos != end:
                return None
            node = ArrayElement.__new__(ArrayElement)
            node.name = qname
            node.attributes = _make_attrs(attr_meta, attr_values)
            node.namespaces = _make_ns(ns_pairs)
            node.children = []
            node.atype = atype
            node.values = values
            node.item_name = item_name
            if stack:
                stack[-1].children.append(node)
            else:
                root = node
        elif tag == _D_ELEM:
            _, qname, ns_pairs, attr_meta = op
            node = ElementNode.__new__(ElementNode)
            node.name = qname
            node.attributes = _make_attrs(attr_meta, attr_values)
            node.namespaces = _make_ns(ns_pairs)
            node.children = []
            stack.append(node)
        elif tag == _D_DOC:
            node = DocumentNode.__new__(DocumentNode)
            node.children = []
            stack.append(node)
        elif tag == _D_END:
            if pos != ends.pop():
                return None
            node = stack.pop()
            if stack:
                stack[-1].children.append(node)
            else:
                root = node
        elif tag == _D_TEXT or tag == _D_COMMENT:
            text, pos = _string_value(data, pos, n)
            if text is None:
                return None
            if pos != ends.pop():
                return None
            # the real constructors so malformed content (e.g. "--" in a
            # comment) raises exactly as the stateless decoder would
            node = TextNode(text) if tag == _D_TEXT else CommentNode(text)
            if stack:
                stack[-1].children.append(node)
            else:
                root = node
        elif tag == _D_PI:
            pi_data, pos = _string_value(data, pos, n)
            if pi_data is None:
                return None
            if pos != ends.pop():
                return None
            node = PINode(op[1], pi_data)
            if stack:
                stack[-1].children.append(node)
            else:
                root = node
        else:  # pragma: no cover - compiler/replayer must stay in sync
            raise AssertionError(f"unknown decode plan op {tag}")
    if root is None or stack or ends:  # pragma: no cover - compiler invariant
        return None
    return root, pos
