"""BXSA → bXDM decoder (the encoding policy's "factory method").

The decoder is a single forward pass over the buffer with an explicit
container stack (no recursion).  Frame ``Size`` fields are *validated*
against the actually-consumed bytes — a frame whose content over- or
under-runs its declared size is rejected, which is what makes the scanner's
skip-by-size trustworthy.

Array payloads come back as zero-copy numpy views over the input buffer by
default (read-only when the buffer is immutable), the Python counterpart of
the paper's memory-mapped ArrayElement I/O; pass ``copy=True`` for
independent, writable, native-order arrays.
"""

from __future__ import annotations

import numpy as np

from repro.bxsa.constants import STREAM_FRAME_TYPES, FrameType
from repro.bxsa.errors import BXSADecodeError
from repro.bxsa.frames import (
    read_frame_prefix,
    read_name_ref,
    read_scalar_value,
    read_string,
    read_type_code,
    read_vls,
)
from repro.bxsa.namespaces import ScopeStack, to_nodes
from repro.xbs.constants import TypeCode
from repro.xbs.structcache import wire_dtype
from repro.xdm.errors import XDMTypeError
from repro.xdm.nodes import (
    ArrayElement,
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    Node,
    PINode,
    TextNode,
)
from repro.xdm.qname import QName
from repro.xdm.types import atomic_type_for_code


def decode(data, offset: int = 0, *, copy: bool = False, whole: bool | None = None) -> Node:
    """Decode one BXSA frame (document or element tree) from ``data``.

    By default a decode starting at ``offset == 0`` is a *whole-message*
    decode: trailing bytes after the top-level frame are rejected.  A
    non-zero ``offset`` decodes an *embedded* frame from a larger buffer
    (a pipelined keep-alive buffer, a scanner extract) and ignores whatever
    follows the frame.  Pass ``whole=True``/``False`` to force either
    behaviour regardless of offset; use :class:`BXSADecoder` directly to
    pull consecutive frames from a stream.

    Aliasing contract for ``copy=False`` (the default):

    * Every *materialized* value — scalar leaf values, attribute values,
      strings, QNames, namespace tables, text/comment/PI content — is fully
      converted to independent Python objects during the decode pass.
      Mutating or releasing the source buffer afterwards cannot corrupt
      them.
    * :class:`~repro.xdm.nodes.ArrayElement` payloads are the one
      exception: ``node.values`` is a zero-copy ``numpy`` view **aliasing
      the source buffer**.  If the source is writable (e.g. a
      ``bytearray``), mutating it mutates the decoded array in place — and
      writing through the array mutates the buffer; if the source is
      immutable ``bytes``, the view is read-only.  Callers that outlive or
      recycle the receive buffer must pass ``copy=True`` (independent,
      writable, native-order arrays) or copy the arrays they keep.
    """
    decoder = BXSADecoder(data, offset, copy=copy)
    node = decoder.read_node()
    if whole is None:
        whole = offset == 0
    if whole and decoder.pos != len(decoder.data):
        raise BXSADecodeError(
            f"{len(decoder.data) - decoder.pos} trailing bytes after frame"
        )
    return node


def decode_document(
    data, offset: int = 0, *, copy: bool = False, whole: bool | None = None
) -> DocumentNode:
    """Decode and require a document frame."""
    node = decode(data, offset, copy=copy, whole=whole)
    if not isinstance(node, DocumentNode):
        raise BXSADecodeError(f"expected a document frame, found {type(node).__name__}")
    return node


class _Container:
    __slots__ = ("node", "remaining", "end", "is_element")

    def __init__(self, node, remaining: int, end: int, is_element: bool) -> None:
        self.node = node
        self.remaining = remaining
        self.end = end
        self.is_element = is_element


class BXSADecoder:
    """Streaming decoder: repeated :meth:`read_node` calls pull consecutive
    top-level frames (the TCP binding uses this for message framing).

    ``copy=False`` decodes array payloads as zero-copy views over ``data``;
    see :func:`decode` for the exact aliasing contract.

    ``string_cache`` / ``qname_cache`` are optional intern tables (usually
    owned by a :class:`~repro.bxsa.session.CodecSession`) mapping raw
    UTF-8 bytes → ``str`` and ``(local, uri, prefix)`` → ``QName``.  They
    only apply to *names* (namespace prefixes/URIs, element and attribute
    local names), which repeat heavily across same-shaped messages; value
    strings are never interned.  Passing shared dicts across decoders is
    safe because both cached types are immutable.
    """

    def __init__(
        self,
        data,
        offset: int = 0,
        *,
        copy: bool = False,
        outer_tables: list[list[tuple[str, str]]] | None = None,
        string_cache: dict[bytes, str] | None = None,
        qname_cache: dict[tuple, QName] | None = None,
    ) -> None:
        self.data = memoryview(data) if not isinstance(data, memoryview) else data
        self.pos = offset
        self.copy = copy
        #: Namespace tables of the frame's ancestors (outermost first).
        #: Required to decode a frame extracted from mid-document whose
        #: QName references reach outer scopes — BXSA frames are skippable
        #: in isolation but only *decodable* with their scope chain, a
        #: direct consequence of §4.1's tokenization.
        self.outer_tables = list(outer_tables or [])
        self._string_cache = string_cache
        self._qname_cache = qname_cache

    def at_end(self) -> bool:
        return self.pos >= len(self.data)

    # ------------------------------------------------------------------

    def read_node(self) -> Node:
        """Decode the frame at the current position into a bXDM tree."""
        scopes = ScopeStack()
        for table in self.outer_tables:
            scopes.push(list(table))
        stack: list[_Container] = []
        while True:
            node, container = self._read_frame(scopes)
            if container is not None:
                if container.remaining == 0:
                    node = self._finalize(container, scopes)
                else:
                    stack.append(container)
                    continue
            # attach completed node upward, closing containers as they fill
            while True:
                if not stack:
                    return node
                top = stack[-1]
                top.node.children.append(node)
                top.remaining -= 1
                if top.remaining:
                    break
                stack.pop()
                node = self._finalize(top, scopes)

    def _finalize(self, container: _Container, scopes: ScopeStack) -> Node:
        if self.pos != container.end:
            raise BXSADecodeError(
                f"frame size mismatch: content ends at {self.pos}, "
                f"Size field says {container.end}"
            )
        if container.is_element:
            scopes.pop()
        return container.node

    # ------------------------------------------------------------------

    def _read_frame(self, scopes: ScopeStack):
        data = self.data
        byte_order, frame_type, pos, end = read_frame_prefix(data, self.pos)

        if frame_type is FrameType.DOCUMENT:
            count, pos = read_vls(data, pos)
            self.pos = pos
            return None, _Container(DocumentNode(), count, end, is_element=False)

        if frame_type is FrameType.COMPONENT_ELEMENT:
            name, attrs, table, pos = self._read_header(pos, byte_order, scopes)
            count, pos = read_vls(data, pos)
            node = ElementNode(name, attributes=attrs, namespaces=to_nodes(table))
            self.pos = pos
            container = _Container(node, count, end, is_element=True)
            if count == 0:
                # scope was pushed by _read_header; _finalize pops it
                return None, container
            return None, container

        if frame_type is FrameType.LEAF_ELEMENT:
            name, attrs, table, pos = self._read_header(pos, byte_order, scopes)
            scopes.pop()
            code, pos = read_type_code(data, pos)
            value, pos = read_scalar_value(data, pos, code, byte_order)
            atype = self._atype(code)
            self.pos = pos
            self._check_end(end)
            try:
                node = LeafElement(name, value, atype, attributes=attrs, namespaces=to_nodes(table))
            except XDMTypeError as exc:
                raise BXSADecodeError(str(exc)) from exc
            return node, None

        if frame_type is FrameType.ARRAY_ELEMENT:
            name, attrs, table, pos = self._read_header(pos, byte_order, scopes)
            scopes.pop()
            code, pos = read_type_code(data, pos)
            if code is TypeCode.STRING:
                raise BXSADecodeError("array frames cannot hold strings")
            item_name, pos = read_string(data, pos)
            count, pos = read_vls(data, pos)
            # validate the pad byte against this frame's end, not the whole
            # buffer: a truncated Size must not read the next frame's bytes
            if pos >= end:
                raise BXSADecodeError(f"truncated array frame at offset {pos}")
            pad = data[pos]
            pos += 1 + pad
            nbytes = count * code.size
            if pos + nbytes > end:
                raise BXSADecodeError(
                    f"array payload of {nbytes} bytes overruns frame end {end}"
                )
            dtype = wire_dtype(byte_order, code)
            values = np.frombuffer(data[pos : pos + nbytes], dtype=dtype, count=count)
            if self.copy:
                values = values.astype(dtype.newbyteorder("="), copy=True)
            atype = self._atype(code)
            self.pos = pos + nbytes
            self._check_end(end)
            node = ArrayElement.__new__(ArrayElement)
            ElementNode.__init__(node, name, attributes=attrs, namespaces=to_nodes(table))
            # Bypass the constructor's ascontiguousarray to keep zero-copy
            # views (possibly non-native byte order) intact.
            node.atype = atype
            node.values = values
            node.item_name = item_name or None
            return node, None

        if frame_type in (FrameType.CHARACTER_DATA, FrameType.COMMENT):
            text, pos = read_string(data, pos)
            self.pos = pos
            self._check_end(end)
            return (TextNode(text) if frame_type is FrameType.CHARACTER_DATA else CommentNode(text)), None

        if frame_type is FrameType.PI:
            target, pos = read_string(data, pos)
            pi_data, pos = read_string(data, pos)
            self.pos = pos
            self._check_end(end)
            return PINode(target, pi_data), None

        if frame_type in STREAM_FRAME_TYPES:
            raise BXSADecodeError(
                f"streamed-profile frame {frame_type.name} in the tree decoder; "
                "feed this byte stream to repro.bxsa.stream.StreamDecoder"
            )
        raise BXSADecodeError(f"unhandled frame type {frame_type!r}")  # pragma: no cover

    def _check_end(self, end: int) -> None:
        if self.pos != end:
            raise BXSADecodeError(
                f"frame size mismatch: content ends at {self.pos}, Size field says {end}"
            )

    def _atype(self, code: TypeCode):
        try:
            return atomic_type_for_code(code)
        except XDMTypeError as exc:
            raise BXSADecodeError(str(exc)) from exc

    # ------------------------------------------------------------------

    def _read_header(self, pos: int, byte_order: int, scopes: ScopeStack):
        """Read an element header; pushes the frame's table onto ``scopes``.

        The caller pops the scope when the element's frame is complete
        (immediately for leaf/array, after children for component).
        """
        data = self.data
        n1, pos = read_vls(data, pos)
        table: list[tuple[str, str]] = []
        for _ in range(n1):
            prefix, pos = self._read_name_string(pos)
            uri, pos = self._read_name_string(pos)
            table.append((prefix, uri))
        scopes.push(table)
        depth, index, pos = read_name_ref(data, pos)
        local, pos = self._read_name_string(pos)
        name = self._make_qname(local, depth, index, scopes)
        n2, pos = read_vls(data, pos)
        attrs: list[AttributeNode] = []
        for _ in range(n2):
            a_depth, a_index, pos = read_name_ref(data, pos)
            a_local, pos = self._read_name_string(pos)
            code, pos = read_type_code(data, pos)
            value, pos = read_scalar_value(data, pos, code, byte_order)
            qname = self._make_qname(a_local, a_depth, a_index, scopes)
            try:
                attrs.append(AttributeNode(qname, value, self._atype(code)))
            except XDMTypeError as exc:
                raise BXSADecodeError(str(exc)) from exc
        return name, attrs, table, pos

    def _read_name_string(self, pos: int) -> tuple[str, int]:
        """Read a name-position string, interning through the session cache."""
        cache = self._string_cache
        if cache is None:
            return read_string(self.data, pos)
        data = self.data
        length, pos = read_vls(data, pos)
        end = pos + length
        if end > len(data):
            raise BXSADecodeError(f"truncated string at offset {pos}")
        raw = bytes(data[pos:end])
        cached = cache.get(raw)
        if cached is not None:
            return cached, end
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise BXSADecodeError(f"invalid UTF-8 at offset {pos}: {exc}") from exc
        cache[raw] = text
        return text, end

    def _make_qname(self, local: str, depth: int, index: int, scopes: ScopeStack) -> QName:
        if depth == 0:
            uri = prefix = ""
        else:
            prefix, uri = scopes.resolve(depth, index)
        cache = self._qname_cache
        if cache is None:
            return QName(local, uri, prefix)
        key = (local, uri, prefix)
        name = cache.get(key)
        if name is None:
            name = QName(local, uri, prefix)
            cache[key] = name
        return name
