"""bXDM → BXSA encoder.

Structured as a post-order assembly over the tree (children's frames are
byte-complete before the parent's ``Size`` field is written — the Size of a
container covers its embedded child frames).  The traversal uses an explicit
stack, so arbitrarily deep documents encode without recursion limits.

Numeric payloads never pass through Python-level per-element loops: a leaf
is one ``struct.pack`` and an array is one bulk ``ndarray.tobytes`` (with a
bulk byteswap when the target byte order differs from the host) — this is
the encoding-efficiency half of the paper's thesis.
"""

from __future__ import annotations

import numpy as np

from repro.bxsa.constants import FrameType, pack_prefix_byte
from repro.bxsa.errors import BXSAEncodeError
from repro.bxsa.namespaces import ScopeStack, declarations_of
from repro.xbs.constants import _ENDIAN_CHAR, NATIVE_ENDIAN, TypeCode, dtype_for
from repro.xbs.structcache import struct_for
from repro.xbs.varint import encode_vls
from repro.xdm.nodes import (
    ArrayElement,
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    Node,
    PINode,
    TextNode,
)
from repro.xdm.qname import QName


def encode(node: Node, byte_order: int = NATIVE_ENDIAN) -> bytes:
    """Encode a bXDM node (document or element) as a BXSA byte string."""
    return BXSAEncoder(byte_order).encode(node)


def encode_document(node: DocumentNode, byte_order: int = NATIVE_ENDIAN) -> bytes:
    """Encode a document; provided for symmetry with :func:`decode_document`."""
    if not isinstance(node, DocumentNode):
        raise BXSAEncodeError(f"expected DocumentNode, got {type(node).__name__}")
    return BXSAEncoder(byte_order).encode(node)


_ENTER, _EXIT = 0, 1


class BXSAEncoder:
    """Encoder instance; reusable, one document per :meth:`encode` call."""

    def __init__(self, byte_order: int = NATIVE_ENDIAN) -> None:
        if byte_order not in (0, 1):
            raise BXSAEncodeError(f"invalid byte order {byte_order!r}")
        self.byte_order = byte_order
        self._endian_char = _ENDIAN_CHAR[byte_order]
        self._chunks: list | None = None
        self._nbytes = 0

    # ------------------------------------------------------------------

    def encode(self, node: Node) -> bytes:
        """Encode ``node`` in O(document size).

        Frames are emitted into one flat chunk list in document order.  A
        container frame's prefix/Size/header cannot be written until its
        children's total size is known, so each container reserves a
        placeholder slot on entry and back-patches it on exit using a
        running byte counter — no per-level flattening, no repeated list
        copying, and array payloads stay zero-copy views until the single
        final join.
        """
        scopes = ScopeStack()
        chunks: list = []
        self._chunks = chunks
        self._nbytes = 0  # total bytes across filled chunks

        # (node, placeholder index, byte counter at entry)
        open_containers: list[tuple[Node, int, int]] = []
        stack: list[tuple[int, Node]] = [(_ENTER, node)]
        while stack:
            action, current = stack.pop()
            if action == _EXIT:
                owner, placeholder, mark = open_containers.pop()
                children_len = self._nbytes - mark
                count_vls = encode_vls(len(owner.children))
                if isinstance(owner, DocumentNode):
                    frame_type = FrameType.DOCUMENT
                    header = b""
                else:
                    frame_type = FrameType.COMPONENT_ELEMENT
                    header = self._element_header(owner, scopes)  # type: ignore[arg-type]
                    scopes.pop()
                body_len = len(header) + len(count_vls) + children_len
                prefix = bytes((pack_prefix_byte(self.byte_order, frame_type),))
                patch = prefix + encode_vls(body_len) + header + count_vls
                chunks[placeholder] = patch
                self._nbytes += len(patch)
                continue
            if isinstance(current, LeafElement):
                self._leaf_frame(current, scopes)
            elif isinstance(current, ArrayElement):
                self._array_frame(current, scopes)
            elif isinstance(current, (DocumentNode, ElementNode)):
                if isinstance(current, ElementNode):
                    scopes.push(self._own_table(current))
                open_containers.append((current, len(chunks), self._nbytes))
                chunks.append(b"")  # placeholder, patched at EXIT
                stack.append((_EXIT, current))
                for child in reversed(current.children):
                    stack.append((_ENTER, child))
            elif isinstance(current, TextNode):
                self._string_frame(FrameType.CHARACTER_DATA, current.text)
            elif isinstance(current, CommentNode):
                self._string_frame(FrameType.COMMENT, current.text)
            elif isinstance(current, PINode):
                self._emit_frame(
                    FrameType.PI,
                    [self._string(current.target) + self._string(current.data)],
                )
            else:
                raise BXSAEncodeError(f"cannot encode node {type(current).__name__}")
        out = b"".join(chunks)
        self._chunks = None  # release references to payload views
        return out

    # ------------------------------------------------------------------
    # frame assembly

    def _emit(self, chunk) -> None:
        self._chunks.append(chunk)
        self._nbytes += len(chunk)

    def _emit_frame(self, frame_type: FrameType, body_chunks: list) -> None:
        """Emit prefix + Size followed by the body chunks (no copying)."""
        size = sum(len(chunk) for chunk in body_chunks)
        prefix = bytes((pack_prefix_byte(self.byte_order, frame_type),))
        self._emit(prefix + encode_vls(size))
        for chunk in body_chunks:
            self._emit(chunk)

    def _string(self, text: str) -> bytes:
        raw = text.encode("utf-8")
        return encode_vls(len(raw)) + raw

    def _string_frame(self, frame_type: FrameType, text: str) -> None:
        self._emit_frame(frame_type, [self._string(text)])

    # ------------------------------------------------------------------
    # element header

    def _own_table(self, node: ElementNode) -> list[tuple[str, str]]:
        """The element's explicit declarations, validated, as a mutable table."""
        table = declarations_of(node)
        seen: set[str] = set()
        for prefix, _uri in table:
            if prefix in seen:
                raise BXSAEncodeError(
                    f"element {node.name.clark()} declares prefix {prefix!r} twice"
                )
            seen.add(prefix)
        return table

    def _name_ref(self, name: QName, scopes: ScopeStack) -> tuple[int, int]:
        """(scope depth, index) for a QName, auto-declaring when needed.

        Depth 0 means "no namespace"; the index is then meaningless.
        """
        if not name.uri:
            return 0, -1
        found = scopes.find(name.uri)
        if found is not None:
            return found
        # Auto-declare in the innermost table (mirrors the XML serializer).
        prefix = self._pick_prefix(name.prefix, scopes)
        return 1, scopes.declare(prefix, name.uri)

    def _pick_prefix(self, hint: str, scopes: ScopeStack) -> str:
        """Choose a free prefix as a pure function of (hint, taken set).

        No document-global counter: the streaming writer serializes headers
        pre-order while the tree encoder back-patches them post-order, and a
        counter threaded through both orders would hand out different names.
        Determinism in the local scope state keeps the two byte-identical.
        """
        taken = scopes.all_prefixes()
        if hint and hint not in taken:
            return hint
        base = hint or "ns"
        n = 2 if hint else 1
        while f"{base}{n}" in taken:
            n += 1
        return f"{base}{n}"

    def _element_header(self, node: ElementNode, scopes: ScopeStack) -> bytes:
        """Serialize the header *after* children were encoded.

        The element's table (top of ``scopes``) may have been extended with
        auto-declarations by :meth:`_name_ref` calls for the element's own
        name and attributes — but NOT by children (children auto-declare in
        their own frames), so resolving name/attrs here, before writing N1,
        is safe and keeps the table complete.
        """
        parts: list[bytes] = []
        name_depth, name_index = self._name_ref(node.name, scopes)
        attr_refs: list[tuple[int, int, AttributeNode]] = []
        seen_attrs: set = set()
        for attr in node.attributes:
            if attr.name in seen_attrs:
                raise BXSAEncodeError(
                    f"element {node.name.clark()} has duplicate attribute "
                    f"{attr.name.clark()}"
                )
            seen_attrs.add(attr.name)
            depth, index = self._name_ref(attr.name, scopes)
            attr_refs.append((depth, index, attr))

        table = scopes.current()
        parts.append(encode_vls(len(table)))
        for prefix, uri in table:
            parts.append(self._string(prefix))
            parts.append(self._string(uri))
        parts.append(self._ref_bytes(name_depth, name_index))
        parts.append(self._string(node.name.local))
        parts.append(encode_vls(len(attr_refs)))
        for depth, index, attr in attr_refs:
            parts.append(self._ref_bytes(depth, index))
            parts.append(self._string(attr.name.local))
            parts.append(self._typed_value(attr.atype.code, attr.value))
        return b"".join(parts)

    def _ref_bytes(self, depth: int, index: int) -> bytes:
        if depth == 0:
            return encode_vls(0)
        return encode_vls(depth) + encode_vls(index)

    # ------------------------------------------------------------------
    # typed payloads

    def _typed_value(self, code: TypeCode, value) -> bytes:
        out = bytes((int(code),))
        if code is TypeCode.STRING:
            return out + self._string(value)
        if code is TypeCode.BOOL:
            return out + (b"\x01" if value else b"\x00")
        return out + struct_for(self.byte_order, code).pack(value)

    def _leaf_frame(self, node: LeafElement, scopes: ScopeStack) -> None:
        scopes.push(self._own_table(node))
        try:
            header = self._element_header(node, scopes)
        finally:
            scopes.pop()
        self._emit_frame(
            FrameType.LEAF_ELEMENT,
            [header + self._typed_value(node.atype.code, node.value)],
        )

    def _array_frame(self, node: ArrayElement, scopes: ScopeStack) -> None:
        scopes.push(self._own_table(node))
        try:
            header = self._element_header(node, scopes)
        finally:
            scopes.pop()
        code = node.atype.code
        meta = bytes((int(code),)) + self._string(node.item_name or "")
        count = encode_vls(int(node.values.size))
        item_size = code.size
        # Align the payload to the item size relative to the body start so a
        # consumer mapping the body can take an aligned view (the paper's
        # memory-mapped I/O property); the pad length travels explicitly.
        prefix_len = len(header) + len(meta) + len(count) + 1  # +1 = pad-length byte
        pad = (-prefix_len) % item_size
        target = dtype_for(code, self.byte_order)
        # zero-copy when the values already have the target byte order;
        # otherwise ascontiguousarray performs the one unavoidable byteswap
        normalized = np.ascontiguousarray(node.values, dtype=target)
        payload = memoryview(normalized).cast("B") if normalized.size else b""
        head = header + meta + count + bytes((pad,)) + b"\x00" * pad
        self._emit_frame(FrameType.ARRAY_ELEMENT, [head, payload])
