"""Exception hierarchy for the BXSA codec."""

from repro.xbs.errors import XBSError


class BXSAError(XBSError):
    """Base class for BXSA codec errors."""


class BXSAEncodeError(BXSAError):
    """Raised when a bXDM tree cannot be represented as BXSA frames."""


class BXSADecodeError(BXSAError):
    """Raised when a byte stream is not a valid BXSA document.

    Covers truncated frames, unknown frame types, size-field mismatches and
    dangling namespace references.
    """
