"""Low-level BXSA frame primitives shared by the decoder and the scanner.

These functions read the wire structures documented in
:mod:`repro.bxsa.constants` from a buffer + offset, returning
``(value, new_offset)`` pairs.  They are deliberately free of any tree
construction so the :class:`~repro.bxsa.scanner.FrameScanner` can *skip*
structures at the same speed the decoder *parses* them.
"""

from __future__ import annotations

from repro.bxsa.constants import FrameType, unpack_prefix_byte
from repro.bxsa.errors import BXSADecodeError
from repro.xbs.constants import TypeCode
from repro.xbs.errors import XBSDecodeError
from repro.xbs.structcache import struct_for
from repro.xbs.varint import decode_vls


def read_vls(data, pos: int) -> tuple[int, int]:
    try:
        return decode_vls(data, pos)
    except XBSDecodeError as exc:
        raise BXSADecodeError(str(exc)) from exc


def read_frame_prefix(data, pos: int) -> tuple[int, FrameType, int, int]:
    """Read the Common Frame Prefix.

    Returns ``(byte_order, frame_type, body_start, frame_end)``.
    """
    if pos >= len(data):
        raise BXSADecodeError(f"truncated frame prefix at offset {pos}")
    byte_order, frame_type = unpack_prefix_byte(data[pos])
    size, body_start = read_vls(data, pos + 1)
    frame_end = body_start + size
    if frame_end > len(data):
        raise BXSADecodeError(
            f"frame at offset {pos} claims {size} body bytes but only "
            f"{len(data) - body_start} remain"
        )
    return byte_order, frame_type, body_start, frame_end


def read_string(data, pos: int) -> tuple[str, int]:
    length, pos = read_vls(data, pos)
    end = pos + length
    if end > len(data):
        raise BXSADecodeError(f"truncated string at offset {pos}")
    try:
        return str(data[pos:end], "utf-8"), end
    except UnicodeDecodeError as exc:
        raise BXSADecodeError(f"invalid UTF-8 at offset {pos}: {exc}") from exc


def skip_string(data, pos: int) -> int:
    length, pos = read_vls(data, pos)
    end = pos + length
    if end > len(data):
        raise BXSADecodeError(f"truncated string at offset {pos}")
    return end


def read_type_code(data, pos: int) -> tuple[TypeCode, int]:
    if pos >= len(data):
        raise BXSADecodeError(f"truncated type code at offset {pos}")
    try:
        return TypeCode(data[pos]), pos + 1
    except ValueError:
        raise BXSADecodeError(f"unknown type code 0x{data[pos]:02x} at offset {pos}") from None


def read_scalar_value(data, pos: int, code: TypeCode, byte_order: int):
    """Read one typed value (attribute or leaf payload).

    Returns ``(python_value, new_offset)``.
    """
    if code is TypeCode.STRING:
        return read_string(data, pos)
    size = code.size
    if pos + size > len(data):
        raise BXSADecodeError(f"truncated {code.name} value at offset {pos}")
    (value,) = struct_for(byte_order, code).unpack_from(data, pos)
    if code is TypeCode.BOOL:
        value = bool(value)
    return value, pos + size


def skip_scalar_value(data, pos: int, code: TypeCode) -> int:
    if code is TypeCode.STRING:
        return skip_string(data, pos)
    end = pos + code.size
    if end > len(data):
        raise BXSADecodeError(f"truncated {code.name} value at offset {pos}")
    return end


def read_name_ref(data, pos: int) -> tuple[int, int, int]:
    """Read a (scope depth, index) QName reference.

    Returns ``(depth, index, new_offset)`` with ``index == -1`` when the
    name is in no namespace (depth 0).
    """
    depth, pos = read_vls(data, pos)
    if depth == 0:
        return 0, -1, pos
    index, pos = read_vls(data, pos)
    return depth, index, pos


def skip_name_ref(data, pos: int) -> int:
    depth, pos = read_vls(data, pos)
    if depth:
        _, pos = read_vls(data, pos)
    return pos


def skip_header_names(data, pos: int) -> int:
    """Skip the name part of an element header: the namespace declaration
    table, the QName reference and the local name — stopping just before
    the attribute count.

    This span contains no attribute or leaf *values*: for a fixed document
    shape its bytes are identical from message to message, which is what
    lets :mod:`repro.bxsa.decodeplan` use it as a cheap structural
    fingerprint of the byte stream.
    """
    n1, pos = read_vls(data, pos)
    for _ in range(n1):
        pos = skip_string(data, pos)  # prefix
        pos = skip_string(data, pos)  # uri
    pos = skip_name_ref(data, pos)
    return skip_string(data, pos)  # local name


def skip_element_header(data, pos: int) -> int:
    """Skip a full element header (namespace table, name, attributes)."""
    pos = skip_header_names(data, pos)
    n2, pos = read_vls(data, pos)
    for _ in range(n2):
        pos = skip_name_ref(data, pos)
        pos = skip_string(data, pos)  # attribute local name
        code, pos = read_type_code(data, pos)
        pos = skip_scalar_value(data, pos, code)
    return pos
