"""Namespace scope tracking for BXSA's tokenized QName references.

Both the encoder and the decoder walk the element tree maintaining a stack
of per-frame namespace tables.  A QName on the wire is a ``(scope depth,
table index)`` pair — depth 1 is the innermost (current) frame — so lookups
here are what replace the prefix strings of textual XML.

The stack keeps a reverse index (URI → chronological binding positions) so
:meth:`ScopeStack.find` is O(1) regardless of nesting depth — a deep chain
of qualified elements would otherwise pay O(depth) per element, O(n²) per
document.
"""

from __future__ import annotations

from repro.bxsa.errors import BXSADecodeError
from repro.xdm.nodes import NamespaceNode


class ScopeStack:
    """Stack of namespace tables, innermost last.

    Each table is a list of ``(prefix, uri)`` pairs in declaration order —
    order matters because wire references are positional indexes.  Tables
    must only be extended through :meth:`declare` (never mutated directly)
    so the reverse index stays consistent.
    """

    def __init__(self) -> None:
        self._tables: list[list[tuple[str, str]]] = []
        # uri -> chronological [(table position, entry index)]; the tail is
        # always the innermost, latest binding (XML shadowing semantics)
        self._index: dict[str, list[tuple[int, int]]] = {}

    def push(self, declarations: list[tuple[str, str]]) -> None:
        position = len(self._tables)
        self._tables.append(declarations)
        for entry, (_prefix, uri) in enumerate(declarations):
            self._index.setdefault(uri, []).append((position, entry))

    def pop(self) -> None:
        table = self._tables.pop()
        # this table's bindings are at the tails of their per-URI lists
        # (chronological order, and anything deeper was popped already)
        for _prefix, uri in reversed(table):
            self._index[uri].pop()

    def declare(self, prefix: str, uri: str) -> int:
        """Append a binding to the innermost table; returns its index."""
        table = self._tables[-1]
        table.append((prefix, uri))
        entry = len(table) - 1
        self._index.setdefault(uri, []).append((len(self._tables) - 1, entry))
        return entry

    @property
    def depth(self) -> int:
        return len(self._tables)

    def current(self) -> list[tuple[str, str]]:
        """The innermost table (read-only by convention; see :meth:`declare`)."""
        return self._tables[-1]

    def all_prefixes(self) -> set[str]:
        """Every prefix bound anywhere in the current scope chain."""
        return {prefix for table in self._tables for prefix, _uri in table}

    def resolve(self, scope_depth: int, index: int) -> tuple[str, str]:
        """Wire reference → (prefix, uri).  Depth 1 = innermost table."""
        if not 1 <= scope_depth <= len(self._tables):
            raise BXSADecodeError(
                f"namespace scope depth {scope_depth} exceeds nesting {len(self._tables)}"
            )
        table = self._tables[-scope_depth]
        if not 0 <= index < len(table):
            raise BXSADecodeError(
                f"namespace index {index} out of range for table of {len(table)}"
            )
        return table[index]

    def find(self, uri: str) -> tuple[int, int] | None:
        """(scope depth, index) of the innermost binding of ``uri``, or None.

        The nearest declaration wins, and later duplicates within one table
        win over earlier ones, mirroring XML prefix shadowing.
        """
        positions = self._index.get(uri)
        if not positions:
            return None
        table_position, entry = positions[-1]
        return len(self._tables) - table_position, entry


def declarations_of(node) -> list[tuple[str, str]]:
    """Extract a node's namespace declarations as an ordered table."""
    return [(ns.prefix, ns.uri) for ns in node.namespaces]


def to_nodes(table: list[tuple[str, str]]) -> list[NamespaceNode]:
    return [NamespaceNode(prefix, uri) for prefix, uri in table]
