"""Accelerated sequential access over BXSA documents.

§4.1 of the paper: the ``Size`` field "enables the accelerated sequential
access ability, by which we can sequentially scan frames without fully
parsing all parts of the document".  :class:`FrameScanner` is that ability:
it walks frame boundaries (and, for container frames, their children) using
only prefixes, sizes and header skips — no tree is built, no array payload
is touched — and can hand any frame to the decoder on demand.

Typical use: pull the 3rd child of a SOAP Body out of a 64 MB message
without decoding its 64 MB sibling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.bxsa.constants import FrameType
from repro.bxsa.errors import BXSADecodeError
from repro.bxsa.frames import (
    read_frame_prefix,
    read_string,
    read_vls,
    skip_element_header,
    skip_name_ref,
)


@dataclass(frozen=True, slots=True)
class FrameInfo:
    """Location and shape of one frame, discovered without decoding it."""

    frame_type: FrameType
    byte_order: int
    start: int  #: offset of the prefix byte
    body_start: int  #: offset just past the Size field
    end: int  #: offset just past the frame

    @property
    def size(self) -> int:
        """Declared body size in bytes."""
        return self.end - self.body_start

    @property
    def total_size(self) -> int:
        """Full frame size including prefix and Size field."""
        return self.end - self.start

    @property
    def is_container(self) -> bool:
        return self.frame_type in (FrameType.DOCUMENT, FrameType.COMPONENT_ELEMENT)


class FrameScanner:
    """Random/sequential access over the frames of one BXSA buffer."""

    def __init__(self, data) -> None:
        self.data = memoryview(data) if not isinstance(data, memoryview) else data

    # ------------------------------------------------------------------

    def frame_at(self, offset: int = 0) -> FrameInfo:
        """Inspect the frame starting at ``offset`` (prefix + size only)."""
        byte_order, frame_type, body_start, end = read_frame_prefix(self.data, offset)
        return FrameInfo(frame_type, byte_order, offset, body_start, end)

    def children(self, offset: int = 0) -> Iterator[FrameInfo]:
        """Iterate the direct child frames of a container frame.

        Each child costs O(header) — array payloads and nested subtrees are
        skipped via their Size fields.
        """
        info = self.frame_at(offset)
        if not info.is_container:
            raise BXSADecodeError(
                f"frame type {info.frame_type.name} has no child frames"
            )
        pos = info.body_start
        if info.frame_type is FrameType.COMPONENT_ELEMENT:
            pos = skip_element_header(self.data, pos)
        count, pos = read_vls(self.data, pos)
        for _ in range(count):
            if pos >= info.end:
                raise BXSADecodeError(
                    f"container at {offset} declares more children than fit its size"
                )
            child = self.frame_at(pos)
            yield child
            pos = child.end
        if pos != info.end:
            raise BXSADecodeError(
                f"container at {offset}: children end at {pos}, Size says {info.end}"
            )

    def child(self, offset: int, index: int) -> FrameInfo:
        """The ``index``-th child frame, skipping (not decoding) the others."""
        for i, info in enumerate(self.children(offset)):
            if i == index:
                return info
        raise IndexError(f"container at {offset} has no child {index}")

    def child_count(self, offset: int = 0) -> int:
        """Number of direct children of a container, header-skip only."""
        info = self.frame_at(offset)
        if not info.is_container:
            raise BXSADecodeError(f"frame type {info.frame_type.name} has no children")
        pos = info.body_start
        if info.frame_type is FrameType.COMPONENT_ELEMENT:
            pos = skip_element_header(self.data, pos)
        count, _ = read_vls(self.data, pos)
        return count

    # ------------------------------------------------------------------

    def element_name(self, offset: int) -> str:
        """Local name of an element frame, without decoding attributes."""
        info = self.frame_at(offset)
        if info.frame_type not in (
            FrameType.COMPONENT_ELEMENT,
            FrameType.LEAF_ELEMENT,
            FrameType.ARRAY_ELEMENT,
        ):
            raise BXSADecodeError(f"frame type {info.frame_type.name} has no name")
        pos = info.body_start
        n1, pos = read_vls(self.data, pos)
        for _ in range(n1):
            from repro.bxsa.frames import skip_string

            pos = skip_string(self.data, pos)
            pos = skip_string(self.data, pos)
        pos = skip_name_ref(self.data, pos)
        local, _ = read_string(self.data, pos)
        return local

    def find_child_named(self, offset: int, local_name: str) -> FrameInfo | None:
        """First child element frame with the given local name."""
        for info in self.children(offset):
            if info.frame_type in (
                FrameType.COMPONENT_ELEMENT,
                FrameType.LEAF_ELEMENT,
                FrameType.ARRAY_ELEMENT,
            ) and self.element_name(info.start) == local_name:
                return info
        return None

    def iter_frames(self, offset: int = 0) -> Iterator[FrameInfo]:
        """Depth-first iteration over every frame in the subtree."""
        root = self.frame_at(offset)
        stack = [root]
        while stack:
            info = stack.pop()
            yield info
            if info.is_container:
                stack.extend(reversed(list(self.children(info.start))))

    def namespace_table(self, offset: int) -> list[tuple[str, str]]:
        """The namespace declarations of an element frame (empty for
        document/text/comment/PI frames)."""
        info = self.frame_at(offset)
        if info.frame_type not in (
            FrameType.COMPONENT_ELEMENT,
            FrameType.LEAF_ELEMENT,
            FrameType.ARRAY_ELEMENT,
        ):
            return []
        pos = info.body_start
        n1, pos = read_vls(self.data, pos)
        table: list[tuple[str, str]] = []
        for _ in range(n1):
            prefix, pos = read_string(self.data, pos)
            uri, pos = read_string(self.data, pos)
            table.append((prefix, uri))
        return table

    def walk_with_ancestors(
        self, offset: int = 0
    ) -> Iterator[tuple[FrameInfo, tuple[int, ...]]]:
        """Depth-first walk yielding ``(frame, ancestor_offsets)``.

        ``ancestor_offsets`` lists the enclosing *element* frames, outermost
        first — exactly what :meth:`decode_frame` needs to resolve QName
        references that reach outer namespace scopes.
        """
        root = self.frame_at(offset)
        stack: list[tuple[FrameInfo, tuple[int, ...]]] = [(root, ())]
        while stack:
            info, ancestry = stack.pop()
            yield info, ancestry
            if info.is_container:
                child_ancestry = ancestry
                if info.frame_type is FrameType.COMPONENT_ELEMENT:
                    child_ancestry = ancestry + (info.start,)
                stack.extend(
                    (child, child_ancestry)
                    for child in reversed(list(self.children(info.start)))
                )

    def decode_frame(self, offset: int, *, copy: bool = False, ancestors: tuple[int, ...] = ()):
        """Fully decode the frame at ``offset`` into a bXDM node.

        ``ancestors`` are the offsets of the enclosing element frames
        (outermost first), needed when the frame's QNames reference outer
        namespace scopes — :meth:`walk_with_ancestors` supplies them.
        """
        from repro.bxsa.decoder import BXSADecoder

        outer = [self.namespace_table(a) for a in ancestors]
        return BXSADecoder(self.data, offset, copy=copy, outer_tables=outer).read_node()
