"""Cross-message codec sessions: compiled encode plans and name caches.

The stateless :class:`~repro.bxsa.encoder.BXSAEncoder` re-walks the whole
dispatch machinery for every message: per-node ``isinstance`` chains, scope
pushes and pops, namespace lookups, UTF-8 encoding of the same element names,
and VLS encoding of the same header fields.  In the repeated-message regime
the paper's Figures 4-6 measure — thousands of envelopes with the same
structure and different payloads — all of that work is identical from one
message to the next.

A :class:`CodecSession` eliminates it.  On the first encounter of a document
*shape* (the tree structure with values stripped: node kinds, names,
namespace tables, attribute names and type codes, child counts) the session
compiles a flat **encode plan**: a list of instructions in which everything
value-independent is pre-rendered to constant byte strings and only the
value-dependent holes (leaf payloads, attribute values, text runs, array
bodies, frame sizes that depend on variable-length content) remain live.
Re-encoding a structurally identical message replays the instruction list —
no tree dispatch, no scope stack, no name encoding.

**Wire compatibility is absolute.**  A plan never changes what lands on the
wire: each message still carries its complete namespace tables (there is no
cross-message delta state on the wire), so warm output is byte-identical to
the stateless encoder's and decodes with a stateless decoder.  The session
enforces this itself: every freshly compiled plan is replayed once against
the stateless encoder's output for the same tree, and a shape whose replay
diverges is poisoned — it falls back to the stateless path forever.  The
cache is therefore an execution strategy, not a format change, which is why
warm sessions do not alter any Figure 4-6 measured semantics (the harness
still opts out to keep its *cold-start* CPU segments honest; see
``repro.harness.runners``).

Decode-side, the session mirrors the same idea with compiled **decode
plans** (:mod:`repro.bxsa.decodeplan`): the first decode of a shape runs
stateless and records the frame sequence — header layout, pre-resolved
QNames, scalar/array value slots — keyed by a cheap structural fingerprint
of the byte stream.  Subsequent same-shape messages replay that plan:
no frame dispatch, no scope stack, no header-string decoding, array
payloads pulled out as the same zero-copy views the stateless decoder
produces.  Replay memcmps every structural byte and re-validates every
``Size`` field, the first reuse of each plan is structure-checked against
a full stateless decode, and divergent shapes are poisoned to the slow
path — correctness is unconditional, exactly as on the encode side.  The
session also interns repeated header strings (prefixes, URIs, local names)
and :class:`~repro.xdm.qname.QName` objects across messages, so a stream
of same-shape envelopes allocates each name once.
"""

from __future__ import annotations

from itertools import islice

import numpy as np

from repro.bxsa.constants import FrameType, pack_prefix_byte
from repro.bxsa.decodeplan import (
    DecodePlan,
    compile_decode_plan,
    decode_fingerprint,
    replay_decode_plan,
)
from repro.bxsa.decoder import BXSADecoder
from repro.bxsa.encoder import BXSAEncoder
from repro.bxsa.errors import BXSADecodeError, BXSAEncodeError
from repro.bxsa.namespaces import ScopeStack
from repro.xbs.constants import NATIVE_ENDIAN, TypeCode, dtype_for
from repro.xbs.structcache import struct_for
from repro.xbs.varint import encode_vls
from repro.xdm.compare import explain_difference
from repro.xdm.nodes import (
    ArrayElement,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    Node,
    PINode,
    TextNode,
)

# Plan instruction tags.  Each op is a tuple whose first element is one of
# these; the replay loop dispatches on it with a flat if/elif chain.
_OP_CONST = 0  # (tag, bytes)                           pre-rendered bytes
_OP_ENTER = 1  # (tag,)                                 open container frame
_OP_EXIT = 2  # (tag, prefix, header, count_vls, tail)  close container frame
_OP_LEAF_FIXED = 3  # (tag, head_bytes, struct, node_idx)
_OP_LEAF_BOOL = 4  # (tag, head_bytes, node_idx)
_OP_LEAF_VAR = 5  # (tag, prefix, header, code, node_idx)
_OP_TEXT = 6  # (tag, prefix, node_idx)                 CHARACTER_DATA
_OP_COMMENT = 7  # (tag, prefix, node_idx)
_OP_PI = 8  # (tag, prefix, target_bytes, node_idx)
_OP_ARRAY = 9  # (tag, prefix, header, meta, head_const, dtype, item_size, node_idx)

# pad-length byte + that many zero bytes, for every pad an item size ≤ 8
# can require (array payload alignment; see BXSAEncoder._array_frame)
_PAD_BYTES = tuple(bytes((p,)) + b"\x00" * p for p in range(8))

#: Decode plans cached per fingerprint.  Distinct shapes can share a
#: fingerprint (e.g. SOAP envelopes whose root headers match but whose
#: bodies differ); replay bails on the byte mismatch and the next plan in
#: the bucket is tried, so a small bucket absorbs benign collisions.
_MAX_BUCKET_PLANS = 4

class EncodePlan:
    """A compiled per-shape instruction list (internal to the session)."""

    __slots__ = ("ops", "node_count")

    def __init__(self, ops: list[tuple], node_count: int) -> None:
        self.ops = ops
        self.node_count = node_count


class SessionStats:
    """Counters exposed for benchmarks and tests."""

    __slots__ = (
        "plans_compiled",
        "plan_hits",
        "stateless_encodes",
        "poisoned_shapes",
        "decode_plans_compiled",
        "decode_plan_hits",
        "stateless_decodes",
        "decode_poisoned",
    )

    def __init__(self) -> None:
        self.plans_compiled = 0
        self.plan_hits = 0
        self.stateless_encodes = 0
        self.poisoned_shapes = 0
        self.decode_plans_compiled = 0
        self.decode_plan_hits = 0
        self.stateless_decodes = 0
        self.decode_poisoned = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SessionStats(compiled={self.plans_compiled}, hits={self.plan_hits}, "
            f"stateless={self.stateless_encodes}, poisoned={self.poisoned_shapes}, "
            f"dec_compiled={self.decode_plans_compiled}, "
            f"dec_hits={self.decode_plan_hits}, "
            f"dec_stateless={self.stateless_decodes}, "
            f"dec_poisoned={self.decode_poisoned})"
        )


class CodecSession:
    """Persistent BXSA codec state, reused across messages.

    Parameters
    ----------
    byte_order:
        Wire byte order for encodes (decodes honour each frame's own order).
    max_plans:
        Bound on cached encode plans and on cached decode-plan fingerprints;
        the oldest entry is evicted beyond it.
    max_cached_strings:
        Bound on each intern table (encode-side string bytes, decode-side
        names/QNames); when a table crosses the bound its oldest half (by
        insertion order) is evicted, which keeps adversarial name churn from
        growing memory without limit while the newer — still warm — half
        survives.  A long-lived worker never falls back to fully cold
        interning mid-stream.

    A session is cheap to construct but meant to be long-lived: the engine
    and clients hold one per encoding policy so that repeated exchanges hit
    warm plans.  Encoding through a session is byte-identical to
    :func:`repro.bxsa.encoder.encode` — see the module docstring.
    """

    def __init__(
        self,
        byte_order: int = NATIVE_ENDIAN,
        *,
        max_plans: int = 128,
        max_cached_strings: int = 4096,
    ) -> None:
        self.byte_order = byte_order
        self.max_plans = max_plans
        self.max_cached_strings = max_cached_strings
        self.stats = SessionStats()
        self._plans: dict[tuple, EncodePlan | None] = {}
        # decode-plan cache: structural fingerprint -> list of plans (MRU
        # first, at most _MAX_BUCKET_PLANS: distinct shapes may share a
        # fingerprint) or None for a poisoned fingerprint
        self._decode_plans: dict[tuple, list[DecodePlan] | None] = {}
        self._encoder = BXSAEncoder(byte_order)
        # encode-side intern table: str -> VLS-length-prefixed UTF-8 bytes
        self._string_bytes: dict[str, bytes] = {}
        # decode-side intern tables, shared across all decodes of the session
        self._decode_strings: dict[bytes, str] = {}
        self._decode_qnames: dict[tuple, object] = {}
        # pooled replay scratch; taken atomically (dict.pop) so two threads
        # racing on one session degrade to a fresh list, never share one
        self._scratch: list | None = []

    # ------------------------------------------------------------------
    # public API

    def encode(self, node: Node) -> bytes:
        """Encode ``node``, compiling/replaying a plan for its shape."""
        shape, nodes = _shape_and_nodes(node)
        plan = self._plans.get(shape)
        if plan is not None:
            self.stats.plan_hits += 1
            return self._replay(plan, nodes)
        if shape in self._plans:  # poisoned shape: permanent stateless path
            self.stats.stateless_encodes += 1
            return self._encoder.encode(node)
        return self._compile_and_check(shape, node, nodes)

    def decode(
        self, data, offset: int = 0, *, copy: bool = False, whole: bool | None = None
    ) -> Node:
        """Decode one frame, compiling/replaying a decode plan for its shape.

        Identical semantics (including the zero-copy aliasing contract and
        the ``whole``/trailing-byte rules) to
        :func:`repro.bxsa.decoder.decode`; repeated names across messages
        come back as the same ``str``/``QName`` objects.

        The first decode of a shape runs the stateless decoder and compiles
        a plan keyed by a structural fingerprint of the bytes; later
        same-shape messages replay it.  Replay memcmps every structural
        byte, the first reuse of each plan is structure-checked against a
        stateless decode, and a diverging fingerprint is poisoned to the
        stateless path — warm decodes are an execution strategy, never a
        semantics change.
        """
        view = data if isinstance(data, memoryview) else memoryview(data)
        if whole is None:
            whole = offset == 0
        try:
            key = decode_fingerprint(view, offset)
        except BXSADecodeError:
            key = None  # malformed frame head: the stateless path raises
        if key is not None:
            bucket = self._decode_plans.get(key)
            if bucket is None and key in self._decode_plans:
                # poisoned fingerprint: permanent stateless path
                self.stats.stateless_decodes += 1
                return self._decode_stateless(view, offset, copy, whole)
            if bucket:
                node = self._try_replay(bucket, key, view, offset, copy, whole)
                if node is not None:
                    return node
        self.stats.stateless_decodes += 1
        node = self._decode_stateless(view, offset, copy, whole)
        if key is not None and self._decode_plans.get(key, ()) is not None:
            self._compile_decode_plan(key, view, offset)
        return node

    def reset(self) -> None:
        """Drop all cached plans and intern tables (cold-start state)."""
        self._plans.clear()
        self._decode_plans.clear()
        self._string_bytes.clear()
        self._decode_strings.clear()
        self._decode_qnames.clear()
        self.stats = SessionStats()

    # ------------------------------------------------------------------
    # decode plans

    def _decode_stateless(self, view, offset: int, copy: bool, whole: bool) -> Node:
        """One full stateless decode through the session's intern tables."""
        self._evict_interned()
        decoder = BXSADecoder(
            view,
            offset,
            copy=copy,
            string_cache=self._decode_strings,
            qname_cache=self._decode_qnames,
        )
        node = decoder.read_node()
        if whole and decoder.pos != len(decoder.data):
            raise BXSADecodeError(
                f"{len(decoder.data) - decoder.pos} trailing bytes after frame"
            )
        return node

    def _try_replay(self, bucket, key, view, offset: int, copy: bool, whole: bool):
        """Replay the first plan in ``bucket`` that matches the bytes.

        Returns the decoded node, or ``None`` when every plan bailed (the
        caller decodes statelessly and compiles a plan for the new shape).
        A plan's first reuse is verified against the stateless decoder; a
        divergence poisons the fingerprint and the stateless result is
        returned instead.
        """
        for i, plan in enumerate(bucket):
            try:
                out = replay_decode_plan(plan, view, offset, copy)
            except Exception:
                out = None  # node-validity error: the slow path re-raises it
            if out is None:
                continue
            node, end = out
            if not plan.verified and not self._verify_decode_plan(
                node, end, view, offset, copy
            ):
                # a compiler blind spot must never reach the caller: poison
                # the fingerprint and serve the stateless tree
                self._decode_plans[key] = None
                self.stats.decode_poisoned += 1
                self.stats.stateless_decodes += 1
                return self._decode_stateless(view, offset, copy, whole)
            plan.verified = True
            if whole and end != len(view):
                raise BXSADecodeError(
                    f"{len(view) - end} trailing bytes after frame"
                )
            if i:
                bucket.insert(0, bucket.pop(i))  # keep the bucket MRU-first
            self.stats.decode_plan_hits += 1
            return node
        return None

    def _verify_decode_plan(self, node, end: int, view, offset: int, copy: bool) -> bool:
        """Structure-check a replay output against the stateless decoder."""
        decoder = BXSADecoder(
            view,
            offset,
            copy=copy,
            string_cache=self._decode_strings,
            qname_cache=self._decode_qnames,
        )
        try:
            reference = decoder.read_node()
        except Exception:
            return False
        if decoder.pos != end:
            return False
        return explain_difference(reference, node) is None

    def _compile_decode_plan(self, key, view, offset: int) -> None:
        """Compile a plan for the frame just decoded statelessly at
        ``offset``; a compiler crash poisons the fingerprint."""
        try:
            plan = compile_decode_plan(view, offset, qname_cache=self._decode_qnames)
        except Exception:
            self._decode_plans[key] = None
            self.stats.decode_poisoned += 1
            return
        bucket = self._decode_plans.get(key)
        if bucket is None:  # the caller guarantees the key is not poisoned
            if len(self._decode_plans) >= self.max_plans:
                self._decode_plans.pop(next(iter(self._decode_plans)))
            bucket = self._decode_plans[key] = []
        bucket.insert(0, plan)
        del bucket[_MAX_BUCKET_PLANS:]
        self.stats.decode_plans_compiled += 1

    def _evict_interned(self) -> None:
        """Bounded intern-table eviction: drop the oldest half (insertion
        order) past ``max_cached_strings`` — never a wholesale clear, so a
        warm stream keeps its recent names across the boundary."""
        bound = self.max_cached_strings
        for cache in (self._decode_strings, self._decode_qnames):
            if len(cache) > bound:
                for stale in list(islice(iter(cache), len(cache) // 2)):
                    del cache[stale]

    # ------------------------------------------------------------------
    # compilation

    def _compile_and_check(self, shape: tuple, node: Node, nodes: list) -> bytes:
        """Compile a plan for ``shape``; poison the shape if replay diverges.

        The returned bytes always come from a path proven equal to the
        stateless encoder *for this very tree*: either the verified replay
        output or the stateless output itself.
        """
        reference = self._encoder.encode(node)
        try:
            plan = self._compile(node)
            replayed = self._replay(plan, nodes)
        except Exception:
            plan = None
            replayed = None
        if replayed != reference:
            # a compiler blind spot must never reach the wire: remember the
            # shape as uncacheable and serve the stateless bytes
            self._plans[shape] = None
            self.stats.poisoned_shapes += 1
            self.stats.stateless_encodes += 1
            return reference
        if len(self._plans) >= self.max_plans:
            self._plans.pop(next(iter(self._plans)))
        self._plans[shape] = plan
        self.stats.plans_compiled += 1
        return reference

    def _compile(self, root: Node) -> EncodePlan:
        """Walk the tree once, mirroring ``BXSAEncoder.encode`` emission
        order exactly, and record instructions instead of bytes.

        Scope handling is delegated to the real encoder's helpers
        (``_own_table``/``_name_ref``/``_pick_prefix``), so namespace
        auto-declaration — including the generated ``nsN`` prefix counter —
        is bit-for-bit the behaviour of the stateless path.
        """
        enc = BXSAEncoder(self.byte_order)
        order = self.byte_order
        scopes = ScopeStack()
        ops: list[tuple] = []
        const_run: list[bytes] = []  # pending constant bytes, merged lazily

        def flush_const() -> None:
            if const_run:
                ops.append((_OP_CONST, b"".join(const_run)))
                const_run.clear()

        def prefix_for(frame_type: FrameType) -> bytes:
            return bytes((pack_prefix_byte(order, frame_type),))

        node_idx = -1
        _ENTER, _EXIT = 0, 1
        stack: list[tuple] = [(_ENTER, root, 0)]
        while stack:
            action, current, idx = stack.pop()
            if action == _EXIT:
                if isinstance(current, DocumentNode):
                    header: list | bytes = b""
                    frame_type = FrameType.DOCUMENT
                else:
                    frame_type = FrameType.COMPONENT_ELEMENT
                    header = self._header_segments(enc, current, scopes, idx)
                    scopes.pop()
                flush_const()
                count_vls = encode_vls(len(current.children))
                tail = header + count_vls if isinstance(header, bytes) else None
                ops.append(
                    (_OP_EXIT, prefix_for(frame_type), header, count_vls, tail)
                )
                continue
            node_idx += 1
            idx = node_idx
            if isinstance(current, LeafElement):
                scopes.push(enc._own_table(current))
                try:
                    header = self._header_segments(enc, current, scopes, idx)
                finally:
                    scopes.pop()
                code = current.atype.code
                if isinstance(header, bytes) and code.is_numeric:
                    # fully constant frame head: prefix + Size + header +
                    # type code, followed only by the fixed-width value
                    if code is TypeCode.BOOL:
                        head = (
                            prefix_for(FrameType.LEAF_ELEMENT)
                            + encode_vls(len(header) + 2)
                            + header
                            + bytes((int(code),))
                        )
                        flush_const()
                        ops.append((_OP_LEAF_BOOL, head, idx))
                    else:
                        head = (
                            prefix_for(FrameType.LEAF_ELEMENT)
                            + encode_vls(len(header) + 1 + code.size)
                            + header
                            + bytes((int(code),))
                        )
                        flush_const()
                        ops.append((_OP_LEAF_FIXED, head, struct_for(order, code), idx))
                else:
                    flush_const()
                    ops.append(
                        (_OP_LEAF_VAR, prefix_for(FrameType.LEAF_ELEMENT), header, code, idx)
                    )
            elif isinstance(current, ArrayElement):
                scopes.push(enc._own_table(current))
                try:
                    header = self._header_segments(enc, current, scopes, idx)
                finally:
                    scopes.pop()
                code = current.atype.code
                meta = bytes((int(code),)) + enc._string(current.item_name or "")
                head_const = header + meta if isinstance(header, bytes) else None
                flush_const()
                ops.append(
                    (
                        _OP_ARRAY,
                        prefix_for(FrameType.ARRAY_ELEMENT),
                        header,
                        meta,
                        head_const,
                        dtype_for(code, order),
                        code.size,
                        idx,
                    )
                )
            elif isinstance(current, (DocumentNode, ElementNode)):
                if isinstance(current, ElementNode):
                    scopes.push(enc._own_table(current))
                flush_const()
                ops.append((_OP_ENTER,))
                stack.append((_EXIT, current, idx))
                for child in reversed(current.children):
                    stack.append((_ENTER, child, 0))
            elif isinstance(current, TextNode):
                flush_const()
                ops.append((_OP_TEXT, prefix_for(FrameType.CHARACTER_DATA), idx))
            elif isinstance(current, CommentNode):
                flush_const()
                ops.append((_OP_COMMENT, prefix_for(FrameType.COMMENT), idx))
            elif isinstance(current, PINode):
                flush_const()
                ops.append(
                    (_OP_PI, prefix_for(FrameType.PI), enc._string(current.target), idx)
                )
            else:
                raise BXSAEncodeError(f"cannot encode node {type(current).__name__}")
        flush_const()
        return EncodePlan(ops, node_idx + 1)

    def _header_segments(
        self, enc: BXSAEncoder, node: ElementNode, scopes: ScopeStack, node_idx: int
    ):
        """Element header with attribute-value holes.

        Mirrors ``BXSAEncoder._element_header`` field for field; constant
        fields are rendered now, each attribute *value* (type code byte
        included) becomes a ``(node_idx, attr_index, code)`` hole.  Returns
        plain ``bytes`` when the header has no holes (no attributes), which
        lets leaf compilation fold the whole frame head into one constant.
        """
        name_depth, name_index = enc._name_ref(node.name, scopes)
        attr_refs = []
        seen_attrs: set = set()
        for attr in node.attributes:
            if attr.name in seen_attrs:
                raise BXSAEncodeError(
                    f"element {node.name.clark()} has duplicate attribute "
                    f"{attr.name.clark()}"
                )
            seen_attrs.add(attr.name)
            depth, index = enc._name_ref(attr.name, scopes)
            attr_refs.append((depth, index, attr))

        segments: list = []
        const: list[bytes] = []
        table = scopes.current()
        const.append(encode_vls(len(table)))
        for prefix, uri in table:
            const.append(self._cached_string_bytes(prefix))
            const.append(self._cached_string_bytes(uri))
        const.append(enc._ref_bytes(name_depth, name_index))
        const.append(self._cached_string_bytes(node.name.local))
        const.append(encode_vls(len(attr_refs)))
        for attr_index, (depth, index, attr) in enumerate(attr_refs):
            const.append(enc._ref_bytes(depth, index))
            const.append(self._cached_string_bytes(attr.name.local))
            segments.append(b"".join(const))
            const.clear()
            segments.append((node_idx, attr_index, attr.atype.code))
        if const:
            segments.append(b"".join(const))
        if len(segments) == 1 and isinstance(segments[0], bytes):
            return segments[0]
        return segments

    # ------------------------------------------------------------------
    # replay

    def _replay(self, plan: EncodePlan, nodes: list) -> bytes:
        """Execute a plan against the value-bearing ``nodes`` flat list."""
        chunks = self.__dict__.pop("_scratch", None)
        if chunks is None:
            chunks = []
        try:
            nbytes = 0
            open_frames: list[tuple[int, int]] = []  # (placeholder idx, mark)
            order = self.byte_order
            for op in plan.ops:
                tag = op[0]
                if tag == _OP_CONST:
                    chunk = op[1]
                    chunks.append(chunk)
                    nbytes += len(chunk)
                elif tag == _OP_LEAF_FIXED:
                    chunk = op[1] + op[2].pack(nodes[op[3]].value)
                    chunks.append(chunk)
                    nbytes += len(chunk)
                elif tag == _OP_ENTER:
                    open_frames.append((len(chunks), nbytes))
                    chunks.append(b"")
                elif tag == _OP_EXIT:
                    placeholder, mark = open_frames.pop()
                    tail = op[4]
                    if tail is None:
                        header = self._assemble_header(op[2], nodes)
                        tail = header + op[3]
                    body_len = len(tail) + (nbytes - mark)
                    patch = op[1] + encode_vls(body_len) + tail
                    chunks[placeholder] = patch
                    nbytes += len(patch)
                elif tag == _OP_ARRAY:
                    _, prefix, header, meta, head_const, target, item_size, idx = op
                    node = nodes[idx]
                    if head_const is None:
                        head_const = self._assemble_header(header, nodes) + meta
                    count = encode_vls(int(node.values.size))
                    pad = (-(len(head_const) + len(count) + 1)) % item_size
                    normalized = np.ascontiguousarray(node.values, dtype=target)
                    payload = (
                        memoryview(normalized).cast("B") if normalized.size else b""
                    )
                    head = head_const + count + _PAD_BYTES[pad]
                    size_field = encode_vls(len(head) + len(payload))
                    chunks.append(prefix + size_field)
                    chunks.append(head)
                    chunks.append(payload)
                    nbytes += len(prefix) + len(size_field) + len(head) + len(payload)
                elif tag == _OP_LEAF_BOOL:
                    chunk = op[1] + (b"\x01" if nodes[op[2]].value else b"\x00")
                    chunks.append(chunk)
                    nbytes += len(chunk)
                elif tag == _OP_LEAF_VAR:
                    _, prefix, header, code, idx = op
                    node = nodes[idx]
                    if not isinstance(header, bytes):
                        header = self._assemble_header(header, nodes)
                    typed = self._typed_value(code, node.value)
                    body_len = len(header) + len(typed)
                    chunk = prefix + encode_vls(body_len) + header + typed
                    chunks.append(chunk)
                    nbytes += len(chunk)
                elif tag == _OP_TEXT or tag == _OP_COMMENT:
                    body = self._cached_string_bytes(nodes[op[2]].text)
                    chunk = op[1] + encode_vls(len(body)) + body
                    chunks.append(chunk)
                    nbytes += len(chunk)
                elif tag == _OP_PI:
                    body = op[2] + self._cached_string_bytes(nodes[op[3]].data)
                    chunk = op[1] + encode_vls(len(body)) + body
                    chunks.append(chunk)
                    nbytes += len(chunk)
                else:  # pragma: no cover - compiler/replayer must stay in sync
                    raise AssertionError(f"unknown plan op {tag}")
            out = b"".join(chunks)
        finally:
            chunks.clear()  # release payload views before pooling the list
            self._scratch = chunks
        return out

    def _assemble_header(self, segments: list, nodes: list) -> bytes:
        """Fill a variable header's attribute-value holes for one message.

        Each hole carries the owning node's pre-order index, so container
        EXIT ops (where the replay loop has no node at hand) resolve the
        same way leaf and array frames do.
        """
        parts: list[bytes] = []
        for seg in segments:
            if isinstance(seg, bytes):
                parts.append(seg)
            else:
                node_idx, attr_index, code = seg
                attr = nodes[node_idx].attributes[attr_index]
                parts.append(self._typed_value(code, attr.value))
        return b"".join(parts)

    def _typed_value(self, code: TypeCode, value) -> bytes:
        out = bytes((int(code),))
        if code is TypeCode.STRING:
            return out + self._cached_string_bytes(value)
        if code is TypeCode.BOOL:
            return out + (b"\x01" if value else b"\x00")
        return out + struct_for(self.byte_order, code).pack(value)

    def _cached_string_bytes(self, text: str) -> bytes:
        """VLS-length-prefixed UTF-8 bytes, interned across messages."""
        cache = self._string_bytes
        cached = cache.get(text)
        if cached is not None:
            return cached
        raw = text.encode("utf-8")
        rendered = encode_vls(len(raw)) + raw
        if len(text) <= 128:
            if len(cache) > self.max_cached_strings:
                # drop the oldest half (insertion order), never the lot:
                # hot shapes keep their recently-rendered names warm
                for stale in list(islice(iter(cache), len(cache) // 2)):
                    del cache[stale]
            cache[text] = rendered
        return rendered


# ---------------------------------------------------------------------------
# shape signatures


def _shape_and_nodes(root: Node) -> tuple[tuple, list]:
    """One pre-order walk producing (hashable shape key, flat node list).

    The key captures *everything* a compiled plan's constant bytes depend
    on — node kinds, QNames (prefix included: it feeds auto-declaration),
    namespace declaration tables, attribute names and type codes, leaf and
    array type codes, array item-name hints, PI targets, child counts —
    and nothing value-dependent, so two messages with equal keys are
    encodable by one plan.  Plan instructions index into the node list.
    """
    key: list = []
    nodes: list = []
    append_key = key.append
    append_node = nodes.append
    stack: list[Node] = [root]
    while stack:
        node = stack.pop()
        append_node(node)
        if isinstance(node, LeafElement):
            name = node.name
            append_key(
                (
                    "L",
                    name.prefix,
                    name.uri,
                    name.local,
                    _ns_key(node.namespaces),
                    _attr_key(node.attributes),
                    int(node.atype.code),
                )
            )
        elif isinstance(node, ArrayElement):
            name = node.name
            append_key(
                (
                    "A",
                    name.prefix,
                    name.uri,
                    name.local,
                    _ns_key(node.namespaces),
                    _attr_key(node.attributes),
                    int(node.atype.code),
                    node.item_name or "",
                )
            )
        elif isinstance(node, DocumentNode):
            append_key(("D", len(node.children)))
            stack.extend(reversed(node.children))
        elif isinstance(node, ElementNode):
            name = node.name
            append_key(
                (
                    "E",
                    name.prefix,
                    name.uri,
                    name.local,
                    _ns_key(node.namespaces),
                    _attr_key(node.attributes),
                    len(node.children),
                )
            )
            stack.extend(reversed(node.children))
        elif isinstance(node, TextNode):
            append_key("T")
        elif isinstance(node, CommentNode):
            append_key("C")
        elif isinstance(node, PINode):
            append_key(("P", node.target))
        else:
            # foreign node kind: per-instance key => never shared, and the
            # stateless fallback raises the encoder's own error for it
            append_key(("X", id(node)))
    return tuple(key), nodes


def _ns_key(namespaces: list) -> tuple:
    if not namespaces:
        return ()
    return tuple((ns.prefix, ns.uri) for ns in namespaces)


def _attr_key(attributes: list) -> tuple:
    if not attributes:
        return ()
    return tuple(
        (a.name.prefix, a.name.uri, a.name.local, int(a.atype.code))
        for a in attributes
    )
