"""Streaming BXSA: event-based writing and pull-based reading.

XBS is "a *streaming* binary serializer" (the paper's §4 heritage); this
module carries that property up to the BXSA layer.  It lets producers emit
frames as data becomes available — without ever materializing a bXDM tree —
and consumers iterate events the way a StAX/pull parser walks textual XML:

* :class:`BXSAStreamWriter` — ``start_element`` / ``attribute-carrying``
  starts, ``leaf`` / ``array`` / ``text`` / ``comment`` / ``pi`` items,
  ``end_element``; the document is assembled with the same O(n)
  placeholder back-patching as the tree encoder.
* :class:`BXSAStreamReader` — yields :class:`StreamEvent` records
  (START_DOCUMENT/END_DOCUMENT, START_ELEMENT/END_ELEMENT, LEAF, ARRAY,
  TEXT, COMMENT, PI) directly off the frame structure.  Array events carry
  zero-copy numpy views, so a gigabyte-scale message can be reduced (summed,
  verified, re-encoded) in bounded memory.

A round trip through writer → bytes → reader → writer reproduces the
byte stream exactly for documents the tree encoder would produce the same
way (the stream writer *is* the tree encoder's lower half).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro import obs
from repro.bxsa.constants import FrameType, pack_prefix_byte
from repro.bxsa.encoder import BXSAEncoder
from repro.bxsa.errors import BXSADecodeError, BXSAEncodeError
from repro.bxsa.frames import (
    read_frame_prefix,
    read_scalar_value,
    read_string,
    read_type_code,
    read_vls,
)
from repro.bxsa.namespaces import ScopeStack, to_nodes
from repro.xbs.constants import NATIVE_ENDIAN, TypeCode, dtype_for
from repro.xbs.varint import encode_vls
from repro.xdm.errors import XDMTypeError
from repro.xdm.nodes import ArrayElement, AttributeNode, LeafElement
from repro.xdm.qname import QName
from repro.xdm.types import atomic_type_for_code


class EventKind(enum.Enum):
    START_DOCUMENT = "start-document"
    END_DOCUMENT = "end-document"
    START_ELEMENT = "start-element"
    END_ELEMENT = "end-element"
    LEAF = "leaf"
    ARRAY = "array"
    TEXT = "text"
    COMMENT = "comment"
    PI = "pi"


@dataclass(frozen=True)
class StreamEvent:
    """One pull-parsing event.

    Population by kind: START/END_ELEMENT carry ``name`` (+ ``attributes``/
    ``namespaces`` on START); LEAF carries ``name``, ``value``, ``atype``;
    ARRAY carries ``name``, ``values`` (zero-copy), ``atype``, ``item_name``;
    TEXT/COMMENT carry ``text``; PI carries ``target`` and ``text`` (data).
    """

    kind: EventKind
    name: QName | None = None
    attributes: tuple = ()
    namespaces: tuple = ()
    value: object = None
    values: np.ndarray | None = None
    atype: object = None
    item_name: str | None = None
    text: str = ""
    target: str = ""
    depth: int = 0  #: element nesting depth at which the event occurs


# ---------------------------------------------------------------------------
# writer


class BXSAStreamWriter:
    """Emit a BXSA document incrementally.

    The writer reuses the tree encoder's header serialization (namespace
    tokenization, auto-declaration, typed attributes) by building
    throwaway header-only nodes; payloads never pass through bXDM.
    """

    def __init__(self, byte_order: int = NATIVE_ENDIAN) -> None:
        self._encoder = BXSAEncoder(byte_order)
        self.byte_order = byte_order
        self._chunks: list = []
        self._nbytes = 0
        self._scopes = ScopeStack()
        # (placeholder index, byte mark, child count, header bytes|None)
        self._open: list[list] = []
        self._document_started = False
        self._finished = False

    # -- plumbing ------------------------------------------------------

    def _emit(self, chunk) -> None:
        self._chunks.append(chunk)
        self._nbytes += len(chunk)

    def _count_child(self) -> None:
        if not self._open:
            raise BXSAEncodeError("content outside the document")
        self._open[-1][2] += 1

    def _emit_frame(self, frame_type: FrameType, body_chunks: list) -> None:
        size = sum(len(c) for c in body_chunks)
        prefix = bytes((pack_prefix_byte(self.byte_order, frame_type),))
        self._emit(prefix + encode_vls(size))
        for chunk in body_chunks:
            self._emit(chunk)

    def _header_for(
        self, name: QName | str, attributes: dict | None, namespaces: dict | None
    ) -> bytes:
        from repro.xdm.nodes import ElementNode

        qname = name if isinstance(name, QName) else QName.parse(name)
        shell = ElementNode(qname)
        for prefix, uri in (namespaces or {}).items():
            shell.declare_namespace(prefix, uri)
        for attr_name, attr_value in (attributes or {}).items():
            shell.set_attribute(attr_name, attr_value)
        self._scopes.push(self._encoder._own_table(shell))
        return self._encoder._element_header(shell, self._scopes)

    # -- structure ------------------------------------------------------

    def start_document(self) -> "BXSAStreamWriter":
        if self._document_started:
            raise BXSAEncodeError("document already started")
        self._document_started = True
        self._open.append([len(self._chunks), self._nbytes, 0, None])
        self._chunks.append(b"")  # placeholder
        return self

    def start_element(
        self,
        name: QName | str,
        *,
        attributes: dict | None = None,
        namespaces: dict | None = None,
    ) -> "BXSAStreamWriter":
        if not self._document_started:
            raise BXSAEncodeError("start_document() first")
        self._count_child()
        header = self._header_for(name, attributes, namespaces)
        self._open.append([len(self._chunks), self._nbytes, 0, header])
        self._chunks.append(b"")
        return self

    def end_element(self) -> "BXSAStreamWriter":
        if len(self._open) <= 1:
            raise BXSAEncodeError("no element open")
        placeholder, mark, n_children, header = self._open.pop()
        self._scopes.pop()
        self._patch(placeholder, mark, n_children, FrameType.COMPONENT_ELEMENT, header)
        return self

    def end_document(self) -> bytes:
        if len(self._open) != 1:
            raise BXSAEncodeError(f"{len(self._open) - 1} element(s) still open")
        placeholder, mark, n_children, _ = self._open.pop()
        self._patch(placeholder, mark, n_children, FrameType.DOCUMENT, b"")
        self._finished = True
        out = b"".join(self._chunks)
        obs.counter("bxsa.stream.bytes_written").add(len(out))
        return out

    def _patch(self, placeholder, mark, n_children, frame_type, header) -> None:
        children_len = self._nbytes - mark
        count_vls = encode_vls(n_children)
        body_len = len(header) + len(count_vls) + children_len
        prefix = bytes((pack_prefix_byte(self.byte_order, frame_type),))
        chunk = prefix + encode_vls(body_len) + header + count_vls
        self._chunks[placeholder] = chunk
        self._nbytes += len(chunk)

    # -- content --------------------------------------------------------

    def leaf(self, name: QName | str, value, atype=None, **header_kwargs) -> "BXSAStreamWriter":
        self._count_child()
        node = LeafElement(name, value, atype)
        header = self._header_for(node.name, header_kwargs.get("attributes"), header_kwargs.get("namespaces"))
        self._scopes.pop()
        self._emit_frame(
            FrameType.LEAF_ELEMENT,
            [header + self._encoder._typed_value(node.atype.code, node.value)],
        )
        return self

    def array(
        self,
        name: QName | str,
        values,
        atype=None,
        *,
        item_name: str | None = None,
        attributes: dict | None = None,
        namespaces: dict | None = None,
    ) -> "BXSAStreamWriter":
        self._count_child()
        node = ArrayElement(name, values, atype, item_name=item_name)
        header = self._header_for(node.name, attributes, namespaces)
        self._scopes.pop()
        code = node.atype.code
        meta = bytes((int(code),)) + self._encoder._string(node.item_name or "")
        count = encode_vls(int(node.values.size))
        pad = (-(len(header) + len(meta) + len(count) + 1)) % code.size
        target = dtype_for(code, self.byte_order)
        normalized = np.ascontiguousarray(node.values, dtype=target)
        payload = memoryview(normalized).cast("B") if normalized.size else b""
        head = header + meta + count + bytes((pad,)) + b"\x00" * pad
        self._emit_frame(FrameType.ARRAY_ELEMENT, [head, payload])
        return self

    def text(self, content: str) -> "BXSAStreamWriter":
        self._count_child()
        self._emit_frame(FrameType.CHARACTER_DATA, [self._encoder._string(content)])
        return self

    def comment(self, content: str) -> "BXSAStreamWriter":
        self._count_child()
        self._emit_frame(FrameType.COMMENT, [self._encoder._string(content)])
        return self

    def pi(self, target: str, data: str = "") -> "BXSAStreamWriter":
        self._count_child()
        self._emit_frame(
            FrameType.PI, [self._encoder._string(target) + self._encoder._string(data)]
        )
        return self


# ---------------------------------------------------------------------------
# reader


class BXSAStreamReader:
    """Pull events from a BXSA buffer without building a tree."""

    def __init__(self, data, offset: int = 0) -> None:
        self.data = memoryview(data) if not isinstance(data, memoryview) else data
        self._pos = offset

    def __iter__(self) -> Iterator[StreamEvent]:
        return self.events()

    def events(self) -> Iterator[StreamEvent]:
        """Yield the event stream for the frame at the start offset."""
        count = 0
        for event in self._events():
            count += 1
            yield event
        # metrics land once per document, not per event, so the pull loop
        # costs nothing extra whether or not a recorder is active
        obs.counter("bxsa.stream.events_read").add(count)

    def _events(self) -> Iterator[StreamEvent]:
        scopes = ScopeStack()
        # stack of (remaining children, frame end, is_element, name|None)
        stack: list[list] = []
        data = self.data
        pos = self._pos
        while True:
            byte_order, frame_type, body, end = read_frame_prefix(data, pos)
            if stack and end > stack[-1][1]:
                # a child whose Size reaches past its container would hand
                # the consumer bytes belonging to the *next* frame; a pull
                # parser must refuse before yielding the event
                raise BXSADecodeError(
                    f"frame at offset {pos} ends at {end}, overrunning its "
                    f"enclosing frame's end {stack[-1][1]}"
                )
            depth = sum(1 for entry in stack if entry[2])

            if frame_type is FrameType.DOCUMENT:
                count, body = read_vls(data, body)
                yield StreamEvent(EventKind.START_DOCUMENT, depth=depth)
                if count == 0:
                    yield StreamEvent(EventKind.END_DOCUMENT, depth=depth)
                    if not stack:
                        return
                    raise BXSADecodeError("document frame nested inside a document")
                stack.append([count, end, False, None])
                pos = body
                continue

            if frame_type is FrameType.COMPONENT_ELEMENT:
                name, attrs, table, body = self._read_header(data, body, byte_order, scopes)
                count, body = read_vls(data, body)
                yield StreamEvent(
                    EventKind.START_ELEMENT,
                    name=name,
                    attributes=tuple(attrs),
                    namespaces=tuple(to_nodes(table)),
                    depth=depth,
                )
                if count == 0:
                    scopes.pop()
                    yield StreamEvent(EventKind.END_ELEMENT, name=name, depth=depth)
                    pos = body
                    event = self._close_containers(stack, scopes, pos)
                    for e in event:
                        yield e
                    if not stack:
                        return
                    continue
                stack.append([count, end, True, name])
                pos = body
                continue

            # atom frames ------------------------------------------------
            if frame_type is FrameType.LEAF_ELEMENT:
                name, attrs, table, body = self._read_header(data, body, byte_order, scopes)
                scopes.pop()
                code, body = read_type_code(data, body)
                value, body = read_scalar_value(data, body, code, byte_order)
                if body > end:
                    raise BXSADecodeError("leaf value overruns its frame")
                yield StreamEvent(
                    EventKind.LEAF,
                    name=name,
                    attributes=tuple(attrs),
                    namespaces=tuple(to_nodes(table)),
                    value=value,
                    atype=self._atype(code),
                    depth=depth,
                )
                pos = end
            elif frame_type is FrameType.ARRAY_ELEMENT:
                name, attrs, table, body = self._read_header(data, body, byte_order, scopes)
                scopes.pop()
                code, body = read_type_code(data, body)
                if code is TypeCode.STRING:
                    raise BXSADecodeError("array frames cannot hold strings")
                item_name, body = read_string(data, body)
                count, body = read_vls(data, body)
                # the pad byte must live inside *this* frame: validating
                # against len(data) would read the next frame's bytes when
                # the Size field was truncated
                if body >= end:
                    raise BXSADecodeError("truncated array frame")
                pad = data[body]
                body += 1 + pad
                nbytes = count * code.size
                if body + nbytes > end:
                    raise BXSADecodeError("array payload overruns its frame")
                values = np.frombuffer(
                    data[body : body + nbytes], dtype=dtype_for(code, byte_order), count=count
                )
                yield StreamEvent(
                    EventKind.ARRAY,
                    name=name,
                    attributes=tuple(attrs),
                    namespaces=tuple(to_nodes(table)),
                    values=values,
                    atype=self._atype(code),
                    item_name=item_name or None,
                    depth=depth,
                )
                pos = end
            elif frame_type in (FrameType.CHARACTER_DATA, FrameType.COMMENT):
                content, body = read_string(data, body)
                kind = (
                    EventKind.TEXT
                    if frame_type is FrameType.CHARACTER_DATA
                    else EventKind.COMMENT
                )
                yield StreamEvent(kind, text=content, depth=depth)
                pos = end
            elif frame_type is FrameType.PI:
                target, body = read_string(data, body)
                content, body = read_string(data, body)
                yield StreamEvent(EventKind.PI, target=target, text=content, depth=depth)
                pos = end
            else:  # pragma: no cover - prefix validation rejects earlier
                raise BXSADecodeError(f"unhandled frame type {frame_type!r}")

            if not stack:
                return  # a bare atom frame at top level
            for event in self._close_containers(stack, scopes, pos):
                yield event
            if not stack:
                return

    def _close_containers(self, stack, scopes, pos) -> list[StreamEvent]:
        """Decrement the open container; emit END events for completed ones."""
        events: list[StreamEvent] = []
        while stack:
            stack[-1][0] -= 1
            if stack[-1][0] > 0:
                break
            remaining, end, is_element, name = stack.pop()
            if pos != end:
                raise BXSADecodeError(
                    f"frame size mismatch: content ends at {pos}, Size says {end}"
                )
            depth = sum(1 for entry in stack if entry[2])
            if is_element:
                scopes.pop()
                events.append(StreamEvent(EventKind.END_ELEMENT, name=name, depth=depth))
            else:
                events.append(StreamEvent(EventKind.END_DOCUMENT, depth=depth))
        return events

    @staticmethod
    def _atype(code: TypeCode):
        try:
            return atomic_type_for_code(code)
        except XDMTypeError as exc:
            raise BXSADecodeError(str(exc)) from exc

    def _read_header(self, data, pos, byte_order, scopes):
        """Element header → (QName, [AttributeNode], table, new pos).

        Same wire walk as the tree decoder, kept local so the reader stays
        importable without constructing a BXSADecoder.
        """
        n1, pos = read_vls(data, pos)
        table: list[tuple[str, str]] = []
        for _ in range(n1):
            prefix, pos = read_string(data, pos)
            uri, pos = read_string(data, pos)
            table.append((prefix, uri))
        scopes.push(table)
        from repro.bxsa.frames import read_name_ref

        depth, index, pos = read_name_ref(data, pos)
        local, pos = read_string(data, pos)
        if depth == 0:
            name = QName(local)
        else:
            prefix, uri = scopes.resolve(depth, index)
            name = QName(local, uri, prefix)
        n2, pos = read_vls(data, pos)
        attrs: list[AttributeNode] = []
        for _ in range(n2):
            a_depth, a_index, pos = read_name_ref(data, pos)
            a_local, pos = read_string(data, pos)
            code, pos = read_type_code(data, pos)
            value, pos = read_scalar_value(data, pos, code, byte_order)
            if a_depth == 0:
                qname = QName(a_local)
            else:
                a_prefix, a_uri = scopes.resolve(a_depth, a_index)
                qname = QName(a_local, a_uri, a_prefix)
            attrs.append(AttributeNode(qname, value, self._atype(code)))
        return name, attrs, table, pos
