"""Streaming BXSA: event-based writing and incremental, pull-based reading.

XBS is "a *streaming* binary serializer" (the paper's §4 heritage); this
module carries that property up to the BXSA layer.  It lets producers emit
frames as data becomes available — without ever materializing a bXDM tree —
and consumers iterate events the way a StAX/pull parser walks textual XML:

* :class:`BXSAStreamWriter` — ``start_element`` / ``attribute-carrying``
  starts, ``leaf`` / ``array`` / ``text`` / ``comment`` / ``pi`` items,
  ``end_element``.  Two assembly modes:

  - **buffered** (default): the document is assembled with the same O(n)
    placeholder back-patching as the tree encoder and returned by
    :meth:`~BXSAStreamWriter.end_document` as one ``bytes`` blob, using the
    standard container frames — byte-identical to the tree encoder.
  - **sink-driven** (``sink=``): completed bytes are handed to ``sink`` in
    bounded chunks *as they are produced*.  Container Size fields cannot be
    back-patched once flushed, so containers are written in the streamed
    profile (``STREAM_DOCUMENT``/``STREAM_ELEMENT``/``STREAM_END``, see
    :mod:`repro.bxsa.constants`); atom frames stay byte-identical to the
    standard profile.  Peak memory is O(chunk size), independent of the
    message size — :meth:`~BXSAStreamWriter.array_blocks` even lets the
    payload of one giant array arrive block by block.

* :class:`BXSAStreamReader` — pull events from a *complete* buffer with
  zero-copy numpy views over array payloads.
* :class:`StreamDecoder` — the incremental twin: ``feed(bytes)`` returns the
  events completed by those bytes, however the stream was split.  It accepts
  both the standard and the streamed container profiles; within one ``feed``
  call array events are zero-copy views into the caller's buffer.  With
  ``array_chunk_threshold`` set, arrays at least that large are delivered as
  ``ARRAY_BEGIN`` / ``ARRAY_CHUNK`` / ``ARRAY_END`` so a multi-GiB payload
  never has to be resident at once.

A round trip through writer → bytes → reader → writer reproduces the byte
stream exactly; :func:`write_document` drives a writer from a bXDM tree and
(in buffered mode) reproduces the tree encoder's bytes exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro import obs
from repro.bxsa.constants import FrameType, pack_prefix_byte, unpack_prefix_byte
from repro.bxsa.encoder import BXSAEncoder
from repro.bxsa.errors import BXSADecodeError, BXSAEncodeError
from repro.bxsa.frames import (
    read_frame_prefix,
    read_name_ref,
    read_scalar_value,
    read_string,
    read_type_code,
    read_vls,
)
from repro.bxsa.namespaces import ScopeStack, to_nodes
from repro.xbs.constants import NATIVE_ENDIAN, TypeCode, dtype_for
from repro.xbs.varint import _MAX_VLS_BYTES, encode_vls
from repro.xdm.errors import XDMTypeError
from repro.xdm.nodes import (
    ArrayElement,
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    NamespaceNode,
    PINode,
    TextNode,
)
from repro.xdm.qname import QName
from repro.xdm.types import atomic_type_for_code, atomic_type_for_xsd

#: Default sink-mode flush granularity: bytes are handed to the sink in
#: pieces of (at most) this many bytes.
DEFAULT_CHUNK_SIZE = 64 * 1024


class EventKind(enum.Enum):
    START_DOCUMENT = "start-document"
    END_DOCUMENT = "end-document"
    START_ELEMENT = "start-element"
    END_ELEMENT = "end-element"
    LEAF = "leaf"
    ARRAY = "array"
    ARRAY_BEGIN = "array-begin"
    ARRAY_CHUNK = "array-chunk"
    ARRAY_END = "array-end"
    TEXT = "text"
    COMMENT = "comment"
    PI = "pi"


@dataclass(frozen=True)
class StreamEvent:
    """One pull-parsing event.

    Population by kind: START/END_ELEMENT carry ``name`` (+ ``attributes``/
    ``namespaces`` on START); LEAF carries ``name``, ``value``, ``atype``;
    ARRAY carries ``name``, ``values`` (zero-copy), ``atype``, ``item_name``,
    ``count``; TEXT/COMMENT carry ``text``; PI carries ``target`` and
    ``text`` (data).  :class:`StreamDecoder` in chunked-array mode replaces
    ARRAY with ARRAY_BEGIN (``count``), ARRAY_CHUNK (``values`` holding
    ``len(values)`` items starting at item index ``item_offset``) and
    ARRAY_END (``item_offset == count``).
    """

    kind: EventKind
    name: QName | None = None
    attributes: tuple = ()
    namespaces: tuple = ()
    value: object = None
    values: np.ndarray | None = None
    atype: object = None
    item_name: str | None = None
    text: str = ""
    target: str = ""
    depth: int = 0  #: element nesting depth at which the event occurs
    count: int | None = None  #: total item count of the (chunked) array
    item_offset: int = 0  #: index of the first item carried by an ARRAY_CHUNK


def _atype_for(code: TypeCode):
    try:
        return atomic_type_for_code(code)
    except XDMTypeError as exc:
        raise BXSADecodeError(str(exc)) from exc


def _type_code_of(atype) -> TypeCode:
    if isinstance(atype, TypeCode):
        return atype
    code = getattr(atype, "code", None)
    if code is not None:
        return code
    if isinstance(atype, str):
        return atomic_type_for_xsd(atype).code
    raise BXSAEncodeError(f"cannot derive an array item type from {atype!r}")


def _namespace_items(namespaces):
    if not namespaces:
        return ()
    if isinstance(namespaces, dict):
        return namespaces.items()
    out = []
    for entry in namespaces:
        if isinstance(entry, NamespaceNode):
            out.append((entry.prefix, entry.uri))
        else:
            prefix, uri = entry
            out.append((prefix, uri))
    return out


# ---------------------------------------------------------------------------
# writer


class BXSAStreamWriter:
    """Emit a BXSA document incrementally.

    The writer reuses the tree encoder's header serialization (namespace
    tokenization, auto-declaration, typed attributes) by building
    throwaway header-only nodes; payloads never pass through bXDM.

    Without ``sink`` the document accumulates in memory and
    :meth:`end_document` returns it, byte-identical to the tree encoder.
    With ``sink`` (any callable accepting a bytes-like object — a socket's
    ``sendall``, ``hashlib``'s ``update``, a chunked-HTTP body writer),
    bytes are flushed in pieces of at most ``chunk_size`` as soon as they
    are complete, containers use the streamed profile, and
    :meth:`end_document` returns ``b""``.  The sink must consume (or copy)
    each piece before returning: large array payloads are passed as
    memoryviews whose buffer is reused afterwards.
    """

    def __init__(
        self,
        byte_order: int = NATIVE_ENDIAN,
        *,
        sink=None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self._encoder = BXSAEncoder(byte_order)
        self.byte_order = byte_order
        self._sink = sink
        self._chunk_size = int(chunk_size)
        if sink is not None and self._chunk_size <= 0:
            raise BXSAEncodeError(f"chunk_size must be positive, got {chunk_size}")
        self._pending = bytearray()
        self._chunks: list = []
        self._nbytes = 0
        self._pieces = 0
        self._scopes = ScopeStack()
        # (placeholder index, byte mark, child count, header bytes|None);
        # sink mode keeps only the child count (no back-patching)
        self._open: list[list] = []
        self._document_started = False
        self._finished = False

    # -- plumbing ------------------------------------------------------

    def _emit(self, chunk) -> None:
        self._nbytes += len(chunk)
        if self._sink is None:
            self._chunks.append(chunk)
        else:
            self._sink_write(chunk)

    def _piece_out(self, piece) -> None:
        # a traced stream marks when its first piece left (TTFB's encode
        # half) — the matching stream.last_chunk lands in end_document
        if self._pieces == 0:
            obs.event("stream.first_chunk", bytes=len(piece))
        self._pieces += 1
        self._sink(piece)

    def _sink_write(self, chunk) -> None:
        cs = self._chunk_size
        pending = self._pending
        if len(chunk) >= cs:
            view = chunk if isinstance(chunk, memoryview) else memoryview(chunk)
            if view.format != "B":
                view = view.cast("B")
            n = len(view)
            if pending:
                # flush the buffered tail as its own (short) piece instead
                # of topping it up to a full chunk: topping up would pull
                # the large payload through the bytearray — two extra
                # chunk-sized copies per chunk, which for a streamed
                # gigabyte array *is* the pipeline's peak memory.  Pieces
                # stay at most ``chunk_size``; only their boundaries shift.
                self._piece_out(bytes(pending))
                pending.clear()
            off = 0
            while n - off >= cs:
                self._piece_out(view[off : off + cs])
                off += cs
            if off < n:
                pending += view[off:]
            return
        pending += chunk
        while len(pending) >= cs:
            self._piece_out(bytes(pending[:cs]))
            del pending[:cs]

    def _flush_pending(self) -> None:
        if self._pending:
            self._piece_out(bytes(self._pending))
            self._pending.clear()

    def _count_child(self) -> None:
        if not self._open:
            raise BXSAEncodeError("content outside the document")
        self._open[-1][2] += 1

    def _emit_frame(self, frame_type: FrameType, body_chunks: list) -> None:
        size = sum(len(c) for c in body_chunks)
        prefix = bytes((pack_prefix_byte(self.byte_order, frame_type),))
        self._emit(prefix + encode_vls(size))
        for chunk in body_chunks:
            self._emit(chunk)

    def _header_for(self, name: QName | str, attributes, namespaces) -> bytes:
        qname = name if isinstance(name, QName) else QName.parse(name)
        shell = ElementNode(qname)
        for prefix, uri in _namespace_items(namespaces):
            shell.declare_namespace(prefix, uri)
        if attributes:
            if isinstance(attributes, dict):
                for attr_name, attr_value in attributes.items():
                    shell.set_attribute(attr_name, attr_value)
            else:
                for attr in attributes:
                    shell.set_attribute(attr.name, attr.value, attr.atype)
        table = self._encoder._own_table(shell)
        explicit = len(table)
        self._scopes.push(table)
        try:
            header = self._encoder._element_header(shell, self._scopes)
        except BXSAEncodeError:
            self._scopes.pop()
            raise
        if len(table) > explicit:
            # Auto-declarations serialized into this header must stay
            # invisible to descendant frames: the tree encoder resolves a
            # container's header only after its children are encoded, so
            # descendants re-declare such URIs in their own frames.  Byte
            # identity between the two engines depends on doing the same.
            self._scopes.pop()
            self._scopes.push(table[:explicit])
        return header

    # -- structure ------------------------------------------------------

    def start_document(self) -> "BXSAStreamWriter":
        if self._document_started:
            raise BXSAEncodeError("document already started")
        self._document_started = True
        if self._sink is not None:
            self._open.append([None, None, 0, None])
            self._emit_frame(FrameType.STREAM_DOCUMENT, [])
        else:
            self._open.append([len(self._chunks), self._nbytes, 0, None])
            self._chunks.append(b"")  # placeholder
        return self

    def start_element(
        self,
        name: QName | str,
        *,
        attributes=None,
        namespaces=None,
    ) -> "BXSAStreamWriter":
        if not self._document_started:
            raise BXSAEncodeError("start_document() first")
        self._count_child()
        header = self._header_for(name, attributes, namespaces)
        if self._sink is not None:
            self._open.append([None, None, 0, None])
            self._emit_frame(FrameType.STREAM_ELEMENT, [header])
        else:
            self._open.append([len(self._chunks), self._nbytes, 0, header])
            self._chunks.append(b"")
        return self

    def end_element(self) -> "BXSAStreamWriter":
        if len(self._open) <= 1:
            raise BXSAEncodeError("no element open")
        placeholder, mark, n_children, header = self._open.pop()
        self._scopes.pop()
        if self._sink is not None:
            self._emit_frame(FrameType.STREAM_END, [encode_vls(n_children)])
        else:
            self._patch(
                placeholder, mark, n_children, FrameType.COMPONENT_ELEMENT, header
            )
        return self

    def end_document(self) -> bytes:
        if len(self._open) != 1:
            raise BXSAEncodeError(f"{len(self._open) - 1} element(s) still open")
        placeholder, mark, n_children, _ = self._open.pop()
        self._finished = True
        if self._sink is not None:
            self._emit_frame(FrameType.STREAM_END, [encode_vls(n_children)])
            self._flush_pending()
            obs.event("stream.last_chunk", pieces=self._pieces, bytes=self._nbytes)
            obs.counter("bxsa.stream.bytes_written").add(self._nbytes)
            return b""
        self._patch(placeholder, mark, n_children, FrameType.DOCUMENT, b"")
        out = b"".join(self._chunks)
        obs.counter("bxsa.stream.bytes_written").add(len(out))
        return out

    def _patch(self, placeholder, mark, n_children, frame_type, header) -> None:
        children_len = self._nbytes - mark
        count_vls = encode_vls(n_children)
        body_len = len(header) + len(count_vls) + children_len
        prefix = bytes((pack_prefix_byte(self.byte_order, frame_type),))
        chunk = prefix + encode_vls(body_len) + header + count_vls
        self._chunks[placeholder] = chunk
        self._nbytes += len(chunk)

    # -- content --------------------------------------------------------

    def leaf(
        self,
        name: QName | str,
        value,
        atype=None,
        *,
        attributes=None,
        namespaces=None,
    ) -> "BXSAStreamWriter":
        self._count_child()
        node = LeafElement(name, value, atype)
        header = self._header_for(node.name, attributes, namespaces)
        self._scopes.pop()
        self._emit_frame(
            FrameType.LEAF_ELEMENT,
            [header + self._encoder._typed_value(node.atype.code, node.value)],
        )
        return self

    def array(
        self,
        name: QName | str,
        values,
        atype=None,
        *,
        item_name: str | None = None,
        attributes=None,
        namespaces=None,
    ) -> "BXSAStreamWriter":
        self._count_child()
        node = ArrayElement(name, values, atype, item_name=item_name)
        header = self._header_for(node.name, attributes, namespaces)
        self._scopes.pop()
        code = node.atype.code
        meta = bytes((int(code),)) + self._encoder._string(node.item_name or "")
        count = encode_vls(int(node.values.size))
        pad = (-(len(header) + len(meta) + len(count) + 1)) % code.size
        target = dtype_for(code, self.byte_order)
        normalized = np.ascontiguousarray(node.values, dtype=target)
        payload = memoryview(normalized).cast("B") if normalized.size else b""
        head = header + meta + count + bytes((pad,)) + b"\x00" * pad
        self._emit_frame(FrameType.ARRAY_ELEMENT, [head, payload])
        return self

    def array_blocks(
        self,
        name: QName | str,
        count: int,
        blocks,
        atype,
        *,
        item_name: str | None = None,
        attributes=None,
        namespaces=None,
    ) -> "BXSAStreamWriter":
        """One array frame whose payload arrives as an iterable of blocks.

        The frame Size is computed up front from ``count`` and the item
        type, so the payload streams through without ever being assembled —
        the producer-side complement of :class:`StreamDecoder`'s chunked
        array events.  ``atype`` is mandatory (an atomic type, its xsd name,
        or a :class:`TypeCode`): there is no materialized payload to infer
        it from.  The block byte total must match ``count`` items exactly;
        a mismatch poisons the writer (bytes may already be flushed) and
        raises.
        """
        self._count_child()
        code = _type_code_of(atype)
        if code is TypeCode.STRING:
            raise BXSAEncodeError("array frames cannot hold strings")
        count = int(count)
        if count < 0:
            raise BXSAEncodeError(f"array item count must be >= 0, got {count}")
        header = self._header_for(name, attributes, namespaces)
        self._scopes.pop()
        meta = bytes((int(code),)) + self._encoder._string(item_name or "")
        count_vls = encode_vls(count)
        pad = (-(len(header) + len(meta) + len(count_vls) + 1)) % code.size
        head = header + meta + count_vls + bytes((pad,)) + b"\x00" * pad
        nbytes = count * code.size
        prefix = bytes((pack_prefix_byte(self.byte_order, FrameType.ARRAY_ELEMENT),))
        self._emit(prefix + encode_vls(len(head) + nbytes))
        self._emit(head)
        target = dtype_for(code, self.byte_order)
        written = 0
        for block in blocks:
            normalized = np.ascontiguousarray(block, dtype=target)
            if not normalized.size:
                continue
            payload = memoryview(normalized).cast("B")
            written += len(payload)
            if written > nbytes:
                raise BXSAEncodeError(
                    f"array_blocks promised {count} items ({nbytes} bytes) but "
                    f"received at least {written} payload bytes"
                )
            self._emit(payload)
        if written != nbytes:
            raise BXSAEncodeError(
                f"array_blocks promised {count} items ({nbytes} bytes) but "
                f"received {written} payload bytes"
            )
        return self

    def text(self, content: str) -> "BXSAStreamWriter":
        self._count_child()
        self._emit_frame(FrameType.CHARACTER_DATA, [self._encoder._string(content)])
        return self

    def comment(self, content: str) -> "BXSAStreamWriter":
        self._count_child()
        self._emit_frame(FrameType.COMMENT, [self._encoder._string(content)])
        return self

    def pi(self, target: str, data: str = "") -> "BXSAStreamWriter":
        self._count_child()
        self._emit_frame(
            FrameType.PI, [self._encoder._string(target) + self._encoder._string(data)]
        )
        return self


_ENTER, _EXIT = 0, 1


def write_document(writer: BXSAStreamWriter, document: DocumentNode) -> bytes:
    """Drive ``writer`` from a bXDM document tree.

    In buffered mode the result is byte-identical to
    :func:`repro.bxsa.encoder.encode`; in sink mode the same logical
    document goes out in the streamed profile.  Iterative, so arbitrarily
    deep documents transfer without recursion limits.
    """
    if not isinstance(document, DocumentNode):
        raise BXSAEncodeError(f"expected DocumentNode, got {type(document).__name__}")
    writer.start_document()
    work: list[tuple[int, object]] = [
        (_ENTER, child) for child in reversed(document.children)
    ]
    while work:
        action, node = work.pop()
        if action == _EXIT:
            writer.end_element()
        elif isinstance(node, LeafElement):
            writer.leaf(
                node.name,
                node.value,
                node.atype,
                attributes=list(node.attributes),
                namespaces=list(node.namespaces),
            )
        elif isinstance(node, ArrayElement):
            writer.array(
                node.name,
                node.values,
                node.atype,
                item_name=node.item_name,
                attributes=list(node.attributes),
                namespaces=list(node.namespaces),
            )
        elif isinstance(node, ElementNode):
            writer.start_element(
                node.name,
                attributes=list(node.attributes),
                namespaces=list(node.namespaces),
            )
            work.append((_EXIT, node))
            for child in reversed(node.children):
                work.append((_ENTER, child))
        elif isinstance(node, TextNode):
            writer.text(node.text)
        elif isinstance(node, CommentNode):
            writer.comment(node.text)
        elif isinstance(node, PINode):
            writer.pi(node.target, node.data)
        else:
            raise BXSAEncodeError(f"cannot stream node {type(node).__name__}")
    return writer.end_document()


# ---------------------------------------------------------------------------
# reader


class BXSAStreamReader:
    """Pull events from a BXSA buffer without building a tree.

    Accepts any buffer (``bytes``, ``bytearray``, ``memoryview``, mmap)
    without copying: array events are numpy views aliasing the caller's
    buffer, extending the codec's documented ``copy=False`` contract to the
    stream layer.
    """

    def __init__(self, data, offset: int = 0) -> None:
        self.data = memoryview(data) if not isinstance(data, memoryview) else data
        self._pos = offset

    def __iter__(self) -> Iterator[StreamEvent]:
        return self.events()

    def events(self) -> Iterator[StreamEvent]:
        """Yield the event stream for the frame at the start offset."""
        count = 0
        for event in self._events():
            count += 1
            yield event
        # metrics land once per document, not per event, so the pull loop
        # costs nothing extra whether or not a recorder is active
        obs.counter("bxsa.stream.events_read").add(count)

    def _events(self) -> Iterator[StreamEvent]:
        scopes = ScopeStack()
        # stack of (remaining children, frame end, is_element, name|None)
        stack: list[list] = []
        data = self.data
        pos = self._pos
        while True:
            byte_order, frame_type, body, end = read_frame_prefix(data, pos)
            if stack and end > stack[-1][1]:
                # a child whose Size reaches past its container would hand
                # the consumer bytes belonging to the *next* frame; a pull
                # parser must refuse before yielding the event
                raise BXSADecodeError(
                    f"frame at offset {pos} ends at {end}, overrunning its "
                    f"enclosing frame's end {stack[-1][1]}"
                )
            depth = sum(1 for entry in stack if entry[2])

            if frame_type is FrameType.DOCUMENT:
                count, body = read_vls(data, body)
                yield StreamEvent(EventKind.START_DOCUMENT, depth=depth)
                if count == 0:
                    yield StreamEvent(EventKind.END_DOCUMENT, depth=depth)
                    if not stack:
                        return
                    raise BXSADecodeError("document frame nested inside a document")
                stack.append([count, end, False, None])
                pos = body
                continue

            if frame_type is FrameType.COMPONENT_ELEMENT:
                name, attrs, table, body = self._read_header(data, body, byte_order, scopes)
                count, body = read_vls(data, body)
                yield StreamEvent(
                    EventKind.START_ELEMENT,
                    name=name,
                    attributes=tuple(attrs),
                    namespaces=tuple(to_nodes(table)),
                    depth=depth,
                )
                if count == 0:
                    scopes.pop()
                    yield StreamEvent(EventKind.END_ELEMENT, name=name, depth=depth)
                    pos = body
                    event = self._close_containers(stack, scopes, pos)
                    for e in event:
                        yield e
                    if not stack:
                        return
                    continue
                stack.append([count, end, True, name])
                pos = body
                continue

            # atom frames ------------------------------------------------
            if frame_type is FrameType.LEAF_ELEMENT:
                name, attrs, table, body = self._read_header(data, body, byte_order, scopes)
                scopes.pop()
                code, body = read_type_code(data, body)
                value, body = read_scalar_value(data, body, code, byte_order)
                if body > end:
                    raise BXSADecodeError("leaf value overruns its frame")
                yield StreamEvent(
                    EventKind.LEAF,
                    name=name,
                    attributes=tuple(attrs),
                    namespaces=tuple(to_nodes(table)),
                    value=value,
                    atype=self._atype(code),
                    depth=depth,
                )
                pos = end
            elif frame_type is FrameType.ARRAY_ELEMENT:
                name, attrs, table, body = self._read_header(data, body, byte_order, scopes)
                scopes.pop()
                code, body = read_type_code(data, body)
                if code is TypeCode.STRING:
                    raise BXSADecodeError("array frames cannot hold strings")
                item_name, body = read_string(data, body)
                count, body = read_vls(data, body)
                # the pad byte must live inside *this* frame: validating
                # against len(data) would read the next frame's bytes when
                # the Size field was truncated
                if body >= end:
                    raise BXSADecodeError("truncated array frame")
                pad = data[body]
                body += 1 + pad
                nbytes = count * code.size
                if body + nbytes > end:
                    raise BXSADecodeError("array payload overruns its frame")
                values = np.frombuffer(
                    data[body : body + nbytes], dtype=dtype_for(code, byte_order), count=count
                )
                yield StreamEvent(
                    EventKind.ARRAY,
                    name=name,
                    attributes=tuple(attrs),
                    namespaces=tuple(to_nodes(table)),
                    values=values,
                    atype=self._atype(code),
                    item_name=item_name or None,
                    count=count,
                    depth=depth,
                )
                pos = end
            elif frame_type in (FrameType.CHARACTER_DATA, FrameType.COMMENT):
                content, body = read_string(data, body)
                kind = (
                    EventKind.TEXT
                    if frame_type is FrameType.CHARACTER_DATA
                    else EventKind.COMMENT
                )
                yield StreamEvent(kind, text=content, depth=depth)
                pos = end
            elif frame_type is FrameType.PI:
                target, body = read_string(data, body)
                content, body = read_string(data, body)
                yield StreamEvent(EventKind.PI, target=target, text=content, depth=depth)
                pos = end
            else:
                raise BXSADecodeError(
                    f"streamed-profile frame {frame_type.name} requires the "
                    "incremental reader; feed this byte stream to "
                    "repro.bxsa.stream.StreamDecoder"
                )

            if not stack:
                return  # a bare atom frame at top level
            for event in self._close_containers(stack, scopes, pos):
                yield event
            if not stack:
                return

    def _close_containers(self, stack, scopes, pos) -> list[StreamEvent]:
        """Decrement the open container; emit END events for completed ones."""
        events: list[StreamEvent] = []
        while stack:
            stack[-1][0] -= 1
            if stack[-1][0] > 0:
                break
            remaining, end, is_element, name = stack.pop()
            if pos != end:
                raise BXSADecodeError(
                    f"frame size mismatch: content ends at {pos}, Size says {end}"
                )
            depth = sum(1 for entry in stack if entry[2])
            if is_element:
                scopes.pop()
                events.append(StreamEvent(EventKind.END_ELEMENT, name=name, depth=depth))
            else:
                events.append(StreamEvent(EventKind.END_DOCUMENT, depth=depth))
        return events

    @staticmethod
    def _atype(code: TypeCode):
        return _atype_for(code)

    def _read_header(self, data, pos, byte_order, scopes):
        """Element header → (QName, [AttributeNode], table, new pos).

        Same wire walk as the tree decoder, kept local so the reader stays
        importable without constructing a BXSADecoder.
        """
        n1, pos = read_vls(data, pos)
        table: list[tuple[str, str]] = []
        for _ in range(n1):
            prefix, pos = read_string(data, pos)
            uri, pos = read_string(data, pos)
            table.append((prefix, uri))
        scopes.push(table)
        depth, index, pos = read_name_ref(data, pos)
        local, pos = read_string(data, pos)
        if depth == 0:
            name = QName(local)
        else:
            prefix, uri = scopes.resolve(depth, index)
            name = QName(local, uri, prefix)
        n2, pos = read_vls(data, pos)
        attrs: list[AttributeNode] = []
        for _ in range(n2):
            a_depth, a_index, pos = read_name_ref(data, pos)
            a_local, pos = read_string(data, pos)
            code, pos = read_type_code(data, pos)
            value, pos = read_scalar_value(data, pos, code, byte_order)
            if a_depth == 0:
                qname = QName(a_local)
            else:
                a_prefix, a_uri = scopes.resolve(a_depth, a_index)
                qname = QName(a_local, a_uri, a_prefix)
            attrs.append(AttributeNode(qname, value, self._atype(code)))
        return name, attrs, table, pos


# ---------------------------------------------------------------------------
# incremental decoder


class _NeedMore(Exception):
    """Internal: the current frame cannot complete with the bytes buffered."""


# container-stack entry kinds
_STD_DOC, _STD_ELEM, _S_DOC, _S_ELEM = 0, 1, 2, 3


class StreamDecoder:
    """Incremental BXSA reader: feed bytes as they arrive, collect events.

    ``feed(data)`` returns the :class:`StreamEvent` list completed by those
    bytes.  The event sequence is independent of how the byte stream is
    split across ``feed`` calls; within one call, array payload views are
    zero-copy over the caller's buffer whenever the decoder is not forced
    to reassemble a frame that straddled a previous call (straddling
    remainders are buffered — bounded by the frame head size plus one feed).

    Accepts both container profiles: the standard embedded-Size frames the
    tree encoder produces and the streamed ``STREAM_*`` profile of the
    sink-driven writer.  Corruption whose detection needs bytes that have
    not arrived yet is reported once the frame's claimed extent is
    buffered (or at :meth:`close`); structural lies that are provable
    early — a child frame overrunning its container — fail immediately,
    before any event for that frame is delivered.

    With ``array_chunk_threshold=t``, arrays of at least ``t`` payload
    bytes are delivered as ARRAY_BEGIN / ARRAY_CHUNK… / ARRAY_END instead
    of one ARRAY event, and their payloads are never buffered: peak memory
    stays O(feed size), not O(array size).  Chunk boundaries follow feed
    boundaries; everything else about the event stream is unchanged.
    """

    def __init__(self, *, array_chunk_threshold: int | None = None) -> None:
        if array_chunk_threshold is not None and array_chunk_threshold <= 0:
            raise ValueError(
                f"array_chunk_threshold must be positive, got {array_chunk_threshold}"
            )
        self._threshold = array_chunk_threshold
        self._buf = bytearray()
        self._abs = 0  # absolute stream offset of the next unconsumed byte
        self._scopes = ScopeStack()
        # entries: [kind, name, end_abs|None, children remaining|seen]
        self._stack: list[list] = []
        self._array: dict | None = None
        self._ndepth = 0  # open element frames (event depth)
        self._started = False
        self._done = False

    @property
    def done(self) -> bool:
        """True once a complete document (or bare top-level frame) ended."""
        return self._done

    def feed(self, data) -> list[StreamEvent]:
        view = data if isinstance(data, memoryview) else memoryview(data)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        events: list[StreamEvent] = []
        n = len(view)
        pos = 0
        while pos < n:
            if self._done:
                raise BXSADecodeError(
                    f"{n - pos} byte(s) past the end of the document"
                )
            if self._array is not None:
                new = self._consume_array(view, pos, events, zero_copy=True)
                self._abs += new - pos
                pos = new
            elif self._buf:
                self._buf += view[pos:]
                pos = n
                self._drain_buffer(events)
            else:
                pos = self._parse_span(view, pos, events)
        obs.counter("bxsa.stream.events_read").add(len(events))
        return events

    def close(self) -> None:
        """Assert the stream ended exactly at a document boundary."""
        if self._array is not None:
            raise BXSADecodeError("stream ended inside an array payload")
        if self._buf:
            raise BXSADecodeError(
                f"stream ended with a truncated frame at offset {self._abs}"
            )
        if self._stack:
            raise BXSADecodeError(
                f"stream ended with {len(self._stack)} container frame(s) still open"
            )
        if not self._done:
            raise BXSADecodeError("stream ended before any document content")

    # -- consumption paths ---------------------------------------------

    def _parse_span(self, data, pos, events) -> int:
        """Parse frames straight off the caller's buffer (zero-copy arrays)."""
        base = self._abs - pos
        n = len(data)
        while pos < n and self._array is None and not self._done:
            try:
                pos = self._parse_one(data, pos, base, events, zero_copy=True)
            except _NeedMore:
                self._buf += data[pos:]
                return n
            self._abs = base + pos
        return pos

    def _drain_buffer(self, events) -> None:
        buf = self._buf
        base = self._abs  # absolute offset of buf[0], fixed for this drain
        pos = 0
        n = len(buf)
        while pos < n and not self._done:
            if self._array is not None:
                pos = self._consume_array(buf, pos, events, zero_copy=False)
                continue
            try:
                pos = self._parse_one(buf, pos, base, events, zero_copy=False)
            except _NeedMore:
                break
        del buf[:pos]
        self._abs = base + pos
        if self._done and buf:
            raise BXSADecodeError(f"{len(buf)} byte(s) past the end of the document")

    # -- frame parsing --------------------------------------------------

    def _incremental_vls(self, data, pos: int) -> tuple[int, int]:
        n = len(data)
        limit = min(n, pos + _MAX_VLS_BYTES)
        i = pos
        while i < limit:
            if not data[i] & 0x80:
                return read_vls(data, pos)
            i += 1
        if i - pos >= _MAX_VLS_BYTES:
            return read_vls(data, pos)  # raises: longer than the VLS bound
        raise _NeedMore

    def _parse_header(self, data, pos: int, byte_order: int):
        """Element header → (QName, [AttributeNode], table, new pos).

        On success the element's namespace table is left pushed on the
        scope stack; on any failure the stack is unwound, so a retry after
        more bytes arrive reparses from a clean state.
        """
        n1, pos = read_vls(data, pos)
        table: list[tuple[str, str]] = []
        for _ in range(n1):
            prefix, pos = read_string(data, pos)
            uri, pos = read_string(data, pos)
            table.append((prefix, uri))
        self._scopes.push(table)
        try:
            depth_ref, index, pos = read_name_ref(data, pos)
            local, pos = read_string(data, pos)
            if depth_ref == 0:
                name = QName(local)
            else:
                prefix, uri = self._scopes.resolve(depth_ref, index)
                name = QName(local, uri, prefix)
            n2, pos = read_vls(data, pos)
            attrs: list[AttributeNode] = []
            for _ in range(n2):
                a_depth, a_index, pos = read_name_ref(data, pos)
                a_local, pos = read_string(data, pos)
                code, pos = read_type_code(data, pos)
                value, pos = read_scalar_value(data, pos, code, byte_order)
                if a_depth == 0:
                    qname = QName(a_local)
                else:
                    a_prefix, a_uri = self._scopes.resolve(a_depth, a_index)
                    qname = QName(a_local, a_uri, a_prefix)
                attrs.append(AttributeNode(qname, value, _atype_for(code)))
        except BXSADecodeError:
            self._scopes.pop()
            raise
        return name, attrs, table, pos

    def _parse_one(self, data, pos: int, base: int, events, zero_copy: bool) -> int:
        n = len(data)
        byte_order, frame_type = unpack_prefix_byte(data[pos])
        size, body = self._incremental_vls(data, pos + 1)
        frame_end = body + size
        top = self._stack[-1] if self._stack else None
        if top is not None and top[2] is not None and base + frame_end > top[2]:
            # provable from the prefix alone — fail now, don't wait for data
            raise BXSADecodeError(
                f"frame at offset {base + pos} ends at {base + frame_end}, "
                f"overrunning its enclosing frame's end {top[2]}"
            )
        depth = self._ndepth

        if frame_type is FrameType.DOCUMENT:
            count, p = self._incremental_vls(data, body)
            events.append(StreamEvent(EventKind.START_DOCUMENT, depth=depth))
            self._started = True
            if count == 0:
                events.append(StreamEvent(EventKind.END_DOCUMENT, depth=depth))
                if not self._stack:
                    self._done = True
                    return p
                raise BXSADecodeError("document frame nested inside a document")
            self._stack.append([_STD_DOC, None, base + frame_end, count])
            return p

        if frame_type is FrameType.COMPONENT_ELEMENT:
            try:
                name, attrs, table, p = self._parse_header(data, body, byte_order)
                try:
                    count, p = read_vls(data, p)
                except BXSADecodeError:
                    self._scopes.pop()
                    raise
            except BXSADecodeError:
                if frame_end <= n:
                    raise
                raise _NeedMore from None
            events.append(
                StreamEvent(
                    EventKind.START_ELEMENT,
                    name=name,
                    attributes=tuple(attrs),
                    namespaces=tuple(to_nodes(table)),
                    depth=depth,
                )
            )
            self._started = True
            if count == 0:
                self._scopes.pop()
                events.append(StreamEvent(EventKind.END_ELEMENT, name=name, depth=depth))
                self._finish_child(events, base + p)
                return p
            self._stack.append([_STD_ELEM, name, base + frame_end, count])
            self._ndepth += 1
            return p

        if frame_type is FrameType.ARRAY_ELEMENT:
            return self._parse_array(
                data, body, frame_end, base, byte_order, depth, events, zero_copy
            )

        # the remaining frame types are small and forward-length: parse
        # only once every byte the frame claims has arrived
        if frame_end > n:
            raise _NeedMore

        if frame_type is FrameType.LEAF_ELEMENT:
            name, attrs, table, p = self._parse_header(data, body, byte_order)
            self._scopes.pop()
            code, p = read_type_code(data, p)
            value, p = read_scalar_value(data, p, code, byte_order)
            if p > frame_end:
                raise BXSADecodeError("leaf value overruns its frame")
            events.append(
                StreamEvent(
                    EventKind.LEAF,
                    name=name,
                    attributes=tuple(attrs),
                    namespaces=tuple(to_nodes(table)),
                    value=value,
                    atype=_atype_for(code),
                    depth=depth,
                )
            )
            self._started = True
            self._finish_child(events, base + frame_end)
            return frame_end

        if frame_type in (FrameType.CHARACTER_DATA, FrameType.COMMENT):
            content, _p = read_string(data, body)
            kind = (
                EventKind.TEXT
                if frame_type is FrameType.CHARACTER_DATA
                else EventKind.COMMENT
            )
            events.append(StreamEvent(kind, text=content, depth=depth))
            self._started = True
            self._finish_child(events, base + frame_end)
            return frame_end

        if frame_type is FrameType.PI:
            target, p = read_string(data, body)
            content, _p = read_string(data, p)
            events.append(
                StreamEvent(EventKind.PI, target=target, text=content, depth=depth)
            )
            self._started = True
            self._finish_child(events, base + frame_end)
            return frame_end

        if frame_type is FrameType.STREAM_DOCUMENT:
            if size != 0:
                raise BXSADecodeError("STREAM_DOCUMENT frame carries a non-empty body")
            if top is not None and top[0] in (_STD_DOC, _STD_ELEM):
                raise BXSADecodeError(
                    "streamed-profile frame inside a standard container frame"
                )
            events.append(StreamEvent(EventKind.START_DOCUMENT, depth=depth))
            self._started = True
            self._stack.append([_S_DOC, None, None, 0])
            return frame_end

        if frame_type is FrameType.STREAM_ELEMENT:
            if top is not None and top[0] in (_STD_DOC, _STD_ELEM):
                raise BXSADecodeError(
                    "streamed-profile frame inside a standard container frame"
                )
            name, attrs, table, p = self._parse_header(data, body, byte_order)
            if p != frame_end:
                self._scopes.pop()
                raise BXSADecodeError(
                    "STREAM_ELEMENT frame size does not match its element header"
                )
            events.append(
                StreamEvent(
                    EventKind.START_ELEMENT,
                    name=name,
                    attributes=tuple(attrs),
                    namespaces=tuple(to_nodes(table)),
                    depth=depth,
                )
            )
            self._started = True
            self._stack.append([_S_ELEM, name, None, 0])
            self._ndepth += 1
            return frame_end

        if frame_type is FrameType.STREAM_END:
            count, _p = read_vls(data, body)
            if top is None or top[0] not in (_S_DOC, _S_ELEM):
                raise BXSADecodeError("STREAM_END with no open streamed container")
            if count != top[3]:
                raise BXSADecodeError(
                    f"STREAM_END child count {count} does not match "
                    f"the {top[3]} children seen"
                )
            kind, name, _, _ = self._stack.pop()
            if kind == _S_ELEM:
                self._ndepth -= 1
                self._scopes.pop()
                events.append(
                    StreamEvent(EventKind.END_ELEMENT, name=name, depth=self._ndepth)
                )
            else:
                events.append(StreamEvent(EventKind.END_DOCUMENT, depth=self._ndepth))
            self._finish_child(events, base + frame_end)
            return frame_end

        raise BXSADecodeError(f"unhandled frame type {frame_type!r}")

    def _parse_array(
        self, data, body: int, frame_end: int, base: int, byte_order: int,
        depth: int, events, zero_copy: bool,
    ) -> int:
        n = len(data)
        try:
            name, attrs, table, p = self._parse_header(data, body, byte_order)
            self._scopes.pop()
            code, p = read_type_code(data, p)
            if code is TypeCode.STRING:
                raise BXSADecodeError("array frames cannot hold strings")
            item_name, p = read_string(data, p)
            count, p = read_vls(data, p)
            if p >= frame_end or p >= n:
                raise BXSADecodeError("truncated array frame")
            pad = data[p]
            p += 1 + pad
            nbytes = count * code.size
            if p + nbytes > frame_end:
                raise BXSADecodeError("array payload overruns its frame")
        except BXSADecodeError:
            if frame_end <= n:
                raise
            raise _NeedMore from None
        self._started = True
        atype = _atype_for(code)
        if self._threshold is None or nbytes < self._threshold:
            if frame_end > n:
                raise _NeedMore
            raw = data[p : p + nbytes]
            if not zero_copy:
                raw = bytes(raw)
            values = np.frombuffer(raw, dtype=dtype_for(code, byte_order), count=count)
            events.append(
                StreamEvent(
                    EventKind.ARRAY,
                    name=name,
                    attributes=tuple(attrs),
                    namespaces=tuple(to_nodes(table)),
                    values=values,
                    atype=atype,
                    item_name=item_name or None,
                    count=count,
                    depth=depth,
                )
            )
            self._finish_child(events, base + frame_end)
            return frame_end
        events.append(
            StreamEvent(
                EventKind.ARRAY_BEGIN,
                name=name,
                attributes=tuple(attrs),
                namespaces=tuple(to_nodes(table)),
                atype=atype,
                item_name=item_name or None,
                count=count,
                depth=depth,
            )
        )
        self._array = {
            "name": name,
            "atype": atype,
            "item_name": item_name or None,
            "count": count,
            "itemsize": code.size,
            "dtype": dtype_for(code, byte_order),
            "remaining": nbytes,
            "slack": frame_end - (p + nbytes),  # in-frame bytes after the payload
            "carry": bytearray(),
            "item_offset": 0,
            "frame_end_abs": base + frame_end,
            "depth": depth,
        }
        return p

    def _consume_array(self, data, pos: int, events, zero_copy: bool) -> int:
        st = self._array
        n = len(data)
        itemsize = st["itemsize"]
        carry = st["carry"]
        while pos < n and st["remaining"] > 0:
            if carry:
                take = min(itemsize - len(carry), n - pos, st["remaining"])
                carry += data[pos : pos + take]
                pos += take
                st["remaining"] -= take
                if len(carry) == itemsize:
                    values = np.frombuffer(bytes(carry), dtype=st["dtype"], count=1)
                    events.append(self._chunk_event(st, values))
                    st["item_offset"] += 1
                    carry.clear()
                continue
            avail = min(n - pos, st["remaining"])
            nitems = avail // itemsize
            if nitems:
                span = nitems * itemsize
                raw = data[pos : pos + span]
                if not zero_copy:
                    raw = bytes(raw)
                values = np.frombuffer(raw, dtype=st["dtype"], count=nitems)
                events.append(self._chunk_event(st, values))
                st["item_offset"] += nitems
                pos += span
                st["remaining"] -= span
                continue
            carry += data[pos : pos + avail]
            pos += avail
            st["remaining"] -= avail
        if st["remaining"] == 0:
            if carry:  # count*itemsize is a multiple of itemsize; unreachable
                raise BXSADecodeError("array payload not a multiple of the item size")
            if st["slack"]:
                skip = min(st["slack"], n - pos)
                pos += skip
                st["slack"] -= skip
                if st["slack"]:
                    return pos
            events.append(
                StreamEvent(
                    EventKind.ARRAY_END,
                    name=st["name"],
                    atype=st["atype"],
                    item_name=st["item_name"],
                    count=st["count"],
                    item_offset=st["count"],
                    depth=st["depth"],
                )
            )
            frame_end_abs = st["frame_end_abs"]
            self._array = None
            self._finish_child(events, frame_end_abs)
        return pos

    @staticmethod
    def _chunk_event(st: dict, values: np.ndarray) -> StreamEvent:
        return StreamEvent(
            EventKind.ARRAY_CHUNK,
            name=st["name"],
            values=values,
            atype=st["atype"],
            item_name=st["item_name"],
            count=st["count"],
            item_offset=st["item_offset"],
            depth=st["depth"],
        )

    def _finish_child(self, events, pos_abs: int) -> None:
        """A child frame completed at ``pos_abs``; update its container.

        Mirrors the buffered reader's ``_close_containers``: standard
        containers count down and close (strictly at their recorded end)
        when they reach zero, cascading upward; streamed containers count
        up and close only on their explicit STREAM_END frame.
        """
        stack = self._stack
        while stack:
            top = stack[-1]
            if top[0] in (_S_DOC, _S_ELEM):
                top[3] += 1
                return
            top[3] -= 1
            if top[3] > 0:
                return
            kind, name, end_abs, _ = stack.pop()
            if pos_abs != end_abs:
                raise BXSADecodeError(
                    f"frame size mismatch: content ends at {pos_abs}, "
                    f"Size says {end_abs}"
                )
            if kind == _STD_ELEM:
                self._ndepth -= 1
                self._scopes.pop()
                events.append(
                    StreamEvent(EventKind.END_ELEMENT, name=name, depth=self._ndepth)
                )
            else:
                events.append(StreamEvent(EventKind.END_DOCUMENT, depth=self._ndepth))
        self._done = True
