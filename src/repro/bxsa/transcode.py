"""Transcoding between BXSA and textual XML (§4.2 of the paper).

A format is *transcodable* when ``binary → text → binary`` and
``text → binary → text`` both reproduce the original.  Because both codecs
in this project share bXDM as their data model, transcoding is simply
decode-with-one, encode-with-the-other — which is exactly the architectural
point the paper makes (the data model is the interoperability layer; the
serializations are interchangeable legs below it).

Caveats faithfully reproduced from the paper:

* floating-point numbers are re-serialized "to full precision regardless of
  the original input" — we use shortest-round-trip forms, so binary → text →
  binary is value-exact, while text → binary → text may rewrite ``1.50`` as
  ``1.5``;
* without a schema, the textual leg must carry explicit type information
  (``xsi:type``); transcoding with ``emit_types=False`` degrades typed
  nodes to plain elements, exactly as the paper warns.
"""

from __future__ import annotations

from repro.bxsa.decoder import decode as bxsa_decode
from repro.bxsa.encoder import encode as bxsa_encode
from repro.xbs.constants import NATIVE_ENDIAN
from repro.xmlcodec.parser import parse_document
from repro.xmlcodec.serializer import XMLSerializer


def bxsa_to_xml(data, *, emit_types: bool = True, xml_declaration: bool = False) -> str:
    """Transcode a BXSA document to textual XML."""
    node = bxsa_decode(data)
    return XMLSerializer(emit_types=emit_types, xml_declaration=xml_declaration).run(node)


def xml_to_bxsa(text: str | bytes, *, byte_order: int = NATIVE_ENDIAN, typed: bool = True) -> bytes:
    """Transcode a textual XML document to BXSA."""
    node = parse_document(text, typed=typed)
    return bxsa_encode(node, byte_order)
