"""The generic SOAP engine — the paper's primary contribution (§5).

The engine is *generic* in the paper's C++ sense: it implements the SOAP
messaging model once, against two policy concepts it knows nothing concrete
about —

* an **encoding policy** serializes/deserializes bXDM documents
  (:class:`XMLEncoding`, :class:`BXSAEncoding` are the two models shipped);
* a **binding policy** carries octet streams between SOAP nodes
  (TCP framing and HTTP POST are the two models shipped, in
  :mod:`repro.transport`).

Where C++ templates check policy conformance at compile time, this Python
port checks the policies' *valid expressions* at engine construction
(:mod:`repro.core.concepts`) — same discipline, shifted to the earliest
moment Python has.  Any conforming class combines with any other: XML over
TCP, BXSA over HTTP and the two canonical pairings all work, which is
exactly the combinatorial freedom §5 claims.

On top of the engine sit the usual service-side pieces: a dispatcher
mapping body elements to handlers, a service host, a client proxy, SOAP
faults, and an intermediary node that re-binds message hops (§5.1's
up-link/down-link scenario, including BXSA as the intermediate protocol
between textual-XML endpoints).
"""

from repro.core.concepts import (
    PolicyConceptError,
    check_binding_client,
    check_binding_server,
    check_encoding_policy,
)
from repro.core.envelope import SOAP_ENV_URI, SoapEnvelope
from repro.core.fault import SoapFault
from repro.core.policies import (
    BXSAEncoding,
    XMLEncoding,
    encoding_for_content_type,
    register_content_type,
)
from repro.core.compression import DeflateEncoding
from repro.core.wsdl import ServiceDescription, WsdlError
from repro.core.engine import SoapEngine
from repro.core.dispatcher import Dispatcher
from repro.core.service import SoapHttpService, SoapTcpService
from repro.core.client import ServiceProxy, SoapHttpClient, SoapTcpClient
from repro.core.intermediary import TcpIntermediary
from repro.core.security import (
    ChunkSignatureError,
    ChunkSigner,
    ChunkVerifier,
    HmacSigningPolicy,
    NullSecurity,
    SecretKey,
    SECURITY_FAULT,
    check_security_policy,
    sign_stream,
    verify_stream,
)

__all__ = [
    "BXSAEncoding",
    "DeflateEncoding",
    "ServiceDescription",
    "WsdlError",
    "register_content_type",
    "ChunkSignatureError",
    "ChunkSigner",
    "ChunkVerifier",
    "HmacSigningPolicy",
    "NullSecurity",
    "SECURITY_FAULT",
    "SecretKey",
    "check_security_policy",
    "sign_stream",
    "verify_stream",
    "Dispatcher",
    "PolicyConceptError",
    "SOAP_ENV_URI",
    "ServiceProxy",
    "SoapEngine",
    "SoapEnvelope",
    "SoapFault",
    "SoapHttpClient",
    "SoapHttpService",
    "SoapTcpClient",
    "SoapTcpService",
    "TcpIntermediary",
    "XMLEncoding",
    "check_binding_client",
    "check_binding_server",
    "check_encoding_policy",
    "encoding_for_content_type",
]
