"""Client-side conveniences: engine-backed clients and a service proxy.

The clients pair one encoding policy with one binding over a channel
factory, reconnecting lazily.  :class:`ServiceProxy` adds the RPC-flavoured
sugar the examples use (operation element wrapping arguments).

Retry semantics match the HTTP client's: a call is replayed after a
transport failure only while no response bytes have been consumed, and —
beyond the classic single stale-connection resend — only when the client
was constructed with ``idempotent=True``.  Once the server has started
answering, a replay could apply a non-idempotent operation twice.
"""

from __future__ import annotations

import random
from typing import Callable

from repro import obs
from repro.core.engine import SoapEngine
from repro.core.envelope import SoapEnvelope
from repro.core.policies import EncodingPolicy, XMLEncoding
from repro.transport.base import Channel, TransportError
from repro.transport.http.client import HttpClient
from repro.transport.http.binding import HttpClientBinding
from repro.transport.instrument import ChannelStats, InstrumentedChannel
from repro.transport.resilience import Deadline, RetryPolicy, as_deadline, retry_call
from repro.transport.tcp_binding import TcpClientBinding
from repro.xdm.nodes import ElementNode, Node

#: Default: one reconnect-and-resend, no backoff (the seed's behaviour,
#: now gated on idempotency and consumed response bytes).
DEFAULT_CALL_RETRY = RetryPolicy(max_attempts=2, base_backoff=0.0, jitter=0.0)


class SoapTcpClient:
    """SOAP over the raw TCP binding with a persistent connection.

    Parameters
    ----------
    retry:
        Attempt budget / backoff for reconnect-and-resend recovery.
    idempotent:
        Mark every call made through this client as safe to replay.
        Without it, only the first attempt on a previously-used (possibly
        stale) connection is retried — and never after response bytes.
    deadline:
        Default per-call budget in seconds (overridable per call).
    """

    def __init__(
        self,
        connect: Callable[[], Channel],
        *,
        encoding: EncodingPolicy | None = None,
        security=None,
        retry: RetryPolicy | None = None,
        idempotent: bool = False,
        deadline: float | None = None,
    ) -> None:
        self._connect = connect
        self._encoding = encoding if encoding is not None else XMLEncoding()
        self._security = security
        self._retry = retry if retry is not None else DEFAULT_CALL_RETRY
        self._idempotent = idempotent
        self._deadline = deadline
        self._rng = random.Random()
        self._engine: SoapEngine | None = None
        self._channel: Channel | None = None
        self._stats: ChannelStats | None = None

    def call(
        self, envelope: SoapEnvelope, *, deadline: float | Deadline | None = None
    ) -> SoapEnvelope:
        dl = as_deadline(deadline if deadline is not None else self._deadline)
        state = {"consumed": False, "stale_start": self._engine is not None}

        def attempt(_n: int) -> SoapEnvelope:
            engine = self._ensure_engine()
            assert self._stats is not None
            mark = self._stats.bytes_received
            try:
                return engine.call(envelope, deadline=dl)
            except TransportError:
                if self._stats is not None and self._stats.bytes_received > mark:
                    state["consumed"] = True
                self.close()
                raise

        def may_retry(_exc: BaseException, attempt_no: int) -> bool:
            if state["consumed"]:
                return False
            if self._idempotent:
                return True
            # non-idempotent calls keep only the classic recovery: one
            # resend when the first attempt hit a stale persistent
            # connection and the server never started answering
            return attempt_no == 1 and state["stale_start"]

        with obs.span("client.call", kind="logical", binding="tcp"):
            return retry_call(
                attempt, self._retry, deadline=dl, may_retry=may_retry, rng=self._rng
            )

    def close(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None
            self._engine = None
            self._stats = None

    def _ensure_engine(self) -> SoapEngine:
        if self._engine is None:
            instrumented = InstrumentedChannel(self._connect())
            self._channel = instrumented
            self._stats = instrumented.stats
            self._engine = SoapEngine(
                self._encoding, TcpClientBinding(instrumented), self._security
            )
        return self._engine


class SoapHttpClient:
    """SOAP over the HTTP binding (persistent HTTP connection).

    ``idempotent`` marks the operations invoked through this client as
    replayable, unlocking POST retries in the underlying HTTP client;
    ``retry`` and ``deadline`` are threaded down to it.

    ``resilience`` (a :class:`~repro.transport.resilience.ResiliencePolicy`)
    runs every call under the engine's retry budget — this is the loop
    that re-attempts a load-shed exchange (HTTP 503), pacing itself to the
    server's ``Retry-After`` hint when one was sent.
    """

    def __init__(
        self,
        connect: Callable[[], Channel],
        *,
        encoding: EncodingPolicy | None = None,
        security=None,
        target: str = "/soap",
        host: str = "localhost",
        retry: RetryPolicy | None = None,
        idempotent: bool = False,
        deadline: float | None = None,
        resilience=None,
    ) -> None:
        self._http = HttpClient(connect, host=host, retry=retry)
        self._deadline = deadline
        self._engine = SoapEngine(
            self._encoding_or_default(encoding),
            HttpClientBinding(self._http, target, idempotent=idempotent),
            security,
            resilience=resilience,
        )

    @staticmethod
    def _encoding_or_default(encoding: EncodingPolicy | None) -> EncodingPolicy:
        return encoding if encoding is not None else XMLEncoding()

    def call(
        self, envelope: SoapEnvelope, *, deadline: float | Deadline | None = None
    ) -> SoapEnvelope:
        dl = as_deadline(deadline if deadline is not None else self._deadline)
        with obs.span("client.call", kind="logical", binding="http"):
            return self._engine.call(envelope, deadline=dl)

    def close(self) -> None:
        self._http.close()


class ServiceProxy:
    """RPC-style sugar over any client with a ``call(envelope)`` method.

    ``proxy.invoke("Operation", arg_node, ...)`` wraps the arguments in an
    operation element, performs the exchange, and returns the response body
    root element (the conventional ``<OperationResponse>``).
    """

    def __init__(self, client) -> None:
        self._client = client

    def invoke(self, operation: str, *args: Node, headers: tuple[Node, ...] = ()) -> ElementNode:
        op = ElementNode(operation, children=args)
        envelope = SoapEnvelope([op], list(headers))
        response = self._client.call(envelope)
        return response.body_root

    def close(self) -> None:
        self._client.close()
