"""Client-side conveniences: engine-backed clients and a service proxy.

The clients pair one encoding policy with one binding over a channel
factory, reconnecting lazily.  :class:`ServiceProxy` adds the RPC-flavoured
sugar the examples use (operation element wrapping arguments).
"""

from __future__ import annotations

from typing import Callable

from repro.core.engine import SoapEngine
from repro.core.envelope import SoapEnvelope
from repro.core.policies import EncodingPolicy, XMLEncoding
from repro.transport.base import Channel, TransportError
from repro.transport.http.client import HttpClient
from repro.transport.http.binding import HttpClientBinding
from repro.transport.tcp_binding import TcpClientBinding
from repro.xdm.nodes import ElementNode, Node


class SoapTcpClient:
    """SOAP over the raw TCP binding with a persistent connection."""

    def __init__(
        self,
        connect: Callable[[], Channel],
        *,
        encoding: EncodingPolicy | None = None,
        security=None,
    ) -> None:
        self._connect = connect
        self._encoding = encoding if encoding is not None else XMLEncoding()
        self._security = security
        self._engine: SoapEngine | None = None
        self._channel: Channel | None = None

    def call(self, envelope: SoapEnvelope) -> SoapEnvelope:
        attempts = 2 if self._engine is not None else 1
        for attempt in range(attempts):
            engine = self._ensure_engine()
            try:
                return engine.call(envelope)
            except TransportError:
                self.close()
                if attempt == attempts - 1:
                    raise
        raise TransportError("unreachable")  # pragma: no cover

    def close(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None
            self._engine = None

    def _ensure_engine(self) -> SoapEngine:
        if self._engine is None:
            self._channel = self._connect()
            self._engine = SoapEngine(
                self._encoding, TcpClientBinding(self._channel), self._security
            )
        return self._engine


class SoapHttpClient:
    """SOAP over the HTTP binding (persistent HTTP connection)."""

    def __init__(
        self,
        connect: Callable[[], Channel],
        *,
        encoding: EncodingPolicy | None = None,
        security=None,
        target: str = "/soap",
        host: str = "localhost",
    ) -> None:
        self._http = HttpClient(connect, host=host)
        self._encoding = encoding if encoding is not None else XMLEncoding()
        self._engine = SoapEngine(
            self._encoding, HttpClientBinding(self._http, target), security
        )

    def call(self, envelope: SoapEnvelope) -> SoapEnvelope:
        return self._engine.call(envelope)

    def close(self) -> None:
        self._http.close()


class ServiceProxy:
    """RPC-style sugar over any client with a ``call(envelope)`` method.

    ``proxy.invoke("Operation", arg_node, ...)`` wraps the arguments in an
    operation element, performs the exchange, and returns the response body
    root element (the conventional ``<OperationResponse>``).
    """

    def __init__(self, client) -> None:
        self._client = client

    def invoke(self, operation: str, *args: Node, headers: tuple[Node, ...] = ()) -> ElementNode:
        op = ElementNode(operation, children=args)
        envelope = SoapEnvelope([op], list(headers))
        response = self._client.call(envelope)
        return response.body_root

    def close(self) -> None:
        self._client.close()
