"""A compressing encoding policy — the paper's other "alternative
representation".

§2 notes SOAP leaves the message representation open to "alternative
representations (e.g., compressed or binary ones)".  BXSA is the binary
one; this module supplies the compressed one, as a *decorator* over any
other encoding policy::

    engine = SoapEngine(DeflateEncoding(XMLEncoding()), binding)

which demonstrates that policies compose: the engine still sees one object
with ``content_type`` / ``encode`` / ``decode``.

Deflate helps textual XML substantially (its redundancy is syntactic) but
barely touches BXSA's packed numeric payloads — the ablation benchmark
quantifies exactly that, supporting the paper's position that compression
is not a substitute for a typed binary encoding (you pay CPU on every
message and still keep the float↔text conversion underneath).
"""

from __future__ import annotations

import zlib

from repro.core.policies import EncodingPolicy, register_content_type
from repro.xdm.nodes import DocumentNode


class DeflateEncoding:
    """Wrap any encoding policy with zlib (RFC 1950) compression.

    The content type is the inner policy's plus a ``+deflate`` suffix, so
    a server that registered the combination can negotiate it per message
    like any other encoding.
    """

    def __init__(self, inner: EncodingPolicy, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ValueError(f"zlib level must be in [0, 9], got {level}")
        self.inner = inner
        self.level = level
        self.content_type = f"{inner.content_type}+deflate"

    def encode(self, document: DocumentNode) -> bytes:
        return zlib.compress(self.inner.encode(document), self.level)

    def decode(self, payload: bytes) -> DocumentNode:
        try:
            raw = zlib.decompress(payload)
        except zlib.error as exc:
            raise ValueError(f"invalid deflate payload: {exc}") from exc
        return self.inner.decode(raw)

    def register(self) -> "DeflateEncoding":
        """Register this combination for server-side content negotiation."""
        register_content_type(
            self.content_type, lambda: DeflateEncoding(type(self.inner)(), self.level)
        )
        return self

    def __repr__(self) -> str:
        return f"DeflateEncoding({self.inner!r}, level={self.level})"
