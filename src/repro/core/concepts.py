"""Concept checking for engine policies.

The paper leans on C++ policy-based design: "every policy is just defined
as an abstract concept with a set of valid expressions", enforced by the
compiler.  Python has no compile step, so :class:`~repro.core.engine.SoapEngine`
runs these checks at construction — a malformed policy fails loudly at the
same place a C++ template instantiation would, instead of deep inside a
message exchange.
"""

from __future__ import annotations


class PolicyConceptError(TypeError):
    """A policy object does not satisfy its concept's valid expressions."""


def _require(obj, attr: str, concept: str, *, callable_: bool = True) -> None:
    if not hasattr(obj, attr):
        raise PolicyConceptError(
            f"{type(obj).__name__} does not model the {concept} concept: "
            f"missing {attr!r}"
        )
    if callable_ and not callable(getattr(obj, attr)):
        raise PolicyConceptError(
            f"{type(obj).__name__} does not model the {concept} concept: "
            f"{attr!r} is not callable"
        )


def check_encoding_policy(policy) -> None:
    """Valid expressions: ``content_type``, ``encode(doc)``, ``decode(bytes)``."""
    _require(policy, "content_type", "EncodingPolicy", callable_=False)
    if not isinstance(policy.content_type, str) or not policy.content_type:
        raise PolicyConceptError(
            f"{type(policy).__name__}.content_type must be a non-empty str"
        )
    _require(policy, "encode", "EncodingPolicy")
    _require(policy, "decode", "EncodingPolicy")


def check_binding_client(binding) -> None:
    """Valid expressions (client side): ``send_request``, ``receive_response``."""
    _require(binding, "send_request", "BindingPolicy(client)")
    _require(binding, "receive_response", "BindingPolicy(client)")


def check_binding_server(binding) -> None:
    """Valid expressions (server side): ``receive_request``, ``send_response``."""
    _require(binding, "receive_request", "BindingPolicy(server)")
    _require(binding, "send_response", "BindingPolicy(server)")
