"""Server-side operation dispatch.

Maps the first body element's QName (local name, optionally qualified) to a
handler.  Handlers receive the request :class:`SoapEnvelope` and return the
response body children (a node, a list of nodes, or a full envelope);
raising :class:`SoapFault` — or any exception, which is wrapped — produces
a fault response.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from repro.core.envelope import SoapEnvelope
from repro.core.fault import CLIENT_FAULT, SERVER_FAULT, SoapFault
from repro.xdm.nodes import ElementNode, Node
from repro.xdm.qname import QName

Handler = Callable[[SoapEnvelope], "SoapEnvelope | Node | Iterable[Node] | None"]


class Dispatcher:
    """Operation registry + request router.

    ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) RED-counts every
    dispatch into ``soap_dispatch_total{operation,status}`` and
    ``soap_dispatch_seconds{operation}``; unknown operations count under
    operation ``"?"`` so a typo storm cannot explode label cardinality.
    """

    def __init__(self, *, metrics=None) -> None:
        self._handlers: dict[QName | str, Handler] = {}
        self.metrics = metrics

    # ------------------------------------------------------------------

    def register(self, operation: QName | str, handler: Handler) -> None:
        """Register a handler for an operation element.

        ``operation`` may be a bare local name (matches any namespace), a
        Clark-notation string, or a QName (exact match).
        """
        key = self._key(operation)
        if key in self._handlers:
            raise ValueError(f"operation {operation!r} already registered")
        self._handlers[key] = handler

    def operation(self, operation: QName | str):
        """Decorator form of :meth:`register`."""

        def wrap(handler: Handler) -> Handler:
            self.register(operation, handler)
            return handler

        return wrap

    def operations(self) -> list[str]:
        """Registered operation names (for description/introspection)."""
        return [k.clark() if isinstance(k, QName) else k for k in self._handlers]

    # ------------------------------------------------------------------

    def dispatch(self, request: SoapEnvelope) -> SoapEnvelope:
        """Route a request envelope; always returns a response envelope
        (faults become fault envelopes at the service host layer — here
        they propagate as SoapFault for the host to encode)."""
        if self.metrics is None:
            return self._dispatch(request)
        op = "?"
        status = "ok"
        start = time.perf_counter()
        try:
            try:
                op = request.body_root.name.local
            except ValueError:
                pass  # _dispatch raises the client fault for this
            if op not in self._known_locals():
                op = "?"  # unregistered names share one series
            return self._dispatch(request)
        except SoapFault as fault:
            status = "client_fault" if fault.code == CLIENT_FAULT else "server_fault"
            raise
        finally:
            self.metrics.counter(
                "soap_dispatch_total", labels={"operation": op, "status": status}
            ).add()
            self.metrics.histogram(
                "soap_dispatch_seconds", labels={"operation": op}
            ).observe(time.perf_counter() - start)

    def _dispatch(self, request: SoapEnvelope) -> SoapEnvelope:
        try:
            operation = request.body_root
        except ValueError as exc:
            raise SoapFault(CLIENT_FAULT, str(exc)) from exc
        handler = self._resolve(operation)
        if handler is None:
            raise SoapFault(
                CLIENT_FAULT, f"no such operation {operation.name.clark()}"
            )
        try:
            result = handler(request)
        except SoapFault:
            raise
        except Exception as exc:  # noqa: BLE001 - server boundary
            raise SoapFault(
                SERVER_FAULT, f"{type(exc).__name__}: {exc}"
            ) from exc
        return _coerce_envelope(result)

    def _known_locals(self) -> set[str]:
        return {
            k.local if isinstance(k, QName) else k for k in self._handlers
        }

    def _resolve(self, operation: ElementNode) -> Handler | None:
        exact = self._handlers.get(operation.name)
        if exact is not None:
            return exact
        return self._handlers.get(operation.name.local)

    @staticmethod
    def _key(operation: QName | str):
        if isinstance(operation, QName):
            return operation
        if operation.startswith("{"):
            return QName.parse(operation)
        return operation


def _coerce_envelope(result) -> SoapEnvelope:
    if isinstance(result, SoapEnvelope):
        return result
    if result is None:
        return SoapEnvelope()
    if isinstance(result, Node):
        return SoapEnvelope.wrap(result)
    return SoapEnvelope(list(result))
