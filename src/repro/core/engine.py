"""The generic SOAP engine.

The Python rendering of the paper's::

    template <class EncodingPolicy, class BindingPolicy>
    class SoapEngine { ... };

A :class:`SoapEngine` owns one encoding policy and one binding policy and
implements the SOAP message exchange patterns against them:

* client side — :meth:`call` (request-response) and :meth:`send` (one-way);
* server side — :meth:`receive` / :meth:`reply`, used by the service hosts.

The engine is completely ignorant of what the policies do internally: any
object satisfying the concepts (checked at construction) composes, giving
the four combinations the paper demonstrates (XML/HTTP, XML/TCP, BXSA/HTTP,
BXSA/TCP) plus anything a user brings.
"""

from __future__ import annotations

import random
import time

from repro import obs
from repro.obs import propagation
from repro.core.concepts import (
    check_binding_client,
    check_binding_server,
    check_encoding_policy,
)
from repro.core.envelope import SoapEnvelope
from repro.core.fault import SoapFault
from repro.core.policies import EncodingPolicy, encoding_for_content_type
from repro.core.security import check_security_policy
from repro.transport.base import TransportError
from repro.transport.resilience import (
    DeadlineExceeded,
    ResiliencePolicy,
    ServerBusy,
    as_deadline,
    retry_call,
)


class SoapEngine:
    """One SOAP node endpoint: an encoding policy + a binding policy.

    Parameters
    ----------
    encoding:
        Any model of the encoding policy concept.
    binding:
        Any model of the client- or server-side binding concept (which side
        is needed depends on which methods are called; both are accepted).
    security:
        Optional model of the security policy concept (§5's "just add more
        policies"): its ``sign`` runs on every outgoing envelope and its
        ``verify`` on every incoming one (see :mod:`repro.core.security`).
    strict_content_type:
        When True (default), a received message whose content type differs
        from this engine's encoding is decoded with the matching shipped
        policy — the paper's engines negotiate per message hop.  Set False
        to force the configured encoding regardless of the tag.
    resilience:
        Optional :class:`~repro.transport.resilience.ResiliencePolicy`.
        When set, :meth:`call` runs under its retry budget and default
        deadline, and a transport failure that survives the budget is
        degraded to a ``soap:Server`` fault instead of escaping as a raw
        transport exception.  When unset (default), transport errors
        propagate unchanged — the seed behaviour.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`.  When set, every
        :meth:`call` is RED-counted into
        ``soap_client_requests_total{binding,status}`` /
        ``soap_client_request_seconds{binding}`` and the retry loop's
        labelled counters land here too.  Unset (default), the engine
        reports only to the ambient ``obs`` recorder.
    """

    def __init__(
        self,
        encoding: EncodingPolicy,
        binding,
        security=None,
        *,
        strict_content_type: bool = True,
        resilience: ResiliencePolicy | None = None,
        metrics=None,
    ) -> None:
        check_encoding_policy(encoding)
        if security is not None:
            check_security_policy(security)
        is_client = hasattr(binding, "send_request")
        is_server = hasattr(binding, "receive_request")
        if is_client:
            check_binding_client(binding)
        if is_server:
            check_binding_server(binding)
        if not (is_client or is_server):
            check_binding_client(binding)  # raise with the client-side message
        self.encoding = encoding
        self.binding = binding
        self.security = security
        self.strict_content_type = strict_content_type
        self.resilience = resilience
        self.metrics = metrics
        self._retry_rng = random.Random()
        # Per-engine cache of negotiated policies.  Content-type mismatch
        # used to instantiate a fresh policy per message, which defeated
        # every cross-message codec optimization (compiled plans, interned
        # names) on the negotiation path; a long-lived engine now holds one
        # warm policy per foreign content type it has spoken.
        self._negotiated: dict[str, EncodingPolicy] = {}

    # ------------------------------------------------------------------
    # client-side MEPs

    def call(self, envelope: SoapEnvelope, *, deadline=None) -> SoapEnvelope:
        """Request-response: send, block for the reply, surface faults.

        A ``soap:Fault`` in the response body is raised as
        :class:`SoapFault`; anything else is returned as an envelope.

        ``deadline`` (seconds or a Deadline) bounds the whole exchange; it
        defaults to the resilience policy's deadline when one is set.
        With a resilience policy, transport failures are retried within
        the policy's budget (replays only when the policy marks calls
        idempotent) and an exhausted budget or blown deadline surfaces as
        a ``soap:Server`` :class:`SoapFault` — graceful degradation.
        """
        res = self.resilience
        if deadline is None and res is not None:
            deadline = res.deadline
        dl = as_deadline(deadline)
        status = "ok"
        start = time.perf_counter()
        try:
            with obs.span(
                "soap.call", kind="logical", binding=getattr(self.binding, "name", "?")
            ):
                if res is None:
                    try:
                        self.send(envelope, deadline=dl)
                        return self.receive_response(deadline=dl)
                    except SoapFault:
                        status = "fault"
                        raise
                    except (DeadlineExceeded, TransportError):
                        status = "transport_error"
                        raise

                def attempt(_n: int) -> SoapEnvelope:
                    self.send(envelope, deadline=dl)
                    return self.receive_response(deadline=dl)

                try:
                    # a load-shed exchange (503 + Retry-After -> ServerBusy)
                    # was never admitted by the server, so replaying it is
                    # safe even for non-idempotent operations
                    return retry_call(
                        attempt,
                        res.retry,
                        deadline=dl,
                        may_retry=lambda exc, _attempt: (
                            res.idempotent or isinstance(exc, ServerBusy)
                        ),
                        rng=self._retry_rng,
                        metrics=self.metrics,
                    )
                except SoapFault:
                    status = "fault"
                    raise
                except (DeadlineExceeded, TransportError) as exc:
                    status = "degraded"
                    raise SoapFault(
                        "soap:Server", f"transport failure, degraded gracefully: {exc}"
                    ) from exc
        except BaseException:
            if status == "ok":  # an error no clause above classified
                status = "error"
            raise
        finally:
            if self.metrics is not None:
                binding = getattr(self.binding, "name", type(self.binding).__name__)
                self.metrics.counter(
                    "soap_client_requests_total",
                    labels={"binding": binding, "status": status},
                ).add()
                self.metrics.histogram(
                    "soap_client_request_seconds", labels={"binding": binding}
                ).observe(time.perf_counter() - start)

    def send(self, envelope: SoapEnvelope, *, deadline=None) -> int:
        """One-way send; returns the payload size in bytes."""
        with obs.span("soap.send", kind="logical") as sp:
            # trace context rides as a SOAP header block; injected before
            # signing so the signature covers it (replacing any stale
            # block, so proxy hops re-stamp rather than accumulate)
            ctx = propagation.outbound_context(sp)
            if ctx is not None:
                propagation.inject_envelope(envelope, ctx)
            if self.security is not None:
                self.security.sign(envelope)
            payload = self.encoding.encode(envelope.to_document())
            sp.set("bytes", len(payload))
            if deadline is None:
                self.binding.send_request(payload, self.encoding.content_type)
            else:
                # only deadline-aware bindings are asked to honour one
                self.binding.send_request(
                    payload, self.encoding.content_type, deadline=deadline
                )
            return len(payload)

    def receive_response(self, *, deadline=None) -> SoapEnvelope:
        with obs.span("soap.receive", kind="logical") as sp:
            if deadline is None:
                payload, content_type = self.binding.receive_response()
            else:
                payload, content_type = self.binding.receive_response(deadline=deadline)
            sp.set("bytes", len(payload))
            envelope = self._decode(payload, content_type)
            if self.security is not None:
                self.security.verify(envelope)
            fault_element = SoapFault.find_in(envelope.body_children)
            if fault_element is not None:
                raise SoapFault.from_element(fault_element)
            return envelope

    # ------------------------------------------------------------------
    # server-side MEPs

    def receive(self) -> tuple[SoapEnvelope, str]:
        """Receive one request; returns (envelope, wire content type)."""
        payload, content_type = self.binding.receive_request()
        with obs.span("soap.receive_request", kind="logical", bytes=len(payload)):
            envelope = self._decode(payload, content_type)
            if self.security is not None:
                self.security.verify(envelope)
            return envelope, content_type

    def reply(self, envelope: SoapEnvelope, content_type: str | None = None) -> int:
        """Send a response, re-encoding to ``content_type`` when given.

        Passing the request's content type makes the server answer in the
        encoding the client spoke, whatever this engine's default is.
        """
        encoding = self.encoding
        if content_type is not None and self.strict_content_type:
            if content_type.split(";")[0].strip() != encoding.content_type:
                encoding = self._negotiated_policy(content_type)
        with obs.span("soap.reply", kind="logical") as sp:
            if self.security is not None:
                self.security.sign(envelope)
            payload = encoding.encode(envelope.to_document())
            sp.set("bytes", len(payload))
            self.binding.send_response(payload, encoding.content_type)
            return len(payload)

    def reply_fault(self, fault: SoapFault, content_type: str | None = None) -> int:
        """Send a fault envelope."""
        return self.reply(SoapEnvelope.wrap(fault.to_element()), content_type)

    # ------------------------------------------------------------------

    def _negotiated_policy(self, content_type: str) -> EncodingPolicy:
        """A held policy for a foreign content type (created on first use)."""
        base = content_type.split(";")[0].strip().lower()
        policy = self._negotiated.get(base)
        if policy is None:
            policy = encoding_for_content_type(content_type)
            self._negotiated[base] = policy
        return policy

    def _decode(self, payload: bytes, content_type: str) -> SoapEnvelope:
        encoding = self.encoding
        if self.strict_content_type:
            base = content_type.split(";")[0].strip()
            if base != encoding.content_type:
                try:
                    encoding = self._negotiated_policy(content_type)
                except ValueError as exc:
                    raise SoapFault("soap:Client", str(exc)) from exc
        try:
            document = encoding.decode(payload)
        except SoapFault:
            raise
        except Exception as exc:
            # any codec error (malformed XML, corrupt BXSA frames, bad
            # deflate, ...) is the sender's problem, not a server crash
            raise SoapFault(
                "soap:Client", f"cannot decode {encoding.content_type} payload: {exc}"
            ) from exc
        try:
            return SoapEnvelope.from_document(document)
        except ValueError as exc:
            raise SoapFault("soap:Client", f"invalid SOAP envelope: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SoapEngine({self.encoding!r}, {type(self.binding).__name__})"
