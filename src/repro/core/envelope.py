"""The SOAP envelope, modelled directly in bXDM.

§5.1: "In the generic SOAP engine, the SOAP message is modeled in the bXDM
model instead of the XML Infoset."  A :class:`SoapEnvelope` is a thin,
typed facade over a bXDM document of the canonical shape::

    Envelope                 (SOAP 1.1 envelope namespace)
      [Header]
        ...header blocks...
      Body
        ...body children (or a Fault)...

Because the payload slots hold arbitrary bXDM nodes — including
ArrayElements — scientific data rides inside the message itself with zero
special treatment, which is the unified scheme the paper evaluates.
"""

from __future__ import annotations

from typing import Iterable

from repro.xdm.nodes import DocumentNode, ElementNode, Node
from repro.xdm.qname import QName

#: SOAP 1.1 envelope namespace (the paper targets SOAP 1.1 over HTTP).
SOAP_ENV_URI = "http://schemas.xmlsoap.org/soap/envelope/"

_ENVELOPE = QName("Envelope", SOAP_ENV_URI, "soap")
_HEADER = QName("Header", SOAP_ENV_URI, "soap")
_BODY = QName("Body", SOAP_ENV_URI, "soap")


class SoapEnvelope:
    """A SOAP message: optional header blocks plus body children."""

    __slots__ = ("header_blocks", "body_children")

    def __init__(
        self,
        body_children: Iterable[Node] = (),
        header_blocks: Iterable[Node] = (),
    ) -> None:
        self.body_children: list[Node] = list(body_children)
        self.header_blocks: list[Node] = list(header_blocks)

    # ------------------------------------------------------------------
    # construction helpers

    @classmethod
    def wrap(cls, *body_children: Node) -> "SoapEnvelope":
        """Envelope around the given body payload nodes."""
        return cls(body_children)

    def add_header(self, block: Node) -> "SoapEnvelope":
        self.header_blocks.append(block)
        return self

    @property
    def body_root(self) -> ElementNode:
        """The first body element — the operation element in RPC style."""
        for child in self.body_children:
            if isinstance(child, ElementNode):
                return child
        raise ValueError("envelope body has no element children")

    def header(self, local_name: str) -> ElementNode | None:
        """First header block with the given local name, if any."""
        for block in self.header_blocks:
            if isinstance(block, ElementNode) and block.name.local == local_name:
                return block
        return None

    # ------------------------------------------------------------------
    # bXDM mapping

    def to_document(self) -> DocumentNode:
        """Render the canonical bXDM document for this envelope."""
        envelope = ElementNode(_ENVELOPE, namespaces=[])
        envelope.declare_namespace("soap", SOAP_ENV_URI)
        if self.header_blocks:
            header = ElementNode(_HEADER, children=self.header_blocks)
            envelope.children.append(header)
        body = ElementNode(_BODY, children=self.body_children)
        envelope.children.append(body)
        return DocumentNode([envelope])

    @classmethod
    def from_document(cls, document: DocumentNode) -> "SoapEnvelope":
        """Parse and validate the canonical envelope shape.

        Raises :class:`ValueError` for documents that are not SOAP
        envelopes (wrong root, missing Body, misplaced Header).
        """
        root = document.root
        if root.name != _ENVELOPE:
            raise ValueError(
                f"root element is {root.name.clark()}, expected {_ENVELOPE.clark()}"
            )
        header: ElementNode | None = None
        body: ElementNode | None = None
        for child in root.elements():
            if child.name == _HEADER:
                if header is not None or body is not None:
                    raise ValueError("misplaced or repeated SOAP Header")
                header = child
            elif child.name == _BODY:
                if body is not None:
                    raise ValueError("repeated SOAP Body")
                body = child
            else:
                raise ValueError(f"unexpected envelope child {child.name.clark()}")
        if body is None:
            raise ValueError("envelope has no SOAP Body")
        return cls(
            body_children=list(body.children),
            header_blocks=list(header.children) if header is not None else [],
        )

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = [
            c.name.local if isinstance(c, ElementNode) else type(c).__name__
            for c in self.body_children
        ]
        return f"<SoapEnvelope body={names}>"
