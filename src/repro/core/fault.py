"""SOAP faults: the protocol's error channel.

A :class:`SoapFault` is both a Python exception and a body payload: servers
raise it (or the dispatcher wraps unexpected exceptions into one), the
engine serializes it as the standard ``soap:Fault`` element, and the client
engine re-raises it after decoding — so a fault crosses the wire in either
encoding and surfaces as the same exception type on the far side.
"""

from __future__ import annotations

from repro.core.envelope import SOAP_ENV_URI
from repro.xdm.nodes import ElementNode, LeafElement, TextNode
from repro.xdm.qname import QName

_FAULT = QName("Fault", SOAP_ENV_URI, "soap")

#: The two fault code families SOAP 1.1 defines that this stack uses.
CLIENT_FAULT = "soap:Client"
SERVER_FAULT = "soap:Server"


class SoapFault(Exception):
    """A SOAP 1.1 fault (faultcode + faultstring [+ detail text])."""

    def __init__(self, code: str, string: str, detail: str = "") -> None:
        super().__init__(f"{code}: {string}")
        self.code = code
        self.string = string
        self.detail = detail

    # ------------------------------------------------------------------

    def to_element(self) -> ElementNode:
        """Render as the standard ``soap:Fault`` body element."""
        fault = ElementNode(_FAULT)
        fault.children.append(LeafElement("faultcode", self.code, "string"))
        fault.children.append(LeafElement("faultstring", self.string, "string"))
        if self.detail:
            detail = ElementNode("detail", children=[TextNode(self.detail)])
            fault.children.append(detail)
        return fault

    @classmethod
    def from_element(cls, element: ElementNode) -> "SoapFault":
        """Rebuild from a decoded ``soap:Fault`` element."""
        code = string = detail = ""
        for child in element.elements():
            if child.name.local == "faultcode":
                code = child.text_content()
            elif child.name.local == "faultstring":
                string = child.text_content()
            elif child.name.local == "detail":
                detail = child.text_content()
        return cls(code or SERVER_FAULT, string or "unspecified fault", detail)

    @staticmethod
    def find_in(body_children) -> ElementNode | None:
        """The ``soap:Fault`` element among body children, if present."""
        for child in body_children:
            if isinstance(child, ElementNode) and child.name == _FAULT:
                return child
        return None
