"""SOAP intermediary nodes: hop-by-hop rebinding and transcoding.

§5.1: "the intermediary node can just simply deploy multiple generic SOAP
engines with different policy configurations to serve the up-link and
down-link message flows.  Furthermore, transcodability enables BXSA to be
the intermediate protocol over the message hops, even when the message
sender and receiver are communicating via textual XML."

:class:`TcpIntermediary` is that node: it accepts requests on one
encoding/binding pair and forwards them to the next hop on another,
re-encoding the *same* bXDM envelope in between — e.g. clients speak XML to
the intermediary while the backbone hop runs BXSA.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro import obs
from repro.core.engine import SoapEngine
from repro.core.fault import SoapFault
from repro.core.policies import EncodingPolicy
from repro.obs import propagation
from repro.transport.base import Channel, Listener, TransportError
from repro.transport.tcp_binding import TcpClientBinding, TcpServerBinding


class TcpIntermediary:
    """A SOAP hop: TCP in on one encoding, TCP out on another.

    Each inbound connection gets its own outbound connection to the next
    hop, so request/response ordering per client is trivially preserved.
    """

    def __init__(
        self,
        listener: Listener,
        connect_next_hop: Callable[[], Channel],
        *,
        inbound_encoding: EncodingPolicy,
        outbound_encoding: EncodingPolicy,
        name: str = "soap-intermediary",
    ) -> None:
        self._listener = listener
        self._connect = connect_next_hop
        self._inbound_encoding = inbound_encoding
        self._outbound_encoding = outbound_encoding
        self._name = name
        self._running = False
        self._thread: threading.Thread | None = None
        #: Number of envelopes forwarded (inspectable by tests/examples).
        self.forwarded = 0

    def start(self) -> "TcpIntermediary":
        self._running = True
        self._thread = threading.Thread(target=self._accept_loop, name=self._name, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        self._listener.close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "TcpIntermediary":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                inbound = self._listener.accept()
            except TransportError:
                return
            threading.Thread(
                target=self._bridge,
                args=(inbound,),
                name=f"{self._name}-hop",
                daemon=True,
            ).start()

    def _bridge(self, inbound_channel) -> None:
        up = SoapEngine(self._inbound_encoding, TcpServerBinding(inbound_channel))
        outbound_channel = None
        try:
            outbound_channel = self._connect()
            down = SoapEngine(self._outbound_encoding, TcpClientBinding(outbound_channel))
            while True:
                try:
                    request, content_type = up.receive()
                except TransportError:
                    return
                except SoapFault as fault:
                    up.reply_fault(fault)
                    continue
                # Forward on the downstream encoding; relay the response
                # (or the downstream fault) back on the upstream one.
                # The hop joins the caller's trace (its span parents the
                # next hop's work: down.call re-stamps the envelope's
                # context block with this span as the new parent).
                ctx = propagation.extract_envelope(request)
                with obs.span(
                    "soap.forward", kind="logical", context=ctx
                ), obs.use_context(ctx):
                    try:
                        response = down.call(request)
                    except SoapFault as fault:
                        up.reply_fault(fault, content_type)
                        continue
                    self.forwarded += 1
                    up.reply(response, content_type)
        finally:
            inbound_channel.close()
            if outbound_channel is not None:
                outbound_channel.close()
