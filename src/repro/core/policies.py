"""Encoding policies: the pluggable serialization leg of the engine.

§5.2: an encoding policy is "an object that is able to serialize and
deserialize the bXDM model" — a Visitor for the encode direction and a
factory for the decode direction.  Both shipped models delegate to the
corresponding codec package; the engine only ever sees the three valid
expressions (``content_type``, ``encode``, ``decode``).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro import obs
from repro.bxsa.decoder import decode as bxsa_decode
from repro.bxsa.encoder import BXSAEncoder
from repro.bxsa.session import CodecSession
from repro.xbs.constants import NATIVE_ENDIAN
from repro.xdm.nodes import DocumentNode
from repro.xmlcodec.parser import parse_document
from repro.xmlcodec.serializer import XMLSerializer

#: Content types tagging each encoding on either binding.
XML_CONTENT_TYPE = "text/xml"
BXSA_CONTENT_TYPE = "application/bxsa"


@runtime_checkable
class EncodingPolicy(Protocol):
    """The encoding policy concept (its "valid expressions")."""

    @property
    def content_type(self) -> str: ...

    def encode(self, document: DocumentNode) -> bytes: ...

    def decode(self, payload: bytes) -> DocumentNode: ...


class XMLEncoding:
    """Textual XML 1.0 encoding — the SOAP default wire format.

    ``emit_types=True`` (default) writes xsi:type annotations so typed bXDM
    payloads survive; this is what the SOAP encoding rules require when no
    schema is shared (§4.2 of the paper).
    """

    content_type = XML_CONTENT_TYPE

    def __init__(self, *, emit_types: bool = True) -> None:
        self.emit_types = emit_types
        self._serializer: XMLSerializer | None = None

    def _get_serializer(self) -> XMLSerializer:
        # lazy create + hold: policies are constructed on negotiation paths
        # where the codec may never be used for this direction
        serializer = self._serializer
        if serializer is None:
            serializer = self._serializer = XMLSerializer(emit_types=self.emit_types)
        return serializer

    def encode(self, document: DocumentNode) -> bytes:
        # hot path: guard on the recorder so the disabled cost is one
        # attribute check, not a context-manager round trip
        serializer = self._get_serializer()
        recorder = obs.get_recorder()
        if not recorder.enabled:
            return serializer.run_bytes(document)
        with recorder.span("xml.encode") as sp:
            payload = serializer.run_bytes(document)
            sp.set("bytes", len(payload))
            return payload

    def decode(self, payload: bytes) -> DocumentNode:
        recorder = obs.get_recorder()
        if not recorder.enabled:
            return parse_document(payload, typed=True)
        with recorder.span("xml.decode", bytes=len(payload)):
            return parse_document(payload, typed=True)

    def __repr__(self) -> str:
        return f"XMLEncoding(emit_types={self.emit_types})"


class BXSAEncoding:
    """BXSA binary XML encoding.

    ``copy=False`` (default) decodes array payloads as zero-copy views over
    the received buffer — the receive path stays allocation-free for bulk
    data, which is where the unified scheme's large-message throughput
    comes from.

    ``session=True`` (default) backs the policy with a long-lived
    :class:`~repro.bxsa.session.CodecSession`: repeated same-shape messages
    hit compiled encode plans on the send side and compiled decode plans
    plus interned name tables on the receive side.  The wire bytes and the
    decoded trees are identical either way (the session self-verifies both
    directions and poisons divergent shapes; see its module docstring) —
    ``session=False`` exists for *measurement*, so the benchmark harness
    can keep timing the cold per-message codec cost that Figures 4-6
    report rather than warm-plan replay.  The ``copy=False`` aliasing
    contract is unchanged under plan replay: array payloads are the same
    zero-copy views over the received buffer.
    """

    content_type = BXSA_CONTENT_TYPE

    def __init__(
        self,
        byte_order: int = NATIVE_ENDIAN,
        *,
        copy: bool = False,
        session: bool = True,
    ) -> None:
        self.byte_order = byte_order
        self.copy = copy
        self.session = session
        # lazy create + hold (previously an encoder was built eagerly even
        # on negotiation paths that only ever decode)
        self._session: CodecSession | None = None
        self._encoder: BXSAEncoder | None = None

    def _get_session(self) -> CodecSession:
        codec = self._session
        if codec is None:
            codec = self._session = CodecSession(self.byte_order)
        return codec

    def _get_encoder(self) -> BXSAEncoder:
        encoder = self._encoder
        if encoder is None:
            encoder = self._encoder = BXSAEncoder(self.byte_order)
        return encoder

    @property
    def codec_session(self) -> CodecSession | None:
        """The live session (``None`` in cold mode or before first use)."""
        return self._session if self.session else None

    def encode(self, document: DocumentNode) -> bytes:
        # hot path: guard on the recorder so the disabled cost is one
        # attribute check, not a context-manager round trip
        codec = self._get_session() if self.session else self._get_encoder()
        recorder = obs.get_recorder()
        if not recorder.enabled:
            return codec.encode(document)
        with recorder.span("bxsa.encode") as sp:
            payload = codec.encode(document)
            sp.set("bytes", len(payload))
            return payload

    def _decode_node(self, payload: bytes):
        if self.session:
            return self._get_session().decode(payload, copy=self.copy)
        return bxsa_decode(payload, copy=self.copy)

    def decode(self, payload: bytes) -> DocumentNode:
        recorder = obs.get_recorder()
        if not recorder.enabled:
            node = self._decode_node(payload)
        else:
            with recorder.span("bxsa.decode", bytes=len(payload)):
                node = self._decode_node(payload)
        if not isinstance(node, DocumentNode):
            node = DocumentNode([node])
        return node

    def __repr__(self) -> str:
        return f"BXSAEncoding(byte_order={self.byte_order}, session={self.session})"


#: Extensible content-type → policy-factory registry.  The two shipped
#: encodings are pre-registered; user policies (compression wrappers,
#: custom formats) add themselves via :func:`register_content_type`.
_REGISTRY: dict[str, "object"] = {}


def register_content_type(content_type: str, factory) -> None:
    """Register a policy factory for server-side content negotiation.

    ``factory`` is a zero-argument callable returning a fresh policy whose
    ``content_type`` matches.  Re-registration replaces (tests and
    reconfiguration need that).
    """
    _REGISTRY[content_type.strip().lower()] = factory


register_content_type(XML_CONTENT_TYPE, XMLEncoding)
register_content_type("application/soap+xml", XMLEncoding)
register_content_type("application/xml", XMLEncoding)
register_content_type(BXSA_CONTENT_TYPE, BXSAEncoding)


def encoding_for_content_type(content_type: str) -> EncodingPolicy:
    """Instantiate the registered policy matching a wire content type.

    Servers use this to decode whatever a client sent and to reply in
    kind — the generic engine's server side is encoding-agnostic.
    """
    base = content_type.split(";")[0].strip().lower()
    factory = _REGISTRY.get(base)
    if factory is None:
        raise ValueError(f"no encoding policy for content type {content_type!r}")
    return factory()
