"""A security policy for the generic engine — §5's extensibility claim.

"It will be straightforward to introduce more policies (e.g., a security
policy) into the generic engine by just adding more template parameters."
This module is that policy, Python-style: an optional third argument to
:class:`~repro.core.engine.SoapEngine` satisfying the three valid
expressions ``header_name`` / ``sign(envelope)`` / ``verify(envelope)``.

:class:`HmacSigningPolicy` signs the *data model*, not the wire bytes: the
MAC is computed over the canonical signature of the body children
(:func:`repro.xdm.compare.canonical_signature`), so a signed message stays
verifiable after re-encoding — XML ↔ BXSA transcoding at an intermediary
does not break it, exactly the property the paper's architecture needs
(WS-Security sits *above* the encoding layer in Figure 3).  The signature
travels in a ``sec:Signature`` header block.

This is deliberately symmetric-key (one shared service secret), standing in
for WS-Security's XML-Signature machinery the way the GridFTP substrate's
handshake stands in for GSI.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import pickle
from typing import Protocol, runtime_checkable

from repro.core.envelope import SoapEnvelope
from repro.core.fault import SoapFault
from repro.xdm.compare import canonical_signature
from repro.xdm.nodes import ElementNode, LeafElement
from repro.xdm.qname import QName

#: Namespace of this project's security header.
SEC_URI = "urn:repro:security"

SIGNATURE_HEADER = QName("Signature", SEC_URI, "sec")

#: Fault code used for signature failures.
SECURITY_FAULT = "sec:InvalidSignature"


@runtime_checkable
class SecurityPolicy(Protocol):
    """The security policy concept (its valid expressions)."""

    def sign(self, envelope: SoapEnvelope) -> None: ...

    def verify(self, envelope: SoapEnvelope) -> None: ...


class NullSecurity:
    """The no-security model (the engine's default behaviour, reified)."""

    def sign(self, envelope: SoapEnvelope) -> None:  # noqa: D102 - concept
        return None

    def verify(self, envelope: SoapEnvelope) -> None:  # noqa: D102 - concept
        return None


class SecretKey:
    """A shared MAC key."""

    __slots__ = ("_key", "key_id")

    def __init__(self, key: bytes, key_id: str = "k1") -> None:
        if len(key) < 16:
            raise ValueError("keys shorter than 16 bytes are not acceptable")
        self._key = bytes(key)
        self.key_id = key_id

    @classmethod
    def generate(cls, key_id: str = "k1") -> "SecretKey":
        return cls(os.urandom(32), key_id)

    def mac(self, payload: bytes) -> bytes:
        return hmac.new(self._key, payload, hashlib.sha256).digest()


def _body_digest_input(envelope: SoapEnvelope) -> bytes:
    """Encoding-independent byte form of the body children.

    ``canonical_signature`` normalizes attribute order, namespace prefixes
    and NaN bit patterns; pickling the resulting nested tuples gives a
    stable byte string.  (pickle here serializes only our own canonical
    tuples of str/bytes/int/float — it is never *loaded*.)
    """
    sig = tuple(
        canonical_signature(child, include_ns_decls=False)
        for child in envelope.body_children
    )
    return pickle.dumps(sig, protocol=4)


class HmacSigningPolicy:
    """Signs outgoing envelopes, verifies incoming ones.

    Parameters
    ----------
    key:
        The shared :class:`SecretKey`.
    require_signature:
        When True (default) an incoming envelope without a signature header
        is rejected; set False for migration scenarios where unsigned
        traffic is still tolerated (but bad signatures always reject).
    """

    def __init__(self, key: SecretKey, *, require_signature: bool = True) -> None:
        self.key = key
        self.require_signature = require_signature

    # ------------------------------------------------------------------

    def sign(self, envelope: SoapEnvelope) -> None:
        """Attach (or replace) the signature header."""
        envelope.header_blocks = [
            block
            for block in envelope.header_blocks
            if not (isinstance(block, ElementNode) and block.name == SIGNATURE_HEADER)
        ]
        mac = self.key.mac(_body_digest_input(envelope))
        header = ElementNode(SIGNATURE_HEADER)
        header.declare_namespace("sec", SEC_URI)
        header.children.append(LeafElement("keyId", self.key.key_id, "string"))
        header.children.append(LeafElement("algorithm", "hmac-sha256", "string"))
        header.children.append(LeafElement("value", mac.hex(), "string"))
        envelope.header_blocks.append(header)

    def verify(self, envelope: SoapEnvelope) -> None:
        """Raise :class:`SoapFault` unless the body matches its signature."""
        header = envelope.header(SIGNATURE_HEADER.local)
        if header is None or header.name != SIGNATURE_HEADER:
            if self.require_signature:
                raise SoapFault(SECURITY_FAULT, "message is not signed")
            return
        fields = {
            child.name.local: str(child.value)
            for child in header.elements()
            if isinstance(child, LeafElement)
        }
        if fields.get("algorithm") != "hmac-sha256":
            raise SoapFault(
                SECURITY_FAULT, f"unsupported algorithm {fields.get('algorithm')!r}"
            )
        if fields.get("keyId") != self.key.key_id:
            raise SoapFault(SECURITY_FAULT, f"unknown key id {fields.get('keyId')!r}")
        try:
            claimed = bytes.fromhex(fields.get("value", ""))
        except ValueError:
            raise SoapFault(SECURITY_FAULT, "malformed signature value") from None
        expected = self.key.mac(_body_digest_input(envelope))
        if not hmac.compare_digest(claimed, expected):
            raise SoapFault(SECURITY_FAULT, "body does not match its signature")


def check_security_policy(policy) -> None:
    """Concept check for the security policy's valid expressions."""
    from repro.core.concepts import _require

    _require(policy, "sign", "SecurityPolicy")
    _require(policy, "verify", "SecurityPolicy")
