"""A security policy for the generic engine — §5's extensibility claim.

"It will be straightforward to introduce more policies (e.g., a security
policy) into the generic engine by just adding more template parameters."
This module is that policy, Python-style: an optional third argument to
:class:`~repro.core.engine.SoapEngine` satisfying the three valid
expressions ``header_name`` / ``sign(envelope)`` / ``verify(envelope)``.

:class:`HmacSigningPolicy` signs the *data model*, not the wire bytes: the
MAC is computed over the canonical signature of the body children
(:func:`repro.xdm.compare.canonical_signature`), so a signed message stays
verifiable after re-encoding — XML ↔ BXSA transcoding at an intermediary
does not break it, exactly the property the paper's architecture needs
(WS-Security sits *above* the encoding layer in Figure 3).  The signature
travels in a ``sec:Signature`` header block.

This is deliberately symmetric-key (one shared service secret), standing in
for WS-Security's XML-Signature machinery the way the GridFTP substrate's
handshake stands in for GSI.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import pickle
import struct
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.core.envelope import SoapEnvelope
from repro.core.fault import SoapFault
from repro.xbs.errors import XBSDecodeError
from repro.xbs.varint import encode_vls
from repro.xdm.compare import canonical_signature
from repro.xdm.nodes import ElementNode, LeafElement
from repro.xdm.qname import QName

#: Namespace of this project's security header.
SEC_URI = "urn:repro:security"

SIGNATURE_HEADER = QName("Signature", SEC_URI, "sec")

#: Fault code used for signature failures.
SECURITY_FAULT = "sec:InvalidSignature"


@runtime_checkable
class SecurityPolicy(Protocol):
    """The security policy concept (its valid expressions)."""

    def sign(self, envelope: SoapEnvelope) -> None: ...

    def verify(self, envelope: SoapEnvelope) -> None: ...


class NullSecurity:
    """The no-security model (the engine's default behaviour, reified)."""

    def sign(self, envelope: SoapEnvelope) -> None:  # noqa: D102 - concept
        return None

    def verify(self, envelope: SoapEnvelope) -> None:  # noqa: D102 - concept
        return None


class SecretKey:
    """A shared MAC key."""

    __slots__ = ("_key", "key_id")

    def __init__(self, key: bytes, key_id: str = "k1") -> None:
        if len(key) < 16:
            raise ValueError("keys shorter than 16 bytes are not acceptable")
        self._key = bytes(key)
        self.key_id = key_id

    @classmethod
    def generate(cls, key_id: str = "k1") -> "SecretKey":
        return cls(os.urandom(32), key_id)

    def mac(self, payload: bytes) -> bytes:
        return hmac.new(self._key, payload, hashlib.sha256).digest()


def _body_digest_input(envelope: SoapEnvelope) -> bytes:
    """Encoding-independent byte form of the body children.

    ``canonical_signature`` normalizes attribute order, namespace prefixes
    and NaN bit patterns; pickling the resulting nested tuples gives a
    stable byte string.  (pickle here serializes only our own canonical
    tuples of str/bytes/int/float — it is never *loaded*.)
    """
    sig = tuple(
        canonical_signature(child, include_ns_decls=False)
        for child in envelope.body_children
    )
    return pickle.dumps(sig, protocol=4)


class HmacSigningPolicy:
    """Signs outgoing envelopes, verifies incoming ones.

    Parameters
    ----------
    key:
        The shared :class:`SecretKey`.
    require_signature:
        When True (default) an incoming envelope without a signature header
        is rejected; set False for migration scenarios where unsigned
        traffic is still tolerated (but bad signatures always reject).
    """

    def __init__(self, key: SecretKey, *, require_signature: bool = True) -> None:
        self.key = key
        self.require_signature = require_signature

    # ------------------------------------------------------------------

    def sign(self, envelope: SoapEnvelope) -> None:
        """Attach (or replace) the signature header."""
        envelope.header_blocks = [
            block
            for block in envelope.header_blocks
            if not (isinstance(block, ElementNode) and block.name == SIGNATURE_HEADER)
        ]
        mac = self.key.mac(_body_digest_input(envelope))
        header = ElementNode(SIGNATURE_HEADER)
        header.declare_namespace("sec", SEC_URI)
        header.children.append(LeafElement("keyId", self.key.key_id, "string"))
        header.children.append(LeafElement("algorithm", "hmac-sha256", "string"))
        header.children.append(LeafElement("value", mac.hex(), "string"))
        envelope.header_blocks.append(header)

    def verify(self, envelope: SoapEnvelope) -> None:
        """Raise :class:`SoapFault` unless the body matches its signature."""
        header = envelope.header(SIGNATURE_HEADER.local)
        if header is None or header.name != SIGNATURE_HEADER:
            if self.require_signature:
                raise SoapFault(SECURITY_FAULT, "message is not signed")
            return
        fields = {
            child.name.local: str(child.value)
            for child in header.elements()
            if isinstance(child, LeafElement)
        }
        if fields.get("algorithm") != "hmac-sha256":
            raise SoapFault(
                SECURITY_FAULT, f"unsupported algorithm {fields.get('algorithm')!r}"
            )
        if fields.get("keyId") != self.key.key_id:
            raise SoapFault(SECURITY_FAULT, f"unknown key id {fields.get('keyId')!r}")
        try:
            claimed = bytes.fromhex(fields.get("value", ""))
        except ValueError:
            raise SoapFault(SECURITY_FAULT, "malformed signature value") from None
        expected = self.key.mac(_body_digest_input(envelope))
        if not hmac.compare_digest(claimed, expected):
            raise SoapFault(SECURITY_FAULT, "body does not match its signature")


def check_security_policy(policy) -> None:
    """Concept check for the security policy's valid expressions."""
    from repro.core.concepts import _require

    _require(policy, "sign", "SecurityPolicy")
    _require(policy, "verify", "SecurityPolicy")


# ----------------------------------------------------------------------
# non-blocking chunk signatures for streamed messages
#
# HmacSigningPolicy above needs the whole data model in hand before it can
# MAC anything — exactly what the streaming pipeline cannot afford.  This
# layer follows Kohring & Lo Iacono's non-blocking signature idea instead:
# sign the message *as it flows*, a MAC per chunk, so the receiver
# verifies (and may process) each chunk on arrival and neither side ever
# holds the message.  Wire format, riding inside any byte stream (for this
# project: a chunked HTTP body carrying a streamed BXSA document)::
#
#     signed stream := *signed-chunk  trailer
#     signed-chunk  := VLS(len > 0)  payload[len]  mac[32]
#     trailer       := VLS(0)  final-mac[32]
#
#     mac_i     = HMAC-SHA256(key, "repro:chunk" ‖ u64be(i) ‖ payload)
#     final-mac = HMAC-SHA256(key, "repro:final" ‖ u64be(n) ‖ chain)
#     chain     = SHA-256(mac_0 ‖ mac_1 ‖ … ‖ mac_{n-1})
#
# The sequence number inside each per-chunk MAC pins position (no
# reordering or replay within the stream); the trailer MAC over the chain
# digest pins the chunk *set* and count (no truncation, no splicing of
# individually-valid chunks) — a stream without its trailer never
# verifies.  Chunk payloads are bounded (MAX_SIGNED_CHUNK) so a verifier's
# buffering stays O(chunk), never O(message).


#: HMAC-SHA256 output size — every MAC on the wire.
MAC_SIZE = 32

#: Ceiling on one signed chunk's payload; keeps verifier buffering bounded
#: and rejects absurd length prefixes before allocating for them.
MAX_SIGNED_CHUNK = 16 * 1024 * 1024

_CHUNK_TAG = b"repro:chunk"
_FINAL_TAG = b"repro:final"


class ChunkSignatureError(Exception):
    """A signed stream failed verification (tampered, reordered,
    truncated, or malformed framing)."""


class ChunkSigner:
    """Wrap a flow of byte pieces into the signed-chunk format.

    One-shot, stateful: :meth:`wrap` each payload in order, then
    :meth:`trailer` exactly once.  :func:`sign_stream` is the generator
    form that composes directly with a streamed HTTP body.
    """

    def __init__(self, key: SecretKey) -> None:
        self.key = key
        self._seq = 0
        self._chain = hashlib.sha256()
        self._finished = False

    def wrap(self, payload: bytes | bytearray | memoryview) -> bytes:
        """One signed chunk for ``payload`` (empty payloads not allowed —
        a zero length is the trailer marker)."""
        if self._finished:
            raise ChunkSignatureError("signer already emitted its trailer")
        payload = bytes(payload)
        if not payload:
            raise ChunkSignatureError("cannot sign an empty chunk")
        if len(payload) > MAX_SIGNED_CHUNK:
            raise ChunkSignatureError(
                f"chunk of {len(payload)} bytes exceeds MAX_SIGNED_CHUNK"
            )
        mac = self.key.mac(_CHUNK_TAG + struct.pack(">Q", self._seq) + payload)
        self._seq += 1
        self._chain.update(mac)
        return encode_vls(len(payload)) + payload + mac

    def trailer(self) -> bytes:
        """The terminal zero-length marker + MAC over the whole chain."""
        if self._finished:
            raise ChunkSignatureError("signer already emitted its trailer")
        self._finished = True
        final = self.key.mac(
            _FINAL_TAG + struct.pack(">Q", self._seq) + self._chain.digest()
        )
        return encode_vls(0) + final


class ChunkVerifier:
    """Incrementally verify a signed stream, yielding payloads as they
    prove authentic.

    Push parser: :meth:`feed` returns the payloads completed by the bytes
    so far (each already MAC-checked — a consumer may act on them
    immediately, the non-blocking property).  After the trailer verifies,
    :attr:`done` is set; any byte past it, a bad MAC, or :meth:`close`
    before the trailer raises :class:`ChunkSignatureError`.
    """

    def __init__(self, key: SecretKey) -> None:
        self.key = key
        self._buf = bytearray()
        self._seq = 0
        self._chain = hashlib.sha256()
        self._need: int | None = None  # payload length once the VLS parsed
        self.done = False

    def feed(self, data: bytes | bytearray | memoryview) -> list[bytes]:
        if self.done:
            if len(data):
                raise ChunkSignatureError("data past the signature trailer")
            return []
        buf = self._buf
        buf += data
        out: list[bytes] = []
        while True:
            if self._need is None:
                length = self._try_vls(buf)
                if length is None:
                    break
                if length > MAX_SIGNED_CHUNK:
                    raise ChunkSignatureError(
                        f"declared chunk length {length} exceeds MAX_SIGNED_CHUNK"
                    )
                self._need = length
            if self._need == 0:
                if len(buf) < MAC_SIZE:
                    break
                final = bytes(buf[:MAC_SIZE])
                del buf[:MAC_SIZE]
                expected = self.key.mac(
                    _FINAL_TAG + struct.pack(">Q", self._seq) + self._chain.digest()
                )
                if not hmac.compare_digest(final, expected):
                    raise ChunkSignatureError(
                        "trailer signature does not match the chunk chain"
                    )
                self.done = True
                if buf:
                    raise ChunkSignatureError("data past the signature trailer")
                break
            total = self._need + MAC_SIZE
            if len(buf) < total:
                break
            payload = bytes(buf[: self._need])
            mac = bytes(buf[self._need : total])
            del buf[:total]
            self._need = None
            expected = self.key.mac(
                _CHUNK_TAG + struct.pack(">Q", self._seq) + payload
            )
            if not hmac.compare_digest(mac, expected):
                raise ChunkSignatureError(
                    f"chunk {self._seq} failed its signature check"
                )
            self._seq += 1
            self._chain.update(mac)
            out.append(payload)
        return out

    def _try_vls(self, buf: bytearray) -> int | None:
        """Parse the length prefix if it is complete; consume it."""
        from repro.xbs.varint import decode_vls

        for i, byte in enumerate(buf):
            if i >= 10:
                raise ChunkSignatureError("malformed chunk length prefix")
            if not byte & 0x80:
                try:
                    value, end = decode_vls(bytes(buf[: i + 1]))
                except XBSDecodeError as exc:
                    raise ChunkSignatureError(
                        f"malformed chunk length prefix: {exc}"
                    ) from None
                del buf[:end]
                return value
        return None

    def close(self) -> None:
        """Assert the stream ended exactly at its trailer."""
        if not self.done:
            raise ChunkSignatureError(
                "signed stream ended before its trailer — truncated or unterminated"
            )


def sign_stream(
    pieces: Iterable[bytes], key: SecretKey
) -> Iterator[bytes]:
    """Generator form of :class:`ChunkSigner`: yields wire pieces for a
    payload flow, trailer included.  Composes with a streamed HTTP body::

        response.stream = sign_stream(writer_pieces, key)
    """
    signer = ChunkSigner(key)
    for piece in pieces:
        if len(piece):
            yield signer.wrap(piece)
    yield signer.trailer()


def verify_stream(
    pieces: Iterable[bytes], key: SecretKey
) -> Iterator[bytes]:
    """Generator form of :class:`ChunkVerifier`: yields authenticated
    payloads as wire pieces arrive; raises :class:`ChunkSignatureError`
    on tampering or if the flow ends before the trailer."""
    verifier = ChunkVerifier(key)
    for piece in pieces:
        for payload in verifier.feed(piece):
            yield payload
    verifier.close()
