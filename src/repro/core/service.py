"""Service hosts: run a dispatcher behind a TCP or HTTP binding.

Both hosts are content-type negotiating: a single host serves XML and BXSA
clients simultaneously, answering each in the encoding it spoke — the
"generic" server the paper's §5.1 architecture diagram implies.

Both hosts RED-count every SOAP exchange into their
:class:`~repro.obs.MetricsRegistry` (``.metrics``) as
``soap_requests_total{operation,encoding,binding,status}`` plus a
``soap_request_seconds`` latency histogram.  The HTTP host shares its
registry with the underlying :class:`HttpServer`, so ``GET /metrics`` on
the same port scrapes SOAP and HTTP series together; the TCP host's
registry can be exposed on a sidecar via
:func:`repro.transport.http.server.make_admin_server`.

Operation labels are guarded: only operations the dispatcher actually
registers get their own series — anything else (typos, probes) lands in
the shared ``"?"`` series, so clients cannot explode label cardinality.
"""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.core.dispatcher import Dispatcher
from repro.core.engine import SoapEngine
from repro.core.envelope import SoapEnvelope
from repro.core.fault import CLIENT_FAULT, SoapFault
from repro.core.policies import EncodingPolicy, XMLEncoding, encoding_for_content_type
from repro.obs import propagation
from repro.obs.metrics import MetricsRegistry
from repro.transport.base import Listener, TransportError
from repro.transport.http.messages import HttpRequest, HttpResponse
from repro.transport.http.server import HttpServer
from repro.transport.tcp_binding import TcpServerBinding

#: Label names of the service-level RED family (fixed at first use).
RED_LABELS = ("operation", "encoding", "binding", "status")


class _RedRecorder:
    """Per-host helper recording one SOAP exchange into the RED family."""

    def __init__(self, metrics: MetricsRegistry, dispatcher: Dispatcher, binding: str) -> None:
        self._metrics = metrics
        self._dispatcher = dispatcher
        self._binding = binding
        self._known: set[str] | None = None

    def operation_label(self, envelope) -> str:
        try:
            local = envelope.body_root.name.local
        except ValueError:
            return "?"
        if self._known is None:
            self._known = {op.rsplit("}", 1)[-1] for op in self._dispatcher.operations()}
        return local if local in self._known else "?"

    def record(self, operation: str, encoding: str, status: str, seconds: float) -> None:
        self._metrics.counter(
            "soap_requests_total",
            labels={
                "operation": operation,
                "encoding": encoding,
                "binding": self._binding,
                "status": status,
            },
        ).add()
        # the worst request's trace id rides along as an exemplar, linking
        # the metric series back to the trace that explains it
        self._metrics.histogram(
            "soap_request_seconds",
            labels={
                "operation": operation,
                "encoding": encoding,
                "binding": self._binding,
            },
        ).observe(seconds, exemplar=obs.current_trace_id())

    @staticmethod
    def status_for(fault: SoapFault) -> str:
        return "client_fault" if fault.code == CLIENT_FAULT else "server_fault"


def run_soap_http_exchange(
    request: HttpRequest,
    dispatcher: Dispatcher,
    red: _RedRecorder,
    resolve_encoding,
    security=None,
) -> tuple[HttpResponse, str, str, str]:
    """One SOAP-over-HTTP exchange → (response, operation, encoding, status).

    The core of both HTTP hosts: :class:`SoapHttpService` handles requests
    inline on the connection thread, the worker-pool runtime
    (:class:`repro.serve.SoapServeService`) runs this on a pool worker —
    same wire behaviour, different execution discipline.

    ``resolve_encoding`` maps a bare content type to the
    :class:`EncodingPolicy` that answers it (raising :class:`ValueError`
    for unsupported types); callers choose the policy's lifetime — per
    message, per service, or per worker (the warm-session reuse path).
    """
    content_type = (request.headers.get("Content-Type") or "text/xml").split(";")[0].strip()

    try:
        encoding = resolve_encoding(content_type)
    except ValueError:
        response = HttpResponse(
            400, body=f"unsupported content type {content_type}".encode()
        )
        return response, "?", "?", "unsupported_media"

    try:
        envelope = SoapEnvelope.from_document(encoding.decode(request.body))
    except Exception as exc:  # malformed payload → client fault
        fault = SoapFault("soap:Client", f"cannot parse request: {exc}")
        response = _soap_fault_response(fault, encoding, security)
        return response, "?", encoding.content_type, "client_fault"

    operation = red.operation_label(envelope)
    try:
        if security is not None:
            security.verify(envelope)
        response = dispatcher.dispatch(envelope)
    except SoapFault as fault:
        return (
            _soap_fault_response(fault, encoding, security),
            operation,
            encoding.content_type,
            red.status_for(fault),
        )

    if security is not None:
        security.sign(response)
    body = encoding.encode(response.to_document())
    resp = HttpResponse(200, body=body)
    resp.headers.set("Content-Type", encoding.content_type)
    return resp, operation, encoding.content_type, "ok"


def _soap_fault_response(
    fault: SoapFault, encoding: EncodingPolicy, security=None
) -> HttpResponse:
    envelope = SoapEnvelope.wrap(fault.to_element())
    if security is not None:
        security.sign(envelope)
    body = encoding.encode(envelope.to_document())
    # SOAP 1.1 over HTTP: faults ride a 500.
    resp = HttpResponse(500, body=body)
    resp.headers.set("Content-Type", encoding.content_type)
    return resp


class SoapTcpService:
    """SOAP over the raw TCP binding, persistent connections, threaded."""

    def __init__(
        self,
        listener: Listener,
        dispatcher: Dispatcher,
        *,
        encoding: EncodingPolicy | None = None,
        security=None,
        name: str = "soap-tcp",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._listener = listener
        self._dispatcher = dispatcher
        self._encoding = encoding if encoding is not None else XMLEncoding()
        self._security = security
        self._name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._red = _RedRecorder(self.metrics, dispatcher, "tcp")
        self._running = False
        self._thread: threading.Thread | None = None

    def start(self) -> "SoapTcpService":
        if self._running:
            raise RuntimeError("service already running")
        self._running = True
        self._thread = threading.Thread(target=self._accept_loop, name=self._name, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        self._listener.close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "SoapTcpService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                channel = self._listener.accept()
            except TransportError:
                return
            threading.Thread(
                target=self._serve_connection,
                args=(channel,),
                name=f"{self._name}-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, channel) -> None:
        engine = SoapEngine(self._encoding, TcpServerBinding(channel), self._security)
        red = self._red
        self.metrics.gauge("soap_tcp_connections_open").inc()
        try:
            while True:
                start = time.perf_counter()
                try:
                    request, content_type = engine.receive()
                except TransportError:
                    return  # client finished
                except SoapFault as fault:
                    red.record(
                        "?", "?", red.status_for(fault), time.perf_counter() - start
                    )
                    engine.reply_fault(fault)
                    continue
                encoding_label = content_type.split(";")[0].strip()
                operation = red.operation_label(request)
                # the engine has no HTTP headers: here the trace context
                # arrives as the envelope's SOAP header block
                ctx = propagation.extract_envelope(request)
                with obs.span(
                    "soap.serve", kind="logical", context=ctx, operation=operation
                ), obs.use_context(ctx):
                    try:
                        response = self._dispatcher.dispatch(request)
                    except SoapFault as fault:
                        red.record(
                            operation,
                            encoding_label,
                            red.status_for(fault),
                            time.perf_counter() - start,
                        )
                        engine.reply_fault(fault, content_type)
                        continue
                    engine.reply(response, content_type)
                    red.record(
                        operation, encoding_label, "ok", time.perf_counter() - start
                    )
        finally:
            self.metrics.gauge("soap_tcp_connections_open").dec()
            channel.close()


class SoapHttpService:
    """SOAP over the HTTP binding (POST /soap), via :class:`HttpServer`."""

    def __init__(
        self,
        listener: Listener,
        dispatcher: Dispatcher,
        *,
        encoding: EncodingPolicy | None = None,
        security=None,
        target: str = "/soap",
        name: str = "soap-http",
        metrics: MetricsRegistry | None = None,
        admin: bool = True,
    ) -> None:
        self._dispatcher = dispatcher
        self._encoding = encoding if encoding is not None else XMLEncoding()
        self._security = security
        self._target = target
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._red = _RedRecorder(self.metrics, dispatcher, "http")
        # one registry for both layers: GET /metrics on this port scrapes
        # the SOAP RED series and the HTTP server's own series together
        self._server = HttpServer(
            listener, self._handle, name=name, metrics=self.metrics, admin=admin
        )

    def start(self) -> "SoapHttpService":
        self._server.start()
        return self

    def stop(self) -> None:
        self._server.stop()

    def __enter__(self) -> "SoapHttpService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _handle(self, request: HttpRequest) -> HttpResponse:
        if request.target != self._target:
            return HttpResponse(404, body=b"no such endpoint")
        if request.method != "POST":
            return HttpResponse(405, body=b"SOAP endpoints accept POST only")
        start = time.perf_counter()
        response, operation, encoding_label, status = self._handle_soap(request)
        self._red.record(operation, encoding_label, status, time.perf_counter() - start)
        return response

    def _resolve_encoding(self, content_type: str) -> EncodingPolicy:
        if content_type == self._encoding.content_type:
            return self._encoding
        return encoding_for_content_type(content_type)

    def _handle_soap(
        self, request: HttpRequest
    ) -> tuple[HttpResponse, str, str, str]:
        """One SOAP exchange → (response, operation, encoding, status)."""
        return run_soap_http_exchange(
            request, self._dispatcher, self._red, self._resolve_encoding, self._security
        )
