"""Service hosts: run a dispatcher behind a TCP or HTTP binding.

Both hosts are content-type negotiating: a single host serves XML and BXSA
clients simultaneously, answering each in the encoding it spoke — the
"generic" server the paper's §5.1 architecture diagram implies.
"""

from __future__ import annotations

import threading

from repro.core.dispatcher import Dispatcher
from repro.core.engine import SoapEngine
from repro.core.fault import SoapFault
from repro.core.policies import EncodingPolicy, XMLEncoding
from repro.transport.base import Listener, TransportError
from repro.transport.http.messages import HttpRequest, HttpResponse
from repro.transport.http.server import HttpServer
from repro.transport.tcp_binding import TcpServerBinding


class SoapTcpService:
    """SOAP over the raw TCP binding, persistent connections, threaded."""

    def __init__(
        self,
        listener: Listener,
        dispatcher: Dispatcher,
        *,
        encoding: EncodingPolicy | None = None,
        security=None,
        name: str = "soap-tcp",
    ) -> None:
        self._listener = listener
        self._dispatcher = dispatcher
        self._encoding = encoding if encoding is not None else XMLEncoding()
        self._security = security
        self._name = name
        self._running = False
        self._thread: threading.Thread | None = None

    def start(self) -> "SoapTcpService":
        if self._running:
            raise RuntimeError("service already running")
        self._running = True
        self._thread = threading.Thread(target=self._accept_loop, name=self._name, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        self._listener.close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "SoapTcpService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                channel = self._listener.accept()
            except TransportError:
                return
            threading.Thread(
                target=self._serve_connection,
                args=(channel,),
                name=f"{self._name}-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, channel) -> None:
        engine = SoapEngine(self._encoding, TcpServerBinding(channel), self._security)
        try:
            while True:
                try:
                    request, content_type = engine.receive()
                except TransportError:
                    return  # client finished
                except SoapFault as fault:
                    engine.reply_fault(fault)
                    continue
                try:
                    response = self._dispatcher.dispatch(request)
                except SoapFault as fault:
                    engine.reply_fault(fault, content_type)
                    continue
                engine.reply(response, content_type)
        finally:
            channel.close()


class SoapHttpService:
    """SOAP over the HTTP binding (POST /soap), via :class:`HttpServer`."""

    def __init__(
        self,
        listener: Listener,
        dispatcher: Dispatcher,
        *,
        encoding: EncodingPolicy | None = None,
        security=None,
        target: str = "/soap",
        name: str = "soap-http",
    ) -> None:
        self._dispatcher = dispatcher
        self._encoding = encoding if encoding is not None else XMLEncoding()
        self._security = security
        self._target = target
        self._server = HttpServer(listener, self._handle, name=name)

    def start(self) -> "SoapHttpService":
        self._server.start()
        return self

    def stop(self) -> None:
        self._server.stop()

    def __enter__(self) -> "SoapHttpService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _handle(self, request: HttpRequest) -> HttpResponse:
        if request.target != self._target:
            return HttpResponse(404, body=b"no such endpoint")
        if request.method != "POST":
            return HttpResponse(405, body=b"SOAP endpoints accept POST only")
        content_type = (request.headers.get("Content-Type") or "text/xml").split(";")[0].strip()

        from repro.core.envelope import SoapEnvelope
        from repro.core.policies import encoding_for_content_type

        try:
            encoding = (
                self._encoding
                if content_type == self._encoding.content_type
                else encoding_for_content_type(content_type)
            )
        except ValueError:
            return HttpResponse(400, body=f"unsupported content type {content_type}".encode())

        try:
            envelope = SoapEnvelope.from_document(encoding.decode(request.body))
        except Exception as exc:  # malformed payload → client fault
            fault = SoapFault("soap:Client", f"cannot parse request: {exc}")
            return self._fault_response(fault, encoding, self._security)

        try:
            if self._security is not None:
                self._security.verify(envelope)
            response = self._dispatcher.dispatch(envelope)
        except SoapFault as fault:
            return self._fault_response(fault, encoding, self._security)

        if self._security is not None:
            self._security.sign(response)
        body = encoding.encode(response.to_document())
        resp = HttpResponse(200, body=body)
        resp.headers.set("Content-Type", encoding.content_type)
        return resp

    @staticmethod
    def _fault_response(fault: SoapFault, encoding: EncodingPolicy, security=None) -> HttpResponse:
        from repro.core.envelope import SoapEnvelope

        envelope = SoapEnvelope.wrap(fault.to_element())
        if security is not None:
            security.sign(envelope)
        body = encoding.encode(envelope.to_document())
        # SOAP 1.1 over HTTP: faults ride a 500.
        resp = HttpResponse(500, body=body)
        resp.headers.set("Content-Type", encoding.content_type)
        return resp
