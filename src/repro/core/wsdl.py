"""WSDL-lite: service descriptions carrying encoding/binding choices.

§2 of the paper: "Users are free to specify the alternative message
encoding/binding scheme in the WSDL file, though most implementations
support this flexibility either poorly or not at all."  This module is the
generic engine's answer: a small service-description document (a WSDL 1.1
subset with two extension attributes) that names the operations, the
endpoint, the transport binding and the message encoding — and a factory
that configures a ready client from it.

Description document shape (itself serialized with either of this
project's codecs — it is just bXDM)::

    wsdl:definitions  name="VerificationService"
      wsdl:portType
        wsdl:operation  name="VerifyData"
        wsdl:operation  name="VerifyDataByReference"
      wsdl:binding      transport="tcp"  bx:encoding="application/bxsa"
      wsdl:service
        wsdl:port       location="svc"        (a connector key, host:port, ...)

``bx:encoding`` is the extension the paper says real WSDL tooling lacked:
its value is a wire content type, resolved through the same registry the
engine's content negotiation uses, so any registered policy — including
compressed ones — can be declared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.client import SoapHttpClient, SoapTcpClient
from repro.core.policies import encoding_for_content_type
from repro.xdm.nodes import AttributeNode, DocumentNode, ElementNode
from repro.xdm.qname import QName
from repro.xmlcodec.typed import BX_URI

#: WSDL 1.1 namespace (the subset we model).
WSDL_URI = "http://schemas.xmlsoap.org/wsdl/"

_DEFINITIONS = QName("definitions", WSDL_URI, "wsdl")
_PORT_TYPE = QName("portType", WSDL_URI, "wsdl")
_OPERATION = QName("operation", WSDL_URI, "wsdl")
_BINDING = QName("binding", WSDL_URI, "wsdl")
_SERVICE = QName("service", WSDL_URI, "wsdl")
_PORT = QName("port", WSDL_URI, "wsdl")

_ENCODING_ATTR = QName("encoding", BX_URI, "bx")

#: Transport names accepted in the binding element.
SUPPORTED_TRANSPORTS = ("tcp", "http")


class WsdlError(ValueError):
    """Malformed or unsupported service description."""


@dataclass(frozen=True)
class ServiceDescription:
    """The useful content of a WSDL-lite document."""

    name: str
    operations: tuple[str, ...]
    transport: str  #: "tcp" or "http"
    encoding_content_type: str  #: e.g. "application/bxsa"
    location: str  #: connector key / address string
    http_target: str = "/soap"

    def __post_init__(self) -> None:
        if self.transport not in SUPPORTED_TRANSPORTS:
            raise WsdlError(
                f"unsupported transport {self.transport!r} "
                f"(supported: {', '.join(SUPPORTED_TRANSPORTS)})"
            )
        if not self.operations:
            raise WsdlError("a service must declare at least one operation")

    # ------------------------------------------------------------------
    # document mapping

    def to_document(self) -> DocumentNode:
        definitions = ElementNode(_DEFINITIONS)
        definitions.declare_namespace("wsdl", WSDL_URI)
        definitions.declare_namespace("bx", BX_URI)
        definitions.set_attribute("name", self.name)

        port_type = ElementNode(_PORT_TYPE)
        port_type.set_attribute("name", f"{self.name}PortType")
        for operation in self.operations:
            op = ElementNode(_OPERATION)
            op.set_attribute("name", operation)
            port_type.children.append(op)
        definitions.children.append(port_type)

        binding = ElementNode(_BINDING)
        binding.set_attribute("name", f"{self.name}Binding")
        binding.set_attribute("transport", self.transport)
        binding.attributes.append(
            AttributeNode(_ENCODING_ATTR, self.encoding_content_type)
        )
        definitions.children.append(binding)

        service = ElementNode(_SERVICE)
        service.set_attribute("name", self.name)
        port = ElementNode(_PORT)
        port.set_attribute("location", self.location)
        if self.transport == "http":
            port.set_attribute("target", self.http_target)
        service.children.append(port)
        definitions.children.append(service)
        return DocumentNode([definitions])

    @classmethod
    def from_document(cls, document: DocumentNode) -> "ServiceDescription":
        root = document.root
        if root.name != _DEFINITIONS:
            raise WsdlError(f"root element is {root.name.clark()}, expected wsdl:definitions")
        name_attr = root.attribute("name")
        if name_attr is None:
            raise WsdlError("wsdl:definitions lacks a name")

        port_types = [c for c in root.elements() if c.name == _PORT_TYPE]
        if not port_types:
            raise WsdlError("no wsdl:portType declared")
        operations = tuple(
            op.attribute("name").value
            for pt in port_types
            for op in pt.elements()
            if op.name == _OPERATION and op.attribute("name") is not None
        )

        bindings = [c for c in root.elements() if c.name == _BINDING]
        if not bindings:
            raise WsdlError("no wsdl:binding declared")
        binding = bindings[0]
        transport_attr = binding.attribute("transport")
        encoding_attr = binding.attribute(_ENCODING_ATTR)
        if transport_attr is None:
            raise WsdlError("wsdl:binding lacks a transport")
        if encoding_attr is None:
            raise WsdlError("wsdl:binding lacks the bx:encoding extension attribute")

        services = [c for c in root.elements() if c.name == _SERVICE]
        ports = [p for s in services for p in s.elements() if p.name == _PORT]
        if not ports:
            raise WsdlError("no wsdl:port declared")
        location_attr = ports[0].attribute("location")
        if location_attr is None:
            raise WsdlError("wsdl:port lacks a location")
        target_attr = ports[0].attribute("target")

        return cls(
            name=str(name_attr.value),
            operations=operations,
            transport=str(transport_attr.value),
            encoding_content_type=str(encoding_attr.value),
            location=str(location_attr.value),
            http_target=str(target_attr.value) if target_attr is not None else "/soap",
        )

    # ------------------------------------------------------------------
    # client configuration

    def make_client(self, connect: Callable, *, security=None):
        """Build a ready client from the description.

        ``connect`` maps the port's ``location`` to a channel factory:
        ``connect(location) -> () -> Channel`` — for a
        :class:`~repro.transport.MemoryNetwork` that's
        ``lambda loc: lambda: net.connect(loc)``; for sockets, parse the
        location into host/port and return a ``connect_tcp`` thunk.
        """
        encoding = encoding_for_content_type(self.encoding_content_type)
        channel_factory = connect(self.location)
        if self.transport == "tcp":
            return SoapTcpClient(channel_factory, encoding=encoding, security=security)
        return SoapHttpClient(
            channel_factory, encoding=encoding, security=security, target=self.http_target
        )
