"""The conventional "separated" data channels (§1, §6 of the paper).

In the separated scheme the SOAP message carries only a URL; the bulk data
travels out of band as a netCDF file served over HTTP or a GridFTP-like
striped transfer.  These classes package that pattern:

* ``publish`` writes the file to a real spool directory (the disk I/O the
  paper charges the separated scheme for) and returns the URL to put in
  the control message;
* ``fetch`` resolves a URL back to bytes on the consumer side (the
  verification server), downloading over the corresponding protocol.

A :class:`UrlResolver` dispatches on URL scheme so one service can accept
references to either channel.
"""

from repro.datachannel.base import DataChannelError, UrlResolver
from repro.datachannel.httpchannel import HttpDataChannel
from repro.datachannel.gridftpchannel import GridFTPDataChannel

__all__ = [
    "DataChannelError",
    "GridFTPDataChannel",
    "HttpDataChannel",
    "UrlResolver",
]
