"""Shared plumbing for the separated-scheme data channels."""

from __future__ import annotations

from typing import Protocol, runtime_checkable


class DataChannelError(Exception):
    """Publishing or fetching through a data channel failed."""


@runtime_checkable
class DataChannel(Protocol):
    """What the separated scheme needs from a channel implementation."""

    scheme: str

    def publish(self, name: str, blob: bytes) -> str:
        """Store ``blob`` under ``name``; returns the URL for the control
        message."""
        ...

    def fetch(self, url: str) -> bytes:
        """Resolve a URL previously returned by :meth:`publish`."""
        ...


class UrlResolver:
    """Scheme-dispatching fetch function for the verification server."""

    def __init__(self) -> None:
        self._channels: dict[str, DataChannel] = {}

    def register(self, channel: DataChannel) -> "UrlResolver":
        self._channels[channel.scheme] = channel
        return self

    def fetch(self, url: str) -> bytes:
        scheme, sep, _rest = url.partition("://")
        if not sep:
            raise DataChannelError(f"malformed data URL {url!r}")
        channel = self._channels.get(scheme)
        if channel is None:
            raise DataChannelError(f"no data channel registered for scheme {scheme!r}")
        return channel.fetch(url)


def split_url(url: str, expected_scheme: str) -> tuple[str, str]:
    """``scheme://authority/name`` → (authority, /name)."""
    scheme, sep, rest = url.partition("://")
    if not sep or scheme != expected_scheme:
        raise DataChannelError(f"expected a {expected_scheme} URL, got {url!r}")
    authority, slash, name = rest.partition("/")
    if not slash or not name:
        raise DataChannelError(f"URL {url!r} lacks a file path")
    return authority, "/" + name
