"""GridFTP data channel: netCDF files behind the striped transfer service.

Each :meth:`fetch` runs a full client session — connect, GSI-style
handshake, SIZE, RETR, QUIT — matching the paper's usage where the
verification server authenticates per request (the cost that dominates
Figure 4's GridFTP curve).  The stats of the most recent fetch are kept on
:attr:`last_stats` for the harness.
"""

from __future__ import annotations

import pathlib
import tempfile
from typing import Callable

from repro.datachannel.base import DataChannelError, split_url
from repro.gridftp.auth import HostCredential
from repro.gridftp.client import GridFTPClient, TransferStats
from repro.gridftp.errors import GridFTPError
from repro.gridftp.server import GridFTPServer
from repro.transport.base import Channel, Listener, TransportError
from repro.transport.resilience import NO_RETRY, RetryPolicy, retry_call


class GridFTPDataChannel:
    """A GridFTP-like server plus the authenticated client to fetch from it.

    Parameters
    ----------
    control_listener / data_listener_factory:
        Transport plumbing for the embedded :class:`GridFTPServer`.
    connect_control / connect_data:
        Client-side connectors used by :meth:`fetch`.
    n_streams:
        Parallel data streams per retrieval (the paper sweeps 1/4/16).
    retry:
        Session-level retry policy: a failed retrieval (reset control
        channel, dead stripe, timed-out worker) re-runs the whole
        authenticated session — safe because retrieval is read-only.
    """

    scheme = "gftp"

    def __init__(
        self,
        control_listener: Listener,
        data_listener_factory,
        connect_control: Callable[[], Channel],
        connect_data: Callable[[str], Channel],
        *,
        authority: str = "gridhost",
        n_streams: int = 1,
        spool_dir=None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._authority = authority
        self._connect_control = connect_control
        self._connect_data = connect_data
        self._retry = retry if retry is not None else NO_RETRY
        self.n_streams = n_streams
        self._credential = HostCredential.generate()
        self._server = GridFTPServer(
            control_listener, data_listener_factory, self._credential
        )
        if spool_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-gftp-spool-")
            self._spool = pathlib.Path(self._tmp.name)
        else:
            self._tmp = None
            self._spool = pathlib.Path(spool_dir)
        #: Stats of the most recent fetch (None before the first).
        self.last_stats: TransferStats | None = None

    # ------------------------------------------------------------------

    def start(self) -> "GridFTPDataChannel":
        self._server.start()
        return self

    def stop(self) -> None:
        self._server.stop()
        if self._tmp is not None:
            self._tmp.cleanup()

    def __enter__(self) -> "GridFTPDataChannel":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def publish(self, name: str, blob: bytes) -> str:
        """Spool to disk (the paper's client-side netCDF write), read back
        and hand to the server store; returns the URL."""
        safe = "/" + name.strip("/")
        path = self._spool / safe.strip("/").replace("/", "__")
        path.write_bytes(blob)
        self._server.publish(safe, path.read_bytes())
        return f"gftp://{self._authority}{safe}"

    def fetch(self, url: str) -> bytes:
        _authority, target = split_url(url, "gftp")

        def session(_attempt: int) -> bytes:
            client = GridFTPClient(
                self._connect_control, self._connect_data, self._credential
            )
            try:
                blob = client.retrieve(target, self.n_streams)
            finally:
                self.last_stats = client.stats
                try:
                    client.quit()
                except (GridFTPError, TransportError):
                    pass  # a broken goodbye must not mask the retrieval error
            return blob

        try:
            return retry_call(
                session,
                self._retry,
                retryable=lambda exc: isinstance(exc, (GridFTPError, TransportError)),
            )
        except (GridFTPError, TransportError) as exc:
            raise DataChannelError(f"GridFTP fetch of {url} failed: {exc}") from exc
