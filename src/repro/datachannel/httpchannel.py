"""HTTP data channel: netCDF files behind a file-serving HTTP endpoint.

The publisher side spools each published blob to a real file (the client
"saves it into a netCDF file" in the paper's Section 6 description); the
HTTP handler reads that file from disk per GET — both touches are genuine
I/O the harness measures.
"""

from __future__ import annotations

import pathlib
import tempfile
from typing import Callable

from repro.datachannel.base import DataChannelError, split_url
from repro.transport.base import Channel, Listener, TransportError
from repro.transport.http.client import HttpClient
from repro.transport.http.messages import HttpRequest, HttpResponse
from repro.transport.http.server import HttpServer
from repro.transport.resilience import RetryPolicy


class HttpDataChannel:
    """A file-serving HTTP server plus the client to fetch from it.

    Parameters
    ----------
    listener:
        Where the file server accepts connections.
    connect:
        ``() -> Channel`` used by :meth:`fetch` to reach the server.
    authority:
        The host part baked into published URLs (labelling only).
    spool_dir:
        Directory for published files; a temp dir is created if omitted.
    retry:
        Retry policy for fetches (GETs are idempotent, so lossy links are
        survivable within the attempt budget).
    fetch_deadline:
        Default per-fetch budget in seconds (None = unbounded).
    """

    scheme = "http"

    def __init__(
        self,
        listener: Listener,
        connect: Callable[[], Channel],
        *,
        authority: str = "datahost",
        spool_dir=None,
        retry: RetryPolicy | None = None,
        fetch_deadline: float | None = None,
    ) -> None:
        self._authority = authority
        self._connect = connect
        self._retry = retry
        self._fetch_deadline = fetch_deadline
        if spool_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-http-spool-")
            self._spool = pathlib.Path(self._tmp.name)
        else:
            self._tmp = None
            self._spool = pathlib.Path(spool_dir)
        self._published: dict[str, pathlib.Path] = {}
        self._server = HttpServer(listener, self._handle, name="http-data")

    # ------------------------------------------------------------------

    def start(self) -> "HttpDataChannel":
        self._server.start()
        return self

    def stop(self) -> None:
        self._server.stop()
        if self._tmp is not None:
            self._tmp.cleanup()

    def __enter__(self) -> "HttpDataChannel":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def publish(self, name: str, blob: bytes) -> str:
        """Spool ``blob`` to disk and expose it; returns the URL."""
        safe = name.strip("/")
        path = self._spool / safe.replace("/", "__")
        path.write_bytes(blob)  # the paper's client-side disk write
        self._published["/" + safe] = path
        return f"http://{self._authority}/{safe}"

    def unpublish(self, name: str) -> None:
        target = "/" + name.strip("/")
        path = self._published.pop(target, None)
        if path is not None:
            path.unlink(missing_ok=True)

    def fetch(self, url: str, *, deadline: float | None = None) -> bytes:
        _authority, target = split_url(url, "http")
        client = HttpClient(self._connect, host=self._authority, retry=self._retry)
        try:
            response = client.get(
                target,
                deadline=deadline if deadline is not None else self._fetch_deadline,
            )
        except TransportError as exc:
            raise DataChannelError(f"GET {url} failed: {exc}") from exc
        finally:
            client.close()
        if not response.ok:
            raise DataChannelError(f"GET {url} -> HTTP {response.status}")
        return response.body

    # ------------------------------------------------------------------

    def _handle(self, request: HttpRequest) -> HttpResponse:
        if request.method not in ("GET", "HEAD"):
            return HttpResponse(405, body=b"file channel accepts GET")
        path = self._published.get(request.target)
        if path is None:
            return HttpResponse(404, body=f"no such file {request.target}".encode())
        blob = path.read_bytes()  # the server-side disk read
        response = HttpResponse(200, body=b"" if request.method == "HEAD" else blob)
        response.headers.set("Content-Type", "application/x-netcdf")
        return response
