"""Federated multi-server data plane.

One serve instance tops out at one host's capacity; this package scales
the SOAP framework past it with three client-side building blocks:

* :mod:`repro.fed.balancer` — a client-side load balancer fronting N
  serve replicas (threaded or aio core) with pluggable replica-selection
  policies, ``/readyz`` health gating, circuit breaking and automatic
  failover through the :func:`~repro.transport.resilience.retry_call`
  resilience layer;
* :mod:`repro.fed.striping` — multi-source striped transfers: one large
  fetch split into byte-range stripes pulled concurrently from several
  replicas and reassembled with per-stripe verification;
* :mod:`repro.fed.cache` — a content-addressed response cache keyed by
  a digest of the canonical request, with TTL + LRU-bytes eviction and
  single-flight request coalescing;
* :mod:`repro.fed.node` — a standalone node process (``python -m
  repro.fed.node``) plus helpers to spawn a local cluster without
  sleep-polling for ephemeral ports.

``repro.harness.figure_fed`` ("Figure F") measures the federation:
concurrency × cache-hit-ratio matrix, aggregate goodput vs a saturated
single node, and node-kill failover with exact accounting.
"""

from repro.fed.balancer import (
    Balancer,
    EwmaLatencyPolicy,
    FederatedClient,
    LeastOutstandingPolicy,
    NoReplicaAvailable,
    Replica,
    RoundRobinPolicy,
)
from repro.fed.cache import CachingClient, ResponseCache, envelope_key, request_key
from repro.fed.striping import StripeStats, StripeVerificationError, striped_fetch

__all__ = [
    "Balancer",
    "CachingClient",
    "EwmaLatencyPolicy",
    "FederatedClient",
    "LeastOutstandingPolicy",
    "NoReplicaAvailable",
    "Replica",
    "ResponseCache",
    "RoundRobinPolicy",
    "StripeStats",
    "StripeVerificationError",
    "envelope_key",
    "request_key",
    "striped_fetch",
]
