"""Client-side load balancer fronting N serve replicas.

The balancer owns a view of every replica — outstanding exchanges, an
EWMA of observed latency, probe-reported liveness/readiness, and a
circuit breaker — and picks one per attempt through a pluggable
replica-selection policy.  Replica-selection policy logic lives in this
module only (enforced by ``tools/lint.py``).

:class:`FederatedClient` is the calling side: it replays shed and
failed exchanges through :func:`repro.transport.resilience.retry_call`,
preferring a different replica on each failover, and opens a
``fed.attempt`` span per try so a joined trace shows every replica a
logical request touched.

Health gating follows the liveness/readiness split: the balancer probes
``GET /readyz`` on each replica; a 503 (admission queue saturated)
gates the replica out of selection *before* the server starts shedding,
while a transport error marks it dead until a later probe succeeds.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.transport.base import Channel, TransportError
from repro.transport.resilience import (
    Deadline,
    RetryBudgetExhausted,
    RetryPolicy,
    ServerBusy,
    as_deadline,
    retry_call,
)

READINESS_TARGET = "/readyz"
LIVENESS_TARGET = "/healthz"

#: Default failover budget: up to four attempts gives a request a shot at
#: every replica of a three-node federation plus one retry-after-cooldown.
DEFAULT_FED_RETRY = RetryPolicy(
    max_attempts=4, base_backoff=0.002, backoff_multiplier=2.0, max_backoff=0.05, jitter=0.25
)


class NoReplicaAvailable(TransportError):
    """Every replica is dead or circuit-open; nothing to route to.

    A :class:`TransportError`, so :func:`retry_call` treats it as
    retryable — by the next attempt a cooldown may have half-opened a
    circuit or a probe may have revived a replica.
    """


@dataclass(frozen=True)
class Replica:
    """One serve instance the balancer may route to."""

    name: str
    connect: Callable[[], Channel]
    host: str = "localhost"
    target: str = "/soap"


class RoundRobinPolicy:
    """Cycle through the candidates in order, ignoring load signals."""

    name = "round_robin"

    def __init__(self) -> None:
        self._counter = 0

    def choose_replica(self, candidates: Sequence["_ReplicaState"]) -> "_ReplicaState":
        chosen = candidates[self._counter % len(candidates)]
        self._counter += 1
        return chosen


class LeastOutstandingPolicy:
    """Pick the candidate with the fewest in-flight exchanges.

    Ties rotate round-robin so an idle federation still spreads load.
    """

    name = "least_outstanding"

    def __init__(self) -> None:
        self._counter = 0

    def choose_replica(self, candidates: Sequence["_ReplicaState"]) -> "_ReplicaState":
        start = self._counter % len(candidates)
        self._counter += 1
        ordered = list(candidates[start:]) + list(candidates[:start])
        return min(ordered, key=lambda state: state.outstanding)


class EwmaLatencyPolicy:
    """Weight candidates by EWMA latency scaled by queue depth.

    Cost is ``ewma_seconds * (outstanding + 1)`` — the expected wait if
    one more exchange joins that replica's line.  Unmeasured replicas
    cost nothing, so every replica gets probed before the policy starts
    discriminating; ties rotate like :class:`LeastOutstandingPolicy`.
    """

    name = "ewma_latency"

    def __init__(self) -> None:
        self._counter = 0

    def choose_replica(self, candidates: Sequence["_ReplicaState"]) -> "_ReplicaState":
        start = self._counter % len(candidates)
        self._counter += 1
        ordered = list(candidates[start:]) + list(candidates[:start])

        def cost(state: "_ReplicaState") -> float:
            if state.ewma_seconds is None:
                return 0.0
            return state.ewma_seconds * (state.outstanding + 1)

        return min(ordered, key=cost)


CIRCUIT_CLOSED = "closed"
CIRCUIT_OPEN = "open"
CIRCUIT_HALF_OPEN = "half_open"


class _ReplicaState:
    """Mutable per-replica bookkeeping; guarded by the balancer lock."""

    __slots__ = (
        "replica",
        "outstanding",
        "ewma_seconds",
        "consecutive_failures",
        "circuit",
        "open_until",
        "half_open_inflight",
        "live",
        "ready",
        "attempts",
        "failures",
        "busy",
        "completed",
    )

    def __init__(self, replica: Replica) -> None:
        self.replica = replica
        self.outstanding = 0
        self.ewma_seconds: float | None = None
        self.consecutive_failures = 0
        self.circuit = CIRCUIT_CLOSED
        self.open_until = 0.0
        self.half_open_inflight = False
        self.live = True
        self.ready = True
        self.attempts = 0
        self.failures = 0
        self.busy = 0
        self.completed = 0

    @property
    def name(self) -> str:
        return self.replica.name


class Balancer:
    """Route exchanges across replicas with health gating and breaking.

    The breaker opens after ``breaker_threshold`` consecutive transport
    failures (:class:`ServerBusy` does not count — a 503 is back-pressure
    from a live server, not a failure).  After ``breaker_cooldown``
    seconds one half-open trial is admitted; success re-closes the
    circuit, failure re-opens it for another cooldown.
    """

    def __init__(
        self,
        replicas: Sequence[Replica],
        *,
        policy=None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        ewma_alpha: float = 0.2,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not replicas:
            raise ValueError("Balancer needs at least one replica")
        self._states = [_ReplicaState(replica) for replica in replicas]
        self._by_name = {state.name: state for state in self._states}
        if len(self._by_name) != len(self._states):
            raise ValueError("replica names must be unique")
        self.policy = policy if policy is not None else RoundRobinPolicy()
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.ewma_alpha = ewma_alpha
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.clock = clock
        self._lock = threading.Lock()
        #: Total exchanges handed to any replica — the plain counter the
        #: cache layer checks to prove a warm hit made no upstream call.
        self.upstream_requests = 0

    @property
    def replica_names(self) -> list[str]:
        return [state.name for state in self._states]

    def state(self, name: str) -> _ReplicaState:
        return self._by_name[name]

    # -- selection -----------------------------------------------------

    def acquire(self, *, prefer_not: str | None = None) -> _ReplicaState:
        """Pick a replica for one attempt and charge an outstanding slot.

        Selection passes: (1) live, ready, circuit not blocking; (2) if
        empty, live replicas whose circuit allows even if readiness-gated
        (better to queue on a saturated server than fail outright); if
        still empty raise :class:`NoReplicaAvailable`.
        """
        with self._lock:
            now = self.clock()
            admissible = [state for state in self._states if self._admissible(state, now)]
            candidates = [state for state in admissible if state.ready]
            if not candidates:
                candidates = admissible
            if not candidates:
                self.metrics.counter(
                    "fed_no_replica_total",
                ).add()
                raise NoReplicaAvailable(
                    "no replica available: "
                    + ", ".join(
                        f"{state.name}={self._describe(state, now)}" for state in self._states
                    )
                )
            if prefer_not is not None and len(candidates) > 1:
                filtered = [state for state in candidates if state.name != prefer_not]
                if filtered:
                    candidates = filtered
            chosen = self.policy.choose_replica(candidates)
            if chosen.circuit == CIRCUIT_OPEN:
                chosen.circuit = CIRCUIT_HALF_OPEN
                chosen.half_open_inflight = True
            chosen.outstanding += 1
            chosen.attempts += 1
            self.upstream_requests += 1
            self.metrics.counter(
                "fed_attempts_total",
                labels={"replica": chosen.name},
            ).add()
            self.metrics.gauge("fed_replicas_routable").set(len(admissible))
            return chosen

    def _admissible(self, state: _ReplicaState, now: float) -> bool:
        if not state.live:
            return False
        if state.circuit == CIRCUIT_CLOSED:
            return True
        if state.circuit == CIRCUIT_HALF_OPEN:
            return not state.half_open_inflight
        return now >= state.open_until and not state.half_open_inflight

    @staticmethod
    def _describe(state: _ReplicaState, now: float) -> str:
        if not state.live:
            return "dead"
        if state.circuit != CIRCUIT_CLOSED:
            remaining = max(0.0, state.open_until - now)
            return f"{state.circuit}({remaining:.3f}s)"
        if not state.ready:
            return "saturated"
        return "busy"

    # -- outcome reporting ---------------------------------------------

    def release(
        self,
        state: _ReplicaState,
        *,
        ok: bool = False,
        busy: bool = False,
        seconds: float | None = None,
    ) -> None:
        """Report one attempt's outcome: success, 503-busy, or failure."""
        with self._lock:
            state.outstanding = max(0, state.outstanding - 1)
            if busy:
                # Back-pressure from a live server: not a breaker event,
                # and a half-open trial that got a 503 proved liveness.
                state.busy += 1
                self.metrics.counter(
                    "fed_busy_total",
                    labels={"replica": state.name},
                ).add()
                if state.circuit != CIRCUIT_CLOSED:
                    self._close_circuit(state)
            elif ok:
                state.completed += 1
                state.consecutive_failures = 0
                if state.circuit != CIRCUIT_CLOSED:
                    self._close_circuit(state)
                if seconds is not None:
                    if state.ewma_seconds is None:
                        state.ewma_seconds = seconds
                    else:
                        alpha = self.ewma_alpha
                        state.ewma_seconds = alpha * seconds + (1 - alpha) * state.ewma_seconds
            else:
                state.failures += 1
                state.consecutive_failures += 1
                self.metrics.counter(
                    "fed_failures_total",
                    labels={"replica": state.name},
                ).add()
                failed_trial = state.half_open_inflight
                if failed_trial or state.consecutive_failures >= self.breaker_threshold:
                    self._open_circuit(state)
            state.half_open_inflight = False

    def _open_circuit(self, state: _ReplicaState) -> None:
        if state.circuit != CIRCUIT_OPEN:
            self.metrics.counter(
                "fed_circuit_open_total",
                labels={"replica": state.name},
            ).add()
        state.circuit = CIRCUIT_OPEN
        state.open_until = self.clock() + self.breaker_cooldown
        state.half_open_inflight = False

    def _close_circuit(self, state: _ReplicaState) -> None:
        state.circuit = CIRCUIT_CLOSED
        state.open_until = 0.0
        state.half_open_inflight = False
        state.consecutive_failures = 0
        self.metrics.counter(
            "fed_circuit_close_total",
            labels={"replica": state.name},
        ).add()

    # -- health probes -------------------------------------------------

    def probe_all(self, *, timeout: float = 2.0) -> dict[str, str]:
        """Probe ``GET /readyz`` on every replica; returns name → verdict.

        Verdicts: ``"ready"`` (200), ``"saturated"`` (503 — live but
        gated out of the preferred candidate set), ``"down"`` (transport
        error — gated out entirely until a later probe succeeds).
        """
        return {state.name: self._probe_one(state, timeout) for state in self._states}

    def _probe_one(self, state: _ReplicaState, timeout: float) -> str:
        from repro.transport.http.client import HttpClient

        client = HttpClient(state.replica.connect, host=state.replica.host)
        try:
            response = client.get(READINESS_TARGET, deadline=Deadline.after(timeout))
        except ServerBusy:
            verdict = "saturated"
        except Exception:
            verdict = "down"
        else:
            verdict = "ready" if response.status == 200 else "saturated"
        finally:
            client.close()
        with self._lock:
            state.live = verdict != "down"
            state.ready = verdict == "ready"
            if verdict == "down":
                self.metrics.counter(
                    "fed_probe_down_total",
                    labels={"replica": state.name},
                ).add()
        return verdict

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Point-in-time per-replica view for figures, tests, and debug."""
        with self._lock:
            now = self.clock()
            return {
                state.name: {
                    "outstanding": state.outstanding,
                    "attempts": state.attempts,
                    "completed": state.completed,
                    "failures": state.failures,
                    "busy": state.busy,
                    "circuit": state.circuit,
                    "open_for": max(0.0, state.open_until - now)
                    if state.circuit == CIRCUIT_OPEN
                    else 0.0,
                    "live": state.live,
                    "ready": state.ready,
                    "ewma_ms": None
                    if state.ewma_seconds is None
                    else state.ewma_seconds * 1e3,
                }
                for state in self._states
            }


class FederatedClient:
    """A SOAP client that fails over across the balancer's replicas.

    Each logical ``call`` runs under ``retry_call``: every try opens a
    ``fed.attempt`` span (nested in the resilience layer's
    ``resilience.attempt``) tagged with the replica it was routed to, so
    a joined trace shows the full failover path.  After a failed or shed
    attempt the next one prefers a different replica.

    ``replay=True`` (the default) declares exchanges safe to replay on
    another replica even when a connection died mid-exchange; pass
    ``replay=False`` for non-idempotent operations and the client will
    make exactly one attempt.

    When the retry budget is exhausted by back-pressure, the final
    :class:`ServerBusy` is re-raised unwrapped so load generators
    classify the exchange as *shed*, keeping
    offered = completed + shed + failed accounting exact.
    """

    def __init__(
        self,
        balancer: Balancer,
        *,
        encoding=None,
        security=None,
        retry: RetryPolicy | None = None,
        replay: bool = True,
        deadline=None,
        rng: random.Random | None = None,
    ) -> None:
        self._balancer = balancer
        self._encoding = encoding
        self._security = security
        self._retry = retry if retry is not None else DEFAULT_FED_RETRY
        self._replay = replay
        self._deadline = deadline
        self._rng = rng if rng is not None else random.Random()
        self._clients: dict[str, object] = {}
        self._clients_lock = threading.Lock()

    @property
    def balancer(self) -> Balancer:
        return self._balancer

    def _client_for(self, state: _ReplicaState):
        from repro.core.client import SoapHttpClient

        with self._clients_lock:
            client = self._clients.get(state.name)
            if client is None:
                replica = state.replica
                client = SoapHttpClient(
                    replica.connect,
                    encoding=self._encoding,
                    security=self._security,
                    target=replica.target,
                    host=replica.host,
                )
                self._clients[state.name] = client
            return client

    def _drop_client(self, name: str) -> None:
        with self._clients_lock:
            client = self._clients.pop(name, None)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    def call(self, envelope, *, deadline=None):
        deadline = as_deadline(deadline if deadline is not None else self._deadline)
        last_replica: list[str | None] = [None]

        def attempt(number: int) -> object:
            state = self._balancer.acquire(prefer_not=last_replica[0])
            if number > 1:
                self._balancer.metrics.counter("fed_failovers_total").add()
            last_replica[0] = state.name
            with obs.span(
                "fed.attempt", kind="logical", replica=state.name, attempt=number
            ) as span:
                client = self._client_for(state)
                started = time.perf_counter()
                try:
                    response = client.call(envelope, deadline=deadline)
                except ServerBusy:
                    span.set("outcome", "busy")
                    self._balancer.release(state, busy=True)
                    raise
                except BaseException:
                    span.set("outcome", "error")
                    self._balancer.release(state)
                    # The connection may be wedged mid-exchange; rebuild it.
                    self._drop_client(state.name)
                    raise
                else:
                    span.set("outcome", "ok")
                    self._balancer.release(
                        state, ok=True, seconds=time.perf_counter() - started
                    )
                    return response

        def may_retry(exc: Exception, number: int) -> bool:
            return self._replay

        try:
            return retry_call(
                attempt,
                self._retry,
                deadline=deadline,
                may_retry=may_retry,
                rng=self._rng,
                metrics=self._balancer.metrics,
            )
        except RetryBudgetExhausted as exc:
            if isinstance(exc.last_error, ServerBusy):
                raise exc.last_error from exc
            raise

    def close(self) -> None:
        with self._clients_lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            try:
                client.close()
            except Exception:
                pass


def probe_mapping(results: Mapping[str, str]) -> str:
    """Render a probe_all result as a compact one-line summary."""
    return " ".join(f"{name}:{verdict}" for name, verdict in sorted(results.items()))
