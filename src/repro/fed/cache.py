"""Content-addressed response cache with single-flight coalescing.

Responses are keyed by a digest of the *canonical request* — the
operation name plus the encoded request body — so any client asking the
same question gets the cached answer regardless of which replica would
have served it.  Eviction is TTL on read plus LRU by total cached
bytes; concurrent misses for one key collapse into a single upstream
call (the "single flight"), with followers waiting on the leader's
result and inheriting its error if the load fails.

:class:`CachingClient` fronts any SOAP client (``.call(envelope)``) —
typically a :class:`repro.fed.balancer.FederatedClient` — and proves
the "warm hit makes no upstream exchange" property against the
balancer's ``upstream_requests`` counter.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Callable

from repro import obs
from repro.obs.metrics import MetricsRegistry

_MISS = object()


def request_key(operation: str, encoded_body: bytes) -> str:
    """Digest of the canonical request: operation + encoded body."""
    digest = hashlib.sha256()
    digest.update(operation.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(encoded_body)
    return digest.hexdigest()


def envelope_key(envelope, policy) -> str:
    """Content address of a SOAP envelope under an encoding policy.

    The key covers the operation (body root QName) and the entire
    encoded document — header blocks included, so e.g. differently
    addressed requests never alias.
    """
    operation = envelope.body_root.name.local
    return request_key(operation, bytes(policy.encode(envelope.to_document())))


class _Entry:
    __slots__ = ("value", "size", "expires_at")

    def __init__(self, value, size: int, expires_at: float | None) -> None:
        self.value = value
        self.size = size
        self.expires_at = expires_at


class _Flight:
    """One in-progress load; followers block on ``event``."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class ResponseCache:
    """TTL + LRU-bytes cache with single-flight request coalescing.

    ``clock`` is injectable for deterministic TTL tests; ``ttl_seconds``
    of ``None`` disables expiry.  Plain integer stats (``hits`` /
    ``misses`` / ``coalesced`` / ``evictions``) ride alongside the
    registry metrics so tests can assert without scraping.
    """

    def __init__(
        self,
        *,
        max_bytes: int = 16 << 20,
        ttl_seconds: float | None = 60.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._inflight: dict[str, _Flight] = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0

    # -- bookkeeping (all called under self._lock) ---------------------

    def _counter(self, name: str, _help: str, **labels):
        return self.metrics.counter(name, labels=labels or None)

    def _update_gauges(self) -> None:
        self.metrics.gauge("fed_cache_bytes").set(
            self._bytes
        )
        self.metrics.gauge("fed_cache_entries").set(
            len(self._entries)
        )
        self.metrics.gauge("fed_cache_inflight").set(len(self._inflight))

    def _evict_locked(self, key: str, reason: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self._bytes -= entry.size
        self.evictions += 1
        self._counter(
            "fed_cache_evictions_total", "Cache evictions by reason", reason=reason
        ).add()

    def _get_locked(self, key: str):
        entry = self._entries.get(key)
        if entry is None:
            return _MISS
        if entry.expires_at is not None and self.clock() >= entry.expires_at:
            self._evict_locked(key, "ttl")
            return _MISS
        self._entries.move_to_end(key)
        return entry.value

    # -- public surface ------------------------------------------------

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str):
        """Return the cached value or ``None`` (recorded as hit/miss)."""
        with self._lock:
            value = self._get_locked(key)
            if value is _MISS:
                self.misses += 1
                self._counter("fed_cache_misses_total", "Cache misses").add()
                self._update_gauges()
                return None
            self.hits += 1
            self._counter("fed_cache_hits_total", "Cache hits").add()
            return value

    def put(self, key: str, value, size: int) -> None:
        """Insert/replace ``key``, evicting LRU entries past ``max_bytes``.

        A value larger than the whole cache is not stored at all.
        """
        with self._lock:
            if key in self._entries:
                self._evict_locked(key, "replace")
                self.evictions -= 1  # a replace is not an eviction
            if size > self.max_bytes:
                self._update_gauges()
                return
            expires_at = (
                None if self.ttl_seconds is None else self.clock() + self.ttl_seconds
            )
            self._entries[key] = _Entry(value, size, expires_at)
            self._bytes += size
            while self._bytes > self.max_bytes:
                oldest = next(iter(self._entries))
                self._evict_locked(oldest, "lru")
            self._update_gauges()

    def invalidate(self, key: str) -> bool:
        with self._lock:
            present = key in self._entries
            self._evict_locked(key, "invalidate")
            self._update_gauges()
            return present

    def get_or_load(self, key: str, loader: Callable[[], object], *, size_of=None):
        """Return ``(value, outcome)``; outcome ∈ hit / miss / coalesced.

        On a miss the first caller (the leader) runs ``loader`` outside
        the lock and fills the cache; concurrent callers for the same
        key wait for the leader instead of going upstream.  A leader
        error propagates to every waiter and nothing is cached.
        """
        with self._lock:
            value = self._get_locked(key)
            if value is not _MISS:
                self.hits += 1
                self._counter("fed_cache_hits_total", "Cache hits").add()
                return value, "hit"
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                leader = True
                self.misses += 1
                self._counter("fed_cache_misses_total", "Cache misses").add()
            else:
                leader = False
                self.coalesced += 1
                self._counter(
                    "fed_cache_coalesced_total",
                    "Misses collapsed into an in-progress load",
                ).add()
            self._update_gauges()

        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, "coalesced"

        try:
            value = loader()
        except BaseException as exc:
            flight.error = exc
            raise
        else:
            flight.value = value
            size = len(value) if size_of is None else size_of(value)
            self.put(key, value, size)
            return value, "miss"
        finally:
            with self._lock:
                self._inflight.pop(key, None)
                self._update_gauges()
            flight.event.set()


class CachingClient:
    """Content-addressed caching front for any ``.call(envelope)`` client.

    The cache key is computed with ``encoding`` (default: the wrapped
    client's policy when it exposes one, else XML) — key derivation is
    local work, so a warm hit performs **zero** upstream exchanges.
    Cached entry size is the encoded response length, keeping LRU-bytes
    eviction honest about wire-equivalent footprint.
    """

    def __init__(self, client, cache: ResponseCache, *, encoding=None) -> None:
        self._client = client
        self._cache = cache
        if encoding is None:
            encoding = getattr(client, "encoding", None)
        if encoding is None:
            from repro.core.policies import XMLEncoding

            encoding = XMLEncoding()
        self._encoding = encoding

    @property
    def cache(self) -> ResponseCache:
        return self._cache

    def _response_size(self, response) -> int:
        try:
            return len(bytes(self._encoding.encode(response.to_document())))
        except Exception:
            return 1024  # unencodable response: charge a nominal footprint

    def call(self, envelope, *, deadline=None):
        key = envelope_key(envelope, self._encoding)
        with obs.span(
            "fed.cache_lookup", kind="logical", operation=envelope.body_root.name.local
        ) as span:
            value, outcome = self._cache.get_or_load(
                key,
                lambda: self._client.call(envelope, deadline=deadline),
                size_of=self._response_size,
            )
            span.set("outcome", outcome)
            span.set("key", key[:16])
        return value

    def close(self) -> None:
        close = getattr(self._client, "close", None)
        if close is not None:
            close()
