"""A standalone federation node process, plus local-cluster helpers.

Run one node::

    PYTHONPATH=src python -m repro.fed.node --port 0 --workers 2

The node binds its listener **first** (``TcpListener`` binds + listens
in its constructor, so the kernel queues connections from this moment),
prints one machine-readable line::

    ADDR <host> <port>

flushed *before* the serving loop starts, then serves until stdin
reaches EOF (the parent closed the pipe) — that line is the atomic
bound-address handoff that lets a parent start N nodes on port 0 and
connect immediately, no sleep-polling.  :func:`spawn_nodes` is that
parent: it blocks on the ADDR line of each child and returns
:class:`NodeProcess` handles with live addresses.

Every node serves the same :func:`fed_dispatcher` operations:

* ``Echo`` — the classic echo, for liveness-style exchanges;
* ``Work(size, rounds[, io_ms])`` — wait ``io_ms`` milliseconds (a
  GIL-released stand-in for a downstream backend: database, disk,
  upstream service), then hash ``size`` zero bytes ``rounds`` times
  (sha256 releases the GIL on large buffers too) and return the digest.
  Service time is tunable on both axes, so a node's capacity is set by
  its worker pool — ``workers / service_time`` — and federation
  capacity genuinely scales with node count even on a single-core host
  where pure CPU work could not;
* ``GetChunk(offset, length)`` — a byte range of the node's
  deterministic blob (same seed ⇒ same blob on every replica), the
  striped-transfer source.  Clients regenerate the blob locally with
  :func:`fed_blob` to verify stripes.
"""

from __future__ import annotations

import argparse
import base64
import hashlib
import os
import random
import subprocess
import sys
import time
from pathlib import Path

from repro.core.dispatcher import Dispatcher
from repro.xdm import element, leaf

DEFAULT_BLOB_SEED = 20060625
DEFAULT_BLOB_SIZE = 1 << 20


def fed_blob(seed: int = DEFAULT_BLOB_SEED, size: int = DEFAULT_BLOB_SIZE) -> bytes:
    """The deterministic blob every node with the same seed serves."""
    return random.Random(seed).randbytes(size)


def work_digest(size: int, rounds: int) -> str:
    """The reference result of the ``Work`` operation (pure function)."""
    block = bytes(size)
    digest = b""
    for _ in range(rounds):
        digest = hashlib.sha256(block + digest).digest()
    return digest.hex()


def fed_dispatcher(
    *, blob_seed: int = DEFAULT_BLOB_SEED, blob_size: int = DEFAULT_BLOB_SIZE
) -> Dispatcher:
    """The operations every federation node serves."""
    blob = fed_blob(blob_seed, blob_size)
    d = Dispatcher()

    @d.operation("Echo")
    def echo(request):
        return element("EchoResponse", *request.body_root.children)

    @d.operation("Work")
    def work(request):
        args = {child.name.local: child for child in request.body_root.children}
        size = int(args["size"].value)
        rounds = int(args["rounds"].value)
        io_ms = int(args["io_ms"].value) if "io_ms" in args else 0
        if io_ms:
            time.sleep(io_ms / 1e3)
        return element(
            "WorkResponse", leaf("digest", work_digest(size, rounds), "string")
        )

    @d.operation("GetChunk")
    def get_chunk(request):
        args = {child.name.local: child for child in request.body_root.children}
        offset = int(args["offset"].value)
        length = int(args["length"].value)
        piece = blob[offset : offset + length]
        return element(
            "GetChunkResponse",
            leaf("offset", offset, "int"),
            leaf("data", base64.b64encode(piece).decode("ascii"), "string"),
        )

    @d.operation("BlobInfo")
    def blob_info(request):
        return element(
            "BlobInfoResponse",
            leaf("size", len(blob), "int"),
            leaf("digest", hashlib.sha256(blob).hexdigest(), "string"),
        )

    return d


def decode_chunk(response) -> bytes:
    """Extract the byte range from a ``GetChunkResponse`` envelope."""
    args = {child.name.local: child for child in response.body_root.children}
    return base64.b64decode(args["data"].value)


class NodeProcess:
    """Handle on one spawned node: live address, graceful or abrupt stop."""

    def __init__(self, process: subprocess.Popen, host: str, port: int, name: str):
        self.process = process
        self.host = host
        self.port = port
        self.name = name

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def connect(self):
        from repro.transport.sockets import connect_tcp

        return connect_tcp(self.host, self.port)

    def replica(self):
        from repro.fed.balancer import Replica

        return Replica(self.name, self.connect, host=f"{self.host}:{self.port}")

    def kill(self) -> None:
        """Abrupt death (SIGKILL) — in-flight exchanges are lost."""
        self.process.kill()
        self.process.wait(timeout=10)

    def stop(self) -> None:
        """Graceful stop: close stdin (the node drains and exits)."""
        if self.process.poll() is not None:
            return
        try:
            self.process.stdin.close()
        except OSError:
            pass
        try:
            self.process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=10)

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


def spawn_nodes(
    count: int,
    *,
    workers: int = 2,
    queue_depth: int = 16,
    core: str = "threaded",
    blob_seed: int = DEFAULT_BLOB_SEED,
    blob_size: int = DEFAULT_BLOB_SIZE,
    python: str = sys.executable,
) -> list[NodeProcess]:
    """Spawn ``count`` nodes on ephemeral ports; addresses are live on return.

    Each child prints its ``ADDR`` line after binding and before its
    serving loop; this function blocks on that line per child, so no
    caller ever needs to poll a port.
    """
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing else src_root + os.pathsep + existing

    nodes: list[NodeProcess] = []
    try:
        for index in range(count):
            process = subprocess.Popen(
                [
                    python,
                    "-m",
                    "repro.fed.node",
                    "--port",
                    "0",
                    "--workers",
                    str(workers),
                    "--queue-depth",
                    str(queue_depth),
                    "--core",
                    core,
                    "--blob-seed",
                    str(blob_seed),
                    "--blob-size",
                    str(blob_size),
                ],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                env=env,
                text=True,
            )
            line = process.stdout.readline().strip()
            parts = line.split()
            if len(parts) != 3 or parts[0] != "ADDR":
                process.kill()
                raise RuntimeError(f"node {index} failed to start: got {line!r}")
            nodes.append(
                NodeProcess(process, parts[1], int(parts[2]), f"fed-node-{index}")
            )
    except Exception:
        for node in nodes:
            node.kill()
        raise
    return nodes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Run one federation node")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--core", choices=("threaded", "aio"), default="threaded")
    parser.add_argument("--blob-seed", type=int, default=DEFAULT_BLOB_SEED)
    parser.add_argument("--blob-size", type=int, default=DEFAULT_BLOB_SIZE)
    args = parser.parse_args(argv)

    from repro.serve import ServeConfig, SoapServeService
    from repro.transport.sockets import TcpListener

    listener = TcpListener(host=args.host, port=args.port)
    service = SoapServeService(
        listener,
        fed_dispatcher(blob_seed=args.blob_seed, blob_size=args.blob_size),
        config=ServeConfig(
            core=args.core, workers=args.workers, queue_depth=args.queue_depth
        ),
        name=f"fed-node-{listener.port}",
    )
    # The atomic address handoff: the socket is already bound + listening
    # (TcpListener binds in its constructor), so a parent that has read
    # this line may connect immediately — before start() below returns.
    print(f"ADDR {listener.address[0]} {listener.port}", flush=True)
    service.start()
    try:
        sys.stdin.buffer.read()  # serve until the parent closes our stdin
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
