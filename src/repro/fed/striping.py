"""Multi-source striped transfers across federation replicas.

One large fetch is split into byte-range stripes and pulled
concurrently from several replicas at once — the xDFS/xDotGrid idea
layered over this framework's serve replicas instead of raw GridFTP
data channels.  Each source runs one puller thread claiming stripes
from a shared work queue, so a fast replica naturally takes more of
the transfer; a source that fails mid-transfer is abandoned and its
stripe re-queued for the survivors.

Timeout semantics are shared with :mod:`repro.gridftp.client`: a
transfer whose pullers stall past the budget raises the same
:class:`~repro.gridftp.errors.StripeTimeout`.  Every stripe is
length-checked and (optionally) digest-verified on arrival; each pull
runs under a ``fed.stripe`` span parented to the transfer's
``fed.fetch`` span, so a joined trace shows one tree per fetch spanning
every replica that contributed bytes.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.gridftp.errors import GridFTPError, StripeTimeout
from repro.obs.metrics import MetricsRegistry
from repro.transport.resilience import Deadline

#: A stripe source: (name, fetch) where ``fetch(offset, length)``
#: returns exactly ``length`` bytes of the object.
StripeSource = tuple[str, Callable[[int, int], bytes]]


class StripeVerificationError(GridFTPError):
    """A stripe arrived with the wrong length or digest."""


@dataclass
class StripeStats:
    """What a striped fetch actually did, per source."""

    total_bytes: int = 0
    stripes_total: int = 0
    stripes_by_source: dict[str, int] = field(default_factory=dict)
    requeued_stripes: int = 0
    failed_sources: list[str] = field(default_factory=list)
    duration_seconds: float = 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "total_bytes": self.total_bytes,
            "stripes_total": self.stripes_total,
            "stripes_by_source": dict(self.stripes_by_source),
            "requeued_stripes": self.requeued_stripes,
            "failed_sources": list(self.failed_sources),
            "duration_seconds": self.duration_seconds,
        }


def plan_stripes(size: int, stripe_size: int) -> list[tuple[int, int, int]]:
    """Split ``size`` bytes into ``(index, offset, length)`` stripes."""
    if size < 0:
        raise ValueError("size must be non-negative")
    if stripe_size <= 0:
        raise ValueError("stripe_size must be positive")
    return [
        (index, offset, min(stripe_size, size - offset))
        for index, offset in enumerate(range(0, size, stripe_size))
    ]


def stripe_digests(blob: bytes, stripe_size: int) -> list[str]:
    """Per-stripe sha256 hexdigests for verifying a striped fetch."""
    return [
        hashlib.sha256(blob[offset : offset + length]).hexdigest()
        for _index, offset, length in plan_stripes(len(blob), stripe_size)
    ]


def striped_fetch(
    sources: Sequence[StripeSource],
    size: int,
    *,
    stripe_size: int = 64 * 1024,
    stripe_timeout: float = 30.0,
    digests: Sequence[str] | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[bytes, StripeStats]:
    """Pull ``size`` bytes as stripes from several sources concurrently.

    Every stripe is length-checked; when ``digests`` (one sha256 hex per
    stripe, e.g. from :func:`stripe_digests`) is given each stripe is
    verified before it lands in the buffer — a source serving bad bytes
    is treated like a failed source and its stripe re-pulled elsewhere.

    Raises :class:`StripeTimeout` when pullers stall past
    ``stripe_timeout`` (same semantics as ``repro.gridftp.client``), or
    :class:`GridFTPError` when every source has failed with stripes
    still missing.
    """
    if not sources:
        raise ValueError("striped_fetch needs at least one source")
    stripes = plan_stripes(size, stripe_size)
    if digests is not None and len(digests) != len(stripes):
        raise ValueError(f"expected {len(stripes)} digests, got {len(digests)}")
    registry = metrics if metrics is not None else MetricsRegistry()
    stats = StripeStats(stripes_total=len(stripes))
    started = time.perf_counter()

    recorder = obs.get_recorder()
    with recorder.span(
        "fed.fetch",
        kind="logical",
        size=size,
        sources=len(sources),
        stripes=len(stripes),
    ) as fetch_span:
        buffer = bytearray(size)
        work: "queue.Queue[tuple[int, int, int]]" = queue.Queue()
        for stripe in stripes:
            work.put(stripe)
        lock = threading.Lock()
        remaining = [len(stripes)]
        done = threading.Event()
        errors: list[Exception] = []
        if not stripes:
            done.set()

        def pull(name: str, fetch: Callable[[int, int], bytes]) -> None:
            while not done.is_set():
                try:
                    item = work.get(timeout=0.02)
                except queue.Empty:
                    continue
                index, offset, length = item
                with recorder.span(
                    "fed.stripe",
                    kind="wire",
                    parent=fetch_span,
                    source=name,
                    stripe=index,
                    offset=offset,
                ) as stripe_span:
                    try:
                        data = fetch(offset, length)
                        if len(data) != length:
                            raise StripeVerificationError(
                                f"stripe {index} from {name}: expected {length} bytes, "
                                f"got {len(data)}"
                            )
                        if digests is not None:
                            got = hashlib.sha256(data).hexdigest()
                            if got != digests[index]:
                                raise StripeVerificationError(
                                    f"stripe {index} from {name}: digest mismatch "
                                    f"({got[:12]}… != {digests[index][:12]}…)"
                                )
                    except Exception as exc:
                        # This source is out: requeue the stripe for the
                        # survivors and stop pulling from it.
                        stripe_span.set("outcome", type(exc).__name__)
                        registry.counter(
                            "fed_stripe_failures_total", labels={"source": name}
                        ).add()
                        with lock:
                            errors.append(exc)
                            stats.requeued_stripes += 1
                            stats.failed_sources.append(name)
                        work.put(item)
                        return
                    stripe_span.set("outcome", "ok")
                    stripe_span.set("bytes", length)
                    registry.counter(
                        "fed_stripes_total", labels={"source": name}
                    ).add()
                    with lock:
                        buffer[offset : offset + length] = data
                        stats.total_bytes += length
                        stats.stripes_by_source[name] = (
                            stats.stripes_by_source.get(name, 0) + 1
                        )
                        remaining[0] -= 1
                        if remaining[0] == 0:
                            done.set()

        threads = [
            threading.Thread(
                target=pull, args=(name, fetch), name=f"fed-stripe-{name}", daemon=True
            )
            for name, fetch in sources
        ]
        for thread in threads:
            thread.start()

        budget = Deadline.after(stripe_timeout)
        for thread in threads:
            thread.join(timeout=max(0.0, budget.remaining()))
        stats.duration_seconds = time.perf_counter() - started
        fetch_span.set("bytes", stats.total_bytes)

        if not done.is_set():
            stalled = [thread.name for thread in threads if thread.is_alive()]
            if stalled:
                fetch_span.set("outcome", "stripe_timeout")
                raise StripeTimeout(
                    f"striped fetch stalled: {remaining[0]} of {len(stripes)} stripes "
                    f"missing after {stripe_timeout:.3f}s "
                    f"(stalled pullers: {', '.join(stalled)})"
                )
            fetch_span.set("outcome", "sources_exhausted")
            detail = f": {errors[0]}" if errors else ""
            raise GridFTPError(
                f"striped fetch failed: all {len(sources)} sources failed with "
                f"{remaining[0]} stripes missing{detail}"
            )
        done.set()  # release any puller still polling the queue
        fetch_span.set("outcome", "ok")
    return bytes(buffer), stats
