"""A GridFTP-like striped file transfer service.

The paper's separated scheme pulls netCDF files with the Globus GridFTP
C client; this package implements the behaviours that drive its measured
curves, as a real protocol over :mod:`repro.transport` channels:

* a **control channel** with a GSI-style multi-round-trip authentication
  handshake (:mod:`~repro.gridftp.auth`) — the fixed cost that dominates
  GridFTP's small-message response time in Figure 4;
* **MODE E-style striped data transfer**: the file is cut into blocks,
  each sent as ``(offset, length, flags)`` + payload over one of *n*
  parallel data channels; the receiver reassembles by offset and counts
  every backward reposition — the "seek" operations that degrade LAN
  parallel performance in Figure 5;
* single-stream transfer as the degenerate case ``n = 1``.

The client reports a :class:`~repro.gridftp.client.TransferStats` with
control round trips, auth rounds, per-stream bytes and out-of-order block
counts — exactly the quantities the experiment harness feeds into the
netsim cost model.
"""

from repro.gridftp.auth import (
    GSI_CRYPTO_TIME,
    AuthenticationError,
    HostCredential,
    client_handshake,
    server_handshake,
)
from repro.gridftp.client import GridFTPClient, TransferStats
from repro.gridftp.errors import GridFTPError, StripeTimeout
from repro.gridftp.server import GridFTPServer

__all__ = [
    "AuthenticationError",
    "GSI_CRYPTO_TIME",
    "GridFTPClient",
    "GridFTPError",
    "GridFTPServer",
    "HostCredential",
    "StripeTimeout",
    "TransferStats",
    "client_handshake",
    "server_handshake",
]
