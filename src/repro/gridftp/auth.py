"""GSI-style mutual authentication for the control channel.

The real GridFTP authenticates with GSI: an SSL handshake plus X.509
credential verification and delegation — several control-channel round
trips and hundreds of milliseconds of public-key cryptography on 2006-era
CPUs.  That cost is what flattens GridFTP's Figure 4 curve.

This module reproduces the *protocol shape* with symmetric primitives: a
mutual challenge-response over a shared host credential (HMAC-SHA256), run
as real messages over the channel so the round-trip count is observable,
followed by session-key derivation.  The public-key CPU cost, which
symmetric crypto does not reproduce, is exported as the calibrated
constant :data:`GSI_CRYPTO_TIME` for the harness to charge — the
substitution DESIGN.md documents.

Handshake (2 round trips after connection, plus the banner):

====  ======  ==============================================
step  sender  payload
====  ======  ==============================================
  0   server  banner ``GSIv1`` + server nonce
  1   client  client nonce + HMAC(cred, "client" ‖ nonces)
  2   server  HMAC(cred, "server" ‖ nonces) + OK
====  ======  ==============================================
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass

from repro.gridftp.errors import GridFTPError
from repro.transport.base import Channel, recv_exactly

#: Calibrated stand-in for GSI's public-key operations (certificate chain
#: verification + delegation) on the paper's 2.8 GHz Pentium 4 testbed.
#: Figure 4 shows ≈0.25 s of size-independent response time for SOAP +
#: GridFTP on a 0.2 ms-RTT LAN; subtracting the modelled round trips and
#: measured file handling leaves ≈0.21 s of handshake CPU.
GSI_CRYPTO_TIME = 0.21

#: Control-channel round trips consumed by the handshake (banner + 2).
GSI_HANDSHAKE_ROUND_TRIPS = 3

_BANNER = b"GSIv1"
_NONCE_LEN = 32


class AuthenticationError(GridFTPError):
    """Mutual authentication failed (bad credential or corrupt handshake)."""


@dataclass(frozen=True)
class HostCredential:
    """The shared secret standing in for a host certificate pair."""

    secret: bytes

    @classmethod
    def generate(cls) -> "HostCredential":
        return cls(os.urandom(32))

    def prove(self, role: bytes, server_nonce: bytes, client_nonce: bytes) -> bytes:
        return hmac.new(self.secret, role + server_nonce + client_nonce, hashlib.sha256).digest()


def server_handshake(channel: Channel, credential: HostCredential) -> bytes:
    """Run the server side; returns the derived session key."""
    server_nonce = os.urandom(_NONCE_LEN)
    channel.send_all(_BANNER + server_nonce)

    client_nonce = recv_exactly(channel, _NONCE_LEN)
    client_proof = recv_exactly(channel, 32)
    expected = credential.prove(b"client", server_nonce, client_nonce)
    if not hmac.compare_digest(client_proof, expected):
        channel.send_all(b"ERR!")
        raise AuthenticationError("client credential rejected")

    channel.send_all(credential.prove(b"server", server_nonce, client_nonce) + b"OK!!")
    return _session_key(credential, server_nonce, client_nonce)


def client_handshake(channel: Channel, credential: HostCredential) -> bytes:
    """Run the client side; returns the derived session key."""
    banner = recv_exactly(channel, len(_BANNER))
    if banner != _BANNER:
        raise AuthenticationError(f"unexpected banner {banner!r}")
    server_nonce = recv_exactly(channel, _NONCE_LEN)

    client_nonce = os.urandom(_NONCE_LEN)
    channel.send_all(client_nonce + credential.prove(b"client", server_nonce, client_nonce))

    reply = recv_exactly(channel, 4)
    if reply == b"ERR!":
        raise AuthenticationError("server rejected our credential")
    server_proof = reply + recv_exactly(channel, 32 - 4 + 4)
    proof, status = server_proof[:32], server_proof[32:]
    if status != b"OK!!" or not hmac.compare_digest(
        proof, credential.prove(b"server", server_nonce, client_nonce)
    ):
        raise AuthenticationError("server credential rejected")
    return _session_key(credential, server_nonce, client_nonce)


def _session_key(credential: HostCredential, server_nonce: bytes, client_nonce: bytes) -> bytes:
    return hmac.new(
        credential.secret, b"session" + server_nonce + client_nonce, hashlib.sha256
    ).digest()
