"""GridFTP-like client: authenticate, then retrieve with n parallel streams.

The receiver reassembles striped blocks into one buffer the way a real
GridFTP receiver lands them in one file: a shared write cursor, with every
block whose offset is not the cursor counting as a *seek* — the quantity
[Allcock et al. 2005] and the paper blame for LAN parallel degradation.
:class:`TransferStats` reports it alongside the control-channel round-trip
count and per-direction byte totals, which is everything the experiment
harness needs to model wire time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.gridftp.auth import (
    GSI_HANDSHAKE_ROUND_TRIPS,
    HostCredential,
    client_handshake,
)
from repro.gridftp.errors import GridFTPError, StripeTimeout
from repro.gridftp.server import BLOCK_HEADER, EOF_FLAG
from repro.transport.base import BufferedChannel, Channel, recv_exactly
from repro.transport.resilience import Deadline, as_deadline


@dataclass
class TransferStats:
    """Observable costs of one client session/transfer."""

    control_round_trips: int = 0  #: command/response exchanges incl. handshake
    auth_round_trips: int = GSI_HANDSHAKE_ROUND_TRIPS
    data_bytes: int = 0  #: payload bytes received
    block_header_bytes: int = 0  #: striping overhead on the wire
    n_streams: int = 1
    blocks_received: int = 0
    out_of_order_blocks: int = 0  #: receiver seeks (offset ≠ write cursor)

    @property
    def wire_bytes(self) -> int:
        return self.data_bytes + self.block_header_bytes


class GridFTPClient:
    """Client session over one control connection.

    Parameters
    ----------
    connect_control:
        ``() -> Channel`` for the control connection.
    connect_data:
        ``(address_string) -> Channel`` for each advertised data channel.
    credential:
        Shared host credential; must match the server's.
    stripe_timeout:
        Ceiling in seconds on waiting for the stripe workers of one
        retrieval; a worker still alive past it raises
        :class:`~repro.gridftp.errors.StripeTimeout` instead of silently
        returning a buffer with holes.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`: retrievals are
        counted into ``gridftp_transfers_total{streams,status}``,
        ``gridftp_bytes_total`` and ``gridftp_out_of_order_blocks_total``.
    """

    def __init__(
        self,
        connect_control: Callable[[], Channel],
        connect_data: Callable[[str], Channel],
        credential: HostCredential,
        *,
        stripe_timeout: float = 60.0,
        metrics=None,
    ) -> None:
        self._connect_data = connect_data
        self._credential = credential
        self._stripe_timeout = stripe_timeout
        self.metrics = metrics
        self.stats = TransferStats()
        self._control = BufferedChannel(connect_control())
        client_handshake(self._control, credential)
        self.stats.control_round_trips += GSI_HANDSHAKE_ROUND_TRIPS

    # ------------------------------------------------------------------
    # control commands

    def _command(self, line: str) -> str:
        self._control.send_all(line.encode("utf-8") + b"\n")
        reply = str(self._control.recv_until(b"\n", max_bytes=1 << 16), "utf-8").strip()
        self.stats.control_round_trips += 1
        return reply

    def size(self, path: str) -> int:
        reply = self._command(f"SIZE {path}")
        code, _, rest = reply.partition(" ")
        if code != "213":
            raise GridFTPError(f"SIZE failed: {reply}")
        return int(rest)

    def quit(self) -> None:
        try:
            self._command("QUIT")
        finally:
            self._control.close()

    close = quit

    # ------------------------------------------------------------------
    # retrieval

    def retrieve(self, path: str, n_streams: int = 1, *, deadline=None) -> bytes:
        """Fetch ``path`` over ``n_streams`` parallel data channels.

        ``deadline`` (seconds or a Deadline) tightens the stripe-worker
        wait below :attr:`stripe_timeout` when it expires sooner.
        """
        if self.metrics is None:
            return self._retrieve(path, n_streams, deadline=deadline)
        blocks_before = self.stats.out_of_order_blocks
        bytes_before = self.stats.data_bytes
        status = "ok"
        try:
            return self._retrieve(path, n_streams, deadline=deadline)
        except Exception as exc:
            status = type(exc).__name__
            raise
        finally:
            self.metrics.counter(
                "gridftp_transfers_total",
                labels={"streams": str(n_streams), "status": status},
            ).add()
            self.metrics.counter("gridftp_bytes_total").add(
                self.stats.data_bytes - bytes_before
            )
            out_of_order = self.stats.out_of_order_blocks - blocks_before
            if out_of_order:
                self.metrics.counter("gridftp_out_of_order_blocks_total").add(
                    out_of_order
                )

    def _retrieve(self, path: str, n_streams: int, *, deadline=None) -> bytes:
        dl = as_deadline(deadline)
        recorder = obs.get_recorder()
        with recorder.span(
            "gridftp.retrieve", kind="logical", path=path, streams=n_streams
        ) as retrieve_span:
            size = self.size(path)
            reply = self._command(f"RETR {path} {n_streams}")
            code, _, rest = reply.partition(" ")
            if code != "150":
                raise GridFTPError(f"RETR failed: {reply}")
            fields = rest.split()
            advertised = int(fields[0])
            addresses = fields[1:]
            if advertised != n_streams or len(addresses) != n_streams:
                raise GridFTPError(
                    f"server advertised {advertised} streams, asked {n_streams}"
                )

            buffer = bytearray(size)
            cursor_lock = threading.Lock()
            state = {"cursor": 0}
            self.stats.n_streams = n_streams
            errors: list[Exception] = []

            def pull(index: int, address: str) -> None:
                # the worker thread adopts the retrieval as its explicit
                # parent — span nesting survives the thread boundary
                with recorder.span(
                    "gridftp.stripe",
                    kind="cpu",
                    parent=retrieve_span,
                    stripe=index,
                    address=address,
                ) as stripe_span:
                    blocks = bytes_landed = 0
                    try:
                        channel = self._connect_data(address)
                    except Exception as exc:  # noqa: BLE001 - collected below
                        errors.append(exc)
                        return
                    try:
                        while True:
                            header = recv_exactly(channel, BLOCK_HEADER.size)
                            offset, length, flags = BLOCK_HEADER.unpack(header)
                            payload = recv_exactly(channel, length) if length else b""
                            if offset + length > size:
                                raise GridFTPError(
                                    f"block [{offset}, {offset + length}) beyond file of {size}"
                                )
                            with cursor_lock:
                                if length:
                                    if offset != state["cursor"]:
                                        self.stats.out_of_order_blocks += 1
                                        obs.counter("gridftp.out_of_order_blocks").add()
                                    buffer[offset : offset + length] = payload
                                    state["cursor"] = offset + length
                                    self.stats.blocks_received += 1
                                    self.stats.data_bytes += length
                                    blocks += 1
                                    bytes_landed += length
                                self.stats.block_header_bytes += BLOCK_HEADER.size
                            if flags & EOF_FLAG:
                                return
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)
                    finally:
                        stripe_span.set("blocks", blocks).set("bytes", bytes_landed)
                        channel.close()

            threads = [
                threading.Thread(target=pull, args=(i, addr), daemon=True)
                for i, addr in enumerate(addresses)
            ]
            for thread in threads:
                thread.start()
            wait = Deadline.after(self._stripe_timeout)
            for thread in threads:
                budget = wait.remaining()
                if dl is not None:
                    budget = min(budget, dl.remaining())
                thread.join(timeout=max(0.0, budget))
            stalled = [thread for thread in threads if thread.is_alive()]
            if stalled:
                # a join timeout must never be swallowed: the buffer may have
                # holes where the stalled stripes were supposed to land
                raise StripeTimeout(
                    f"{len(stalled)}/{len(threads)} stripe workers still running "
                    f"after {self._stripe_timeout:.1f}s; "
                    f"{self.stats.blocks_received} blocks "
                    f"({self.stats.data_bytes}/{size} bytes) landed",
                    stats=self.stats,
                )

            final = str(self._control.recv_until(b"\n", max_bytes=4096), "utf-8").strip()
            self.stats.control_round_trips += 1  # the 226 completion line
            if errors:
                raise GridFTPError(f"data stream failed: {errors[0]}")
            if not final.startswith("226"):
                raise GridFTPError(f"transfer did not complete: {final}")
            retrieve_span.set("bytes", size).set(
                "out_of_order_blocks", self.stats.out_of_order_blocks
            )
            return bytes(buffer)
