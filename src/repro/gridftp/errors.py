"""Exception hierarchy for the GridFTP-like transfer service."""


class GridFTPError(Exception):
    """Base class for control- and data-channel protocol errors."""


class StripeTimeout(GridFTPError):
    """A stripe worker failed to finish within the allowed time.

    Carries the partial-transfer state observed at the timeout on
    :attr:`stats` (a :class:`~repro.gridftp.client.TransferStats`), so
    callers can report how much of the file actually landed.
    """

    def __init__(self, message: str, *, stats=None) -> None:
        super().__init__(message)
        self.stats = stats
