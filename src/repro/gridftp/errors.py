"""Exception hierarchy for the GridFTP-like transfer service."""


class GridFTPError(Exception):
    """Base class for control- and data-channel protocol errors."""
