"""GridFTP-like server: control channel + striped data senders.

Protocol (after the :mod:`~repro.gridftp.auth` handshake), line-oriented
like FTP::

    C: SIZE <path>
    S: 213 <bytes>                     | 550 <error>
    C: RETR <path> <n_streams>
    S: 150 <n> <data-addr-1> ... <data-addr-n>
       (client connects each data address; server stripes blocks)
    S: 226 Transfer complete           (on the control channel, at the end)
    C: QUIT
    S: 221 Goodbye

Data block framing on each stream: ``offset:u64be  length:u32be  flags:u8``
then ``length`` payload bytes; ``flags & 1`` marks the stream's final
block (MODE E's EOF semantics).  Blocks are cut every ``block_size`` bytes
and dealt round-robin over the streams, each stream sent by its own
thread — so a multi-stream client genuinely observes interleaved,
out-of-order arrivals.
"""

from __future__ import annotations

import struct
import threading
from typing import Callable

from repro.gridftp.auth import AuthenticationError, HostCredential, server_handshake
from repro.transport.base import BufferedChannel, Channel, Listener, TransportError

BLOCK_HEADER = struct.Struct(">QIB")
EOF_FLAG = 0x01

#: Default stripe block size (bytes); GridFTP deployments of the era used
#: 64 KiB-1 MiB blocks — 256 KiB matches the netsim profile.
DEFAULT_BLOCK_SIZE = 262144


class GridFTPServer:
    """Serve published byte blobs over the striped protocol.

    Parameters
    ----------
    control_listener:
        Listener for control-channel connections.
    data_listener_factory:
        ``() -> (address_string, Listener)`` — allocates one data-channel
        rendezvous point.  For :class:`~repro.transport.MemoryNetwork` this
        registers a name; for TCP it binds an ephemeral port.
    credential:
        Shared host credential for the GSI-style handshake.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`: served retrievals
        land in ``gridftp_server_transfers_total{status}`` and
        ``gridftp_server_bytes_total``; expose the registry via
        :func:`repro.transport.http.server.make_admin_server`.
    """

    def __init__(
        self,
        control_listener: Listener,
        data_listener_factory: Callable[[], tuple[str, Listener]],
        credential: HostCredential,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        name: str = "gridftp",
        metrics=None,
    ) -> None:
        self._control_listener = control_listener
        self._data_listener_factory = data_listener_factory
        self._credential = credential
        self._block_size = block_size
        self._name = name
        self.metrics = metrics
        self._store: dict[str, bytes] = {}
        self._running = False
        self._thread: threading.Thread | None = None

    def _count_transfer(self, status: str, n_bytes: int = 0) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "gridftp_server_transfers_total", labels={"status": status}
        ).add()
        if n_bytes:
            self.metrics.counter("gridftp_server_bytes_total").add(n_bytes)

    # ------------------------------------------------------------------

    def publish(self, path: str, data: bytes) -> None:
        """Make a blob retrievable under ``path``."""
        self._store[path] = bytes(data)

    def unpublish(self, path: str) -> None:
        self._store.pop(path, None)

    def start(self) -> "GridFTPServer":
        self._running = True
        self._thread = threading.Thread(target=self._accept_loop, name=self._name, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        self._control_listener.close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "GridFTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                channel = self._control_listener.accept()
            except TransportError:
                return
            threading.Thread(
                target=self._serve_control,
                args=(channel,),
                name=f"{self._name}-ctrl",
                daemon=True,
            ).start()

    def _serve_control(self, raw_channel: Channel) -> None:
        channel = BufferedChannel(raw_channel)
        try:
            try:
                server_handshake(channel, self._credential)
            except (AuthenticationError, TransportError):
                return
            while True:
                try:
                    line = channel.recv_until(b"\n", max_bytes=4096)
                except TransportError:
                    return
                command = str(line, "utf-8").strip()
                if not command:
                    continue
                verb, _, rest = command.partition(" ")
                verb = verb.upper()
                if verb == "QUIT":
                    channel.send_all(b"221 Goodbye\n")
                    return
                if verb == "SIZE":
                    self._cmd_size(channel, rest)
                elif verb == "RETR":
                    self._cmd_retr(channel, rest)
                else:
                    channel.send_all(f"500 Unknown command {verb}\n".encode())
        finally:
            raw_channel.close()

    # ------------------------------------------------------------------

    def _cmd_size(self, channel: BufferedChannel, path: str) -> None:
        data = self._store.get(path.strip())
        if data is None:
            channel.send_all(f"550 No such file {path.strip()}\n".encode())
            return
        channel.send_all(f"213 {len(data)}\n".encode())

    def _cmd_retr(self, channel: BufferedChannel, rest: str) -> None:
        parts = rest.rsplit(" ", 1)
        if len(parts) != 2:
            channel.send_all(b"501 Usage: RETR <path> <n_streams>\n")
            return
        path, streams_text = parts[0].strip(), parts[1]
        try:
            n_streams = int(streams_text)
        except ValueError:
            channel.send_all(f"501 Bad stream count {streams_text!r}\n".encode())
            return
        if not 1 <= n_streams <= 64:
            channel.send_all(b"501 Stream count must be in [1, 64]\n")
            return
        data = self._store.get(path)
        if data is None:
            self._count_transfer("no_such_file")
            channel.send_all(f"550 No such file {path}\n".encode())
            return

        rendezvous = [self._data_listener_factory() for _ in range(n_streams)]
        addresses = " ".join(addr for addr, _listener in rendezvous)
        channel.send_all(f"150 {n_streams} {addresses}\n".encode())

        senders: list[threading.Thread] = []
        failures: list[Exception] = []
        for stream_index, (_addr, listener) in enumerate(rendezvous):
            thread = threading.Thread(
                target=self._send_stream,
                args=(listener, data, stream_index, n_streams, failures),
                name=f"{self._name}-data-{stream_index}",
                daemon=True,
            )
            thread.start()
            senders.append(thread)
        for thread in senders:
            thread.join(timeout=60)
        if failures:
            self._count_transfer("failed")
            channel.send_all(f"426 Transfer failed: {failures[0]}\n".encode())
        else:
            self._count_transfer("ok", len(data))
            channel.send_all(b"226 Transfer complete\n")

    def _send_stream(
        self,
        listener: Listener,
        data: bytes,
        stream_index: int,
        n_streams: int,
        failures: list,
    ) -> None:
        try:
            channel = listener.accept()
        except TransportError as exc:
            failures.append(exc)
            listener.close()
            return
        try:
            block_size = self._block_size
            n_blocks = max(1, -(-len(data) // block_size))
            # round-robin deal: stream k sends blocks k, k+n, k+2n, ...
            my_blocks = range(stream_index, n_blocks, n_streams)
            sent_any = False
            blocks = list(my_blocks)
            for position, block_index in enumerate(blocks):
                offset = block_index * block_size
                payload = data[offset : offset + block_size]
                flags = EOF_FLAG if position == len(blocks) - 1 else 0
                header = BLOCK_HEADER.pack(offset, len(payload), flags)
                channel.send_all(header + payload)
                sent_any = True
            if not sent_any:
                channel.send_all(BLOCK_HEADER.pack(0, 0, EOF_FLAG))
        except TransportError as exc:
            failures.append(exc)
        finally:
            channel.close()
            listener.close()
