"""Experiment harness: regenerates every table and figure of the paper.

Methodology (the substitution DESIGN.md documents): each scheme's response
time is the sum of

* **measured CPU segments** — the real codecs, verification, netCDF and
  file handling execute on this machine and are timed with
  ``perf_counter`` (median of several repeats for small workloads); and
* **modelled wire/disk segments** — computed by :mod:`repro.netsim` from
  the *exact byte counts and round-trip counts the real protocol code
  produces* (HTTP headers are built and measured, the GridFTP client's
  observed stats feed the striped-transfer model).

One module per experiment:

=========  ==========================================  =====================
paper      what                                        module
=========  ==========================================  =====================
Table 1    serialization sizes & overheads             :mod:`~repro.harness.table1`
Figure 4   LAN response time, model size 0..1000       :mod:`~repro.harness.figure4`
Figure 5   LAN bandwidth, model size 1365..5591040     :mod:`~repro.harness.figure5`
Figure 6   WAN bandwidth, same sweep                   :mod:`~repro.harness.figure6`
=========  ==========================================  =====================

Each module exposes ``run(...) -> ExperimentResult`` and can be executed
directly (``python -m repro.harness.figure4``) to print the regenerated
rows/series next to the paper's qualitative expectations.
"""

from repro.harness.runners import (
    SCHEME_BXSA_TCP,
    SCHEME_SOAP_GRIDFTP,
    SCHEME_SOAP_HTTP_CHANNEL,
    SCHEME_XML_HTTP,
    SchemeResult,
    run_scheme,
)
from repro.harness.report import ExperimentResult, render_series_table, render_table

__all__ = [
    "ExperimentResult",
    "SCHEME_BXSA_TCP",
    "SCHEME_SOAP_GRIDFTP",
    "SCHEME_SOAP_HTTP_CHANNEL",
    "SCHEME_XML_HTTP",
    "SchemeResult",
    "render_series_table",
    "render_table",
    "run_scheme",
]
