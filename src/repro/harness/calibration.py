"""CPU-era calibration for the hybrid measured+modelled methodology.

The harness mixes two clocks: CPU segments are *measured on this machine*,
while wire/disk segments are *modelled with the paper's 2006 parameters*
(0.2/5.75 ms RTTs, Fast-Ethernet-class capacity).  Left unscaled, that mix
systematically flatters CPU-bound schemes — a 2020s core converts floats to
text an order of magnitude faster than the paper's 2.8 GHz Pentium 4, so
curves whose *shape* depends on the CPU:wire ratio (the Figure 4 crossover
of XML/HTTP above SOAP+HTTP) would shift.

``CPU_SCALE`` multiplies every measured CPU segment to restore the era's
ratio.  It is one global constant, applied uniformly to every scheme (so it
can reorder nothing by itself), calibrated once against an anchor the paper
states directly: on the LAN, SOAP over BXSA/TCP saturates a single untuned
TCP stream (Figure 5), i.e. its CPU cost is a small fraction (~10 %) of its
wire time at 64 MB — which puts the factor near 10 for this hardware.

Override with the ``REPRO_CPU_SCALE`` environment variable (set it to 1 to
see raw modern-hardware measurements).
"""

from __future__ import annotations

import os

#: Default measured→2006 CPU scale (see module docstring).  Calibrated
#: against two anchors at once: Figure 5's "BXSA/TCP saturates a single
#: untuned stream" (CPU ≪ wire at 64 MB — pushes the factor down) and
#: Figure 4's XML-over-HTTP crossover above SOAP+HTTP by model size 1000
#: (CPU-driven — pushes it up); 7 satisfies both on the reference machine.
DEFAULT_CPU_SCALE = 7.0


def cpu_scale() -> float:
    """The active CPU scale factor (env-overridable)."""
    raw = os.environ.get("REPRO_CPU_SCALE")
    if raw is None:
        return DEFAULT_CPU_SCALE
    value = float(raw)
    if value <= 0:
        raise ValueError(f"REPRO_CPU_SCALE must be positive, got {raw!r}")
    return value
