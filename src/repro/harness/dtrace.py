"""Distributed-tracing demo: one process, two observed roles, one trace.

The smallest end-to-end proof of the cross-process tracing subsystem:
a live :class:`~repro.serve.SoapServeService` (either serving core) and a
SOAP client run in one interpreter but record into *separate*
:class:`~repro.obs.TraceRecorder`\\ s with distinct service/origin
identities — the server's threads report to the process-global recorder,
the client thread to a thread-pinned one — so the two trace files look
exactly like two processes' files.  The client's context crosses the
wire in the ``X-Repro-Trace`` header, the server's root span joins it,
and :func:`repro.obs.analyze.join_traces` must reassemble one tree:

* one trace id across every linked span;
* the server's serve span parented under the client's wire span;
* ``wire_seconds`` (client span − server span) non-negative;
* the client's segment charges summing to its reported total;
* the server's RED histogram carrying an exemplar naming that trace id.

``tools/dtrace_smoke.py`` runs this for both cores inside ``verify.sh``;
``figure_load --distributed-trace`` / ``figure_stream
--distributed-trace`` expose the same demo from the figure CLIs.
"""

from __future__ import annotations

import os

from repro import obs
from repro.core.client import SoapHttpClient
from repro.core.dispatcher import Dispatcher
from repro.core.envelope import SoapEnvelope
from repro.obs.analyze import join_traces, load_documents, reconcile
from repro.serve import ServeConfig, SoapServeService
from repro.transport.sockets import TcpListener, connect_tcp
from repro.xdm import element, leaf

#: Fixed identities so demo trace files (and their ids) are reproducible.
CLIENT_ORIGIN = "c11e0001"
SERVER_ORIGIN = "5e20e002"


def _echo_dispatcher() -> Dispatcher:
    d = Dispatcher()

    @d.operation("Echo")
    def echo(request: SoapEnvelope):
        return element("EchoResponse", *request.body_root.children)

    return d


def _stream_marker_events() -> None:
    """A small sink-driven streamed encode: stamps first/last chunk events
    on the current span (the streamed pipeline's trace markers)."""
    from repro.bxsa.stream import BXSAStreamWriter

    pieces: list[bytes] = []
    writer = BXSAStreamWriter(sink=pieces.append, chunk_size=256)
    writer.start_document()
    writer.start_element("payload")
    writer.array("values", list(range(512)), "int")
    writer.end_element()
    writer.end_document()


def run_distributed_trace_demo(
    core: str = "threaded",
    trace_dir: str | None = None,
    repeats: int = 3,
    streamed_markers: bool = False,
) -> dict:
    """Run the demo against a live server; returns the verdict dict.

    Keys: ``ok`` (bool), ``problems`` (list of strings), ``trace_id``,
    ``wire_seconds``, ``client_trace``/``server_trace`` (paths, when
    ``trace_dir`` given), ``join`` (the raw :func:`join_traces` result).
    """
    problems: list[str] = []

    client_rec = obs.TraceRecorder(service="client", origin=CLIENT_ORIGIN)
    server_rec = obs.TraceRecorder(service="serve", origin=SERVER_ORIGIN)

    previous = obs.set_recorder(server_rec)
    try:
        listener = TcpListener()
        host, port = listener.address
        service = SoapServeService(
            listener,
            _echo_dispatcher(),
            config=ServeConfig(core=core, workers=2, queue_depth=8),
            metrics=server_rec.metrics,
        ).start()
        try:
            with obs.thread_recorder(client_rec):
                client = SoapHttpClient(lambda: connect_tcp(host, port))
                try:
                    with obs.span(
                        "exchange", kind="logical", scheme=f"dtrace-{core}"
                    ) as root:
                        for n in range(repeats):
                            response = client.call(
                                SoapEnvelope.wrap(element("Echo", leaf("n", n, "int")))
                            )
                            if response.body_root.name.local != "EchoResponse":
                                problems.append(
                                    f"unexpected response {response.body_root.name.local!r}"
                                )
                        if streamed_markers:
                            with obs.span("stream.encode", kind="cpu"):
                                _stream_marker_events()
                finally:
                    client.close()

                # segment accounting: the measured total decomposes into
                # the wire round trips and everything around them, so the
                # trace still *explains* the reported latency exactly
                total = root.seconds
                wire_trips = sum(
                    sp.seconds for sp in client_rec.spans if sp.name == "http.request"
                )
                client_rec.charge(
                    "client: prepare+decode",
                    total - wire_trips,
                    kind="cpu",
                    parent=root,
                    segment=True,
                )
                client_rec.charge(
                    "wire+server round trips",
                    wire_trips,
                    kind="wire",
                    parent=root,
                    segment=True,
                )
                root.attributes["reported_total_seconds"] = total
        finally:
            service.stop()
    finally:
        obs.set_recorder(previous)

    # ---------------------------------------------------------------
    # assemble and check

    client_doc = obs.trace_dict(client_rec, meta={"demo": f"dtrace-{core}"})
    server_doc = obs.trace_dict(server_rec, meta={"demo": f"dtrace-{core}"})

    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
        client_path = os.path.join(trace_dir, f"dtrace-{core}-client.json")
        server_path = os.path.join(trace_dir, f"dtrace-{core}-server.json")
        obs.write_trace(client_path, client_rec, meta={"demo": f"dtrace-{core}"})
        obs.write_trace(server_path, server_rec, meta={"demo": f"dtrace-{core}"})
        client_doc = load_documents(client_path)[0]
        server_doc = load_documents(server_path)[0]
    else:
        client_path = server_path = None

    joined = join_traces([client_doc, server_doc])
    problems.extend(joined["problems"])

    if len(joined["links"]) != repeats:
        problems.append(
            f"expected {repeats} cross-process links, found {len(joined['links'])}"
        )
    if len(joined["trace_ids"]) != 1:
        problems.append(f"expected one trace id, saw {joined['trace_ids']}")

    segment_sum, reported, ok = reconcile(client_doc)
    if not ok:
        problems.append(
            f"client segments sum {segment_sum:.9f}s != reported {reported}"
        )

    trace_id = joined["trace_ids"][0] if joined["trace_ids"] else None
    wire_seconds = sum(link["wire_seconds"] for link in joined["links"])

    # the server's RED histogram must carry an exemplar naming this trace
    exemplar_hit = False
    for key, snap in server_rec.metrics.snapshot()["histograms"].items():
        if key.startswith("soap_request_seconds") and "exemplar" in snap:
            if snap["exemplar"]["trace_id"] == trace_id:
                exemplar_hit = True
    if not exemplar_hit:
        problems.append(
            f"no soap_request_seconds exemplar references trace {trace_id}"
        )

    if streamed_markers:
        event_names = [
            e.name for sp in client_rec.spans for e in sp.events
        ]
        if "stream.first_chunk" not in event_names or "stream.last_chunk" not in event_names:
            problems.append(
                f"streamed markers missing (events seen: {sorted(set(event_names))})"
            )

    return {
        "ok": not problems,
        "problems": problems,
        "trace_id": trace_id,
        "wire_seconds": wire_seconds,
        "client_trace": client_path,
        "server_trace": server_path,
        "join": joined,
    }


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI shim
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--core", choices=("threaded", "aio"), default="threaded")
    parser.add_argument("--trace-dir", default=None)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    result = run_distributed_trace_demo(
        core=args.core, trace_dir=args.trace_dir, repeats=args.repeats
    )
    for problem in result["problems"]:
        print(f"PROBLEM: {problem}")
    print(
        f"dtrace[{args.core}]: trace {result['trace_id']} "
        f"wire {result['wire_seconds'] * 1e3:.3f}ms "
        f"[{'OK' if result['ok'] else 'FAIL'}]"
    )
    return 0 if result["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(None))
