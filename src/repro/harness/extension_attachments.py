"""Extension experiment: the attachment solution the paper skipped.

Footnote 1 of §6: "We skip the tests of the attachment solution, since it
is not widely adopted by the scientific applications and furthermore in
terms of performance it should be close to SOAP with HTTP data channel
solution."  That is an *untested assertion* — this experiment tests it,
with the two packaging variants the era actually offered:

* ``swa-raw`` — SwA/DIME-style: the SOAP envelope plus the two arrays as
  *raw binary* multipart parts referenced by ``cid:`` (no base64, no
  second channel, no files);
* ``swa-base64`` — the naive WS-Attachment the paper's §1 describes
  ("the data in the base64 format is pushed to the application side within
  the same channel of control"): arrays base64-lifted into the package.

Finding (shape-checked): the paper's assertion holds for the *base64*
variant — packaging cost and the +33 % wire inflation land it in
SOAP+HTTP-channel territory — while raw binary parts behave like
BXSA-over-HTTP (close to the unified scheme, because they avoid every
conversion).  In other words, what the attachment solution costs depends
entirely on whether the packaging re-encodes the payload — the same axis
the paper's whole argument turns on.
"""

from __future__ import annotations

import base64

import numpy as np

from repro.core.envelope import SoapEnvelope
from repro.core.policies import XMLEncoding
from repro.harness import overheads
from repro.harness.measure import timed_median
from repro.harness.report import ExperimentResult, ShapeCheck, render_series_table
from repro.harness.runners import (
    SCHEME_BXSA_TCP,
    SCHEME_SOAP_HTTP_CHANNEL,
    SchemeResult,
    _repeats_for,
    run_scheme,
)
from repro.netsim import LAN, TimeBreakdown, connection_setup_time, transfer_time
from repro.transport.attachments import Attachment, SwaPackage
from repro.workloads.lead import LeadDataset, lead_dataset
from repro.xdm.builder import element, leaf
from repro.xdm.path import children_named

SCHEME_SWA_RAW = "soap+swa-raw"
SCHEME_SWA_B64 = "soap+swa-base64"


def _reference_envelope(dataset: LeadDataset, mode: str) -> SoapEnvelope:
    return SoapEnvelope.wrap(
        element(
            "VerifyAttached",
            leaf("count", dataset.model_size, "int"),
            leaf("mode", mode, "string"),
            leaf("indexRef", "cid:index", "string"),
            leaf("valuesRef", "cid:values", "string"),
        )
    )


def run_attachment(
    dataset: LeadDataset,
    profile=LAN,
    *,
    base64_mode: bool = False,
    repeats: int | None = None,
) -> SchemeResult:
    """One attachment-scheme invocation: package, POST, verify, respond."""
    repeats = repeats if repeats is not None else _repeats_for(dataset.model_size)
    encoding = XMLEncoding()
    tb = TimeBreakdown()
    mode = "base64" if base64_mode else "raw"

    # -- client: build the package -------------------------------------
    def build_package() -> bytes:
        if base64_mode:
            index_part = base64.b64encode(dataset.index.tobytes())
            values_part = base64.b64encode(dataset.values.tobytes())
        else:
            index_part = dataset.index.tobytes()
            values_part = dataset.values.tobytes()
        envelope_payload = encoding.encode(_reference_envelope(dataset, mode).to_document())
        package = SwaPackage(
            envelope_payload,
            encoding.content_type,
            [
                Attachment("index", index_part, "application/x-int32-array"),
                Attachment("values", values_part, "application/x-float64-array"),
            ],
        )
        return package.to_bytes()

    t, package_bytes = timed_median(build_package, repeats)
    tb.charge("client package", t)

    # -- wire: one POST carrying the package ----------------------------
    req_wire = overheads.http_post_bytes(len(package_bytes), "multipart/related")
    tb.charge("wire: connect", connection_setup_time(profile))
    tb.charge("wire: request", transfer_time(profile, req_wire))

    # -- server: unpack, rebuild arrays, verify -------------------------
    def serve() -> object:
        package = SwaPackage.from_bytes(package_bytes)
        envelope = SoapEnvelope.from_document(encoding.decode(package.envelope_payload))
        body = envelope.body_root
        index_raw = package.attachment(str(children_named(body, "indexRef")[0].value)).data
        values_raw = package.attachment(str(children_named(body, "valuesRef")[0].value)).data
        if str(children_named(body, "mode")[0].value) == "base64":
            index_raw = base64.b64decode(index_raw)
            values_raw = base64.b64decode(values_raw)
        rebuilt = LeadDataset(
            np.frombuffer(index_raw, dtype="i4"),
            np.frombuffer(values_raw, dtype="f8"),
        )
        return rebuilt.verify()

    t, record = timed_median(serve, repeats)
    tb.charge("server unpack+verify", t)
    if not record["ok"] or record["count"] != dataset.model_size:
        raise AssertionError(f"verification failed: {record}")

    # -- response: a small result envelope ------------------------------
    from repro.services.verification import VerificationResult

    result_env = SoapEnvelope.wrap(VerificationResult.from_record(record).to_element())

    def encode_response():
        return encoding.encode(result_env.to_document())

    t, response_payload = timed_median(encode_response, repeats)
    tb.charge("server encode", t)
    t, _ = timed_median(
        lambda: SoapEnvelope.from_document(encoding.decode(response_payload)), repeats
    )
    tb.charge("client decode", t)
    resp_wire = overheads.http_response_bytes(len(response_payload), encoding.content_type)
    tb.charge("wire: response", transfer_time(profile, resp_wire))

    return SchemeResult(
        scheme=SCHEME_SWA_B64 if base64_mode else SCHEME_SWA_RAW,
        model_size=dataset.model_size,
        breakdown=tb,
        request_wire_bytes=req_wire,
        response_wire_bytes=resp_wire,
    )


DEFAULT_SIZES = [1365, 21840, 349440, 5591040]


def run(sizes: list[int] | None = None, profile=LAN, seed: int = 0) -> ExperimentResult:
    sizes = sizes if sizes is not None else DEFAULT_SIZES
    labels = [SCHEME_BXSA_TCP, SCHEME_SWA_RAW, SCHEME_SWA_B64, SCHEME_SOAP_HTTP_CHANNEL]
    series: dict[str, list[float]] = {label: [] for label in labels}
    for size in sizes:
        dataset = lead_dataset(size, seed)
        series[SCHEME_BXSA_TCP].append(
            run_scheme(SCHEME_BXSA_TCP, dataset, profile).bandwidth_pairs_per_sec
        )
        series[SCHEME_SWA_RAW].append(
            run_attachment(dataset, profile).bandwidth_pairs_per_sec
        )
        series[SCHEME_SWA_B64].append(
            run_attachment(dataset, profile, base64_mode=True).bandwidth_pairs_per_sec
        )
        series[SCHEME_SOAP_HTTP_CHANNEL].append(
            run_scheme(SCHEME_SOAP_HTTP_CHANNEL, dataset, profile).bandwidth_pairs_per_sec
        )

    columns, rows = render_series_table("model size", sizes, series, value_format="{:.3g}")

    bxsa = series[SCHEME_BXSA_TCP]
    raw = series[SCHEME_SWA_RAW]
    b64 = series[SCHEME_SWA_B64]
    http_sep = series[SCHEME_SOAP_HTTP_CHANNEL]

    checks = [
        ShapeCheck(
            "the paper's assertion holds for base64 attachments: within "
            "±35% of SOAP+HTTP at the large end",
            abs(b64[-1] - http_sep[-1]) <= 0.35 * max(b64[-1], http_sep[-1]),
            f"base64 {b64[-1] / 1e3:.0f}K vs SOAP+HTTP {http_sep[-1] / 1e3:.0f}K pairs/s",
        ),
        ShapeCheck(
            "raw binary attachments behave like the unified scheme instead "
            "(≥ 85% of BXSA/TCP at the large end)",
            raw[-1] >= 0.85 * bxsa[-1],
            f"raw {raw[-1] / 1e3:.0f}K vs BXSA {bxsa[-1] / 1e3:.0f}K pairs/s",
        ),
        ShapeCheck(
            "base64's +33% wire and conversion cost separates the variants "
            "at every size",
            all(raw[i] > b64[i] for i in range(len(sizes))),
        ),
    ]
    return ExperimentResult(
        experiment_id="Extension A",
        title=f"The skipped attachment solution, tested ({profile.name})",
        columns=columns,
        rows=rows,
        checks=checks,
        notes=[
            "tests §6 footnote 1's untested assertion; see module docstring "
            "of repro.harness.extension_attachments",
        ],
    )


if __name__ == "__main__":
    print(run().render())
