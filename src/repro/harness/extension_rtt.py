"""Extension experiment: the LAN→WAN crossover as a continuous RTT sweep.

Figures 5 and 6 are two points of an implicit curve: at 0.2 ms RTT the
unified BXSA/TCP scheme wins and GridFTP parallelism hurts; at 5.75 ms the
parallel streams win.  Somewhere in between, the per-stream window limit
(``window / RTT``) falls below the path capacity and multi-stream transfer
starts paying off — this sweep locates that crossover and verifies it
matches the first-order prediction::

    RTT* ≈ window / capacity        (here 24 KiB / 11.8 MB/s ≈ 2.1 ms)

Everything else (auth cost, disk charges, measured CPU) is held at the
Figure 5/6 configuration; only the link RTT varies, interpolating the
paper's two testbeds.
"""

from __future__ import annotations

from dataclasses import replace

from repro.harness.report import ExperimentResult, ShapeCheck, render_series_table
from repro.harness.runners import (
    SCHEME_BXSA_TCP,
    SCHEME_SOAP_GRIDFTP,
    run_scheme,
)
from repro.netsim import WAN
from repro.workloads.lead import lead_dataset

#: RTTs interpolating the paper's 0.2 ms LAN and 5.75 ms WAN (seconds).
DEFAULT_RTTS = [0.0002, 0.0005, 0.001, 0.002, 0.004, 0.00575, 0.01]

#: Figure 5/6's largest dataset: where bandwidth effects dominate.
MODEL_SIZE = 5_591_040


def predicted_crossover_rtt(profile=WAN) -> float:
    """First-order prediction: the RTT where one window-limited stream can
    no longer fill the path."""
    return profile.per_stream_window / profile.capacity


def run(rtts: list[float] | None = None, model_size: int = MODEL_SIZE, seed: int = 0) -> ExperimentResult:
    rtts = rtts if rtts is not None else DEFAULT_RTTS
    dataset = lead_dataset(model_size, seed)
    series: dict[str, list[float]] = {SCHEME_BXSA_TCP: [], f"{SCHEME_SOAP_GRIDFTP}(16)": []}
    for rtt in rtts:
        profile = replace(WAN, name=f"rtt={rtt * 1e3:g}ms", rtt=rtt)
        series[SCHEME_BXSA_TCP].append(
            run_scheme(SCHEME_BXSA_TCP, dataset, profile, repeats=3).bandwidth_pairs_per_sec
        )
        series[f"{SCHEME_SOAP_GRIDFTP}(16)"].append(
            run_scheme(
                SCHEME_SOAP_GRIDFTP, dataset, profile, n_streams=16, repeats=3
            ).bandwidth_pairs_per_sec
        )

    columns, rows = render_series_table(
        "rtt (ms)", [f"{r * 1e3:g}" for r in rtts], series, value_format="{:.3g}"
    )

    bxsa = series[SCHEME_BXSA_TCP]
    g16 = series[f"{SCHEME_SOAP_GRIDFTP}(16)"]
    # measured crossover: first RTT where GridFTP(16) wins
    crossover_index = next((i for i in range(len(rtts)) if g16[i] > bxsa[i]), None)
    predicted = predicted_crossover_rtt()

    checks = [
        ShapeCheck(
            "BXSA/TCP wins at the LAN end of the sweep",
            g16[0] < bxsa[0],
            f"at {rtts[0] * 1e3:g}ms: BXSA {bxsa[0] / 1e3:.0f}K vs 16str {g16[0] / 1e3:.0f}K",
        ),
        ShapeCheck(
            "GridFTP(16) wins at the WAN end of the sweep",
            g16[-1] > bxsa[-1],
            f"at {rtts[-1] * 1e3:g}ms: BXSA {bxsa[-1] / 1e3:.0f}K vs 16str {g16[-1] / 1e3:.0f}K",
        ),
        ShapeCheck(
            "a single crossover exists and sits near the window/capacity "
            f"prediction ({predicted * 1e3:.1f}ms)",
            crossover_index is not None
            and rtts[max(crossover_index - 1, 0)] <= 4 * predicted
            and rtts[crossover_index] >= predicted / 4,
            (
                f"measured between {rtts[crossover_index - 1] * 1e3:g}ms and "
                f"{rtts[crossover_index] * 1e3:g}ms"
                if crossover_index
                else "no crossover observed"
            ),
        ),
        ShapeCheck(
            "BXSA/TCP degrades with RTT once window-limited: flat (within "
            "noise) before the crossover, strictly falling after",
            all(bxsa[i] >= bxsa[i + 1] * 0.93 for i in range(len(bxsa) - 1))
            and bxsa[-1] < 0.5 * max(bxsa),
        ),
    ]
    return ExperimentResult(
        experiment_id="Extension B",
        title=f"RTT sweep at model size {model_size}: where parallelism starts to pay",
        columns=columns,
        rows=rows,
        checks=checks,
        notes=[
            "interpolates Figures 5 and 6 between the paper's two testbeds; "
            "all non-RTT parameters held at the WAN profile",
        ],
    )


if __name__ == "__main__":
    print(run().render())
