"""Figure 4: LAN message response time, small datasets (model size 0→1000).

Paper's observations, each encoded as a shape check:

* "SOAP over BXSA/TCP achieves superior performance over other schemes";
* XML/HTTP "performs well when the message is fairly small, but as the
  size of the message increases [...] is even more expensive than the
  separated solution, namely SOAP with HTTP data channel" — a crossover;
* SOAP+HTTP pays "two separated communication channels and extra disk
  I/O" — a fixed offset above the unified schemes;
* "The high response time by the SOAP with GridFTP data channel scheme is
  due to the expensive authentication and the SSL handshake [...] GridFTP
  is unsuitable for the small message cases" — a large flat floor.
"""

from __future__ import annotations

from repro.harness.measure import (
    add_observability_args,
    observability_from_args,
    traced_run,
    write_metrics_out,
)
from repro.harness.report import ExperimentResult, ShapeCheck, render_series_table
from repro.harness.runners import (
    SCHEME_BXSA_TCP,
    SCHEME_SOAP_GRIDFTP,
    SCHEME_SOAP_HTTP_CHANNEL,
    SCHEME_XML_HTTP,
    run_scheme,
)
from repro.netsim import LAN
from repro.workloads.lead import lead_dataset

#: The paper's x axis: model size 0 to 1000.
DEFAULT_SIZES = [0, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]

SCHEMES = [
    SCHEME_BXSA_TCP,
    SCHEME_XML_HTTP,
    SCHEME_SOAP_HTTP_CHANNEL,
    SCHEME_SOAP_GRIDFTP,
]


def run(
    sizes: list[int] | None = None,
    profile=LAN,
    seed: int = 0,
    *,
    fault_profile=None,
    fault_seed: int = 0,
    trace_dir: str | None = None,
    metrics=None,
    sampler=None,
) -> ExperimentResult:
    """``fault_profile`` (a :class:`~repro.netsim.faults.FaultProfile`)
    replays each exchange live over a lossy link and folds the recovery
    cost into the reported times; ``trace_dir`` writes one span-tree JSON
    per exchange (the ``--trace-out`` knob); ``metrics`` (a
    :class:`~repro.obs.MetricsRegistry`) aggregates per-exchange counters
    across the run; ``sampler`` (a :class:`~repro.obs.HeadSampler`) thins
    the trace files deterministically; see EXPERIMENTS.md."""
    sizes = sizes if sizes is not None else DEFAULT_SIZES
    series: dict[str, list[float]] = {scheme: [] for scheme in SCHEMES}
    for size in sizes:
        dataset = lead_dataset(size, seed)
        for scheme in SCHEMES:
            result = traced_run(
                trace_dir,
                f"figure4-{scheme}-n{size}",
                lambda: run_scheme(
                    scheme, dataset, profile,
                    fault_profile=fault_profile, fault_seed=fault_seed,
                ),
                metrics=metrics, sampler=sampler,
                figure="figure4", scheme=scheme, model_size=size,
                profile=profile.name,
            )
            series[scheme].append(result.response_time * 1e6)  # microseconds

    columns, rows = render_series_table(
        "model size", sizes, series, value_format="{:.0f}"
    )

    last = {scheme: series[scheme][-1] for scheme in SCHEMES}
    first_nonzero = {scheme: series[scheme][1 if len(sizes) > 1 else 0] for scheme in SCHEMES}
    gridftp_span = max(series[SCHEME_SOAP_GRIDFTP]) / max(min(series[SCHEME_SOAP_GRIDFTP]), 1e-9)

    checks = [
        ShapeCheck(
            "BXSA/TCP is the fastest scheme at every size",
            all(
                series[SCHEME_BXSA_TCP][i] <= min(series[s][i] for s in SCHEMES)
                for i in range(len(sizes))
            ),
        ),
        ShapeCheck(
            "XML/HTTP beats the separated schemes at small sizes",
            first_nonzero[SCHEME_XML_HTTP] < first_nonzero[SCHEME_SOAP_HTTP_CHANNEL]
            and first_nonzero[SCHEME_XML_HTTP] < first_nonzero[SCHEME_SOAP_GRIDFTP],
            f"{first_nonzero[SCHEME_XML_HTTP]:.0f}us vs "
            f"{first_nonzero[SCHEME_SOAP_HTTP_CHANNEL]:.0f}us (HTTP) at n={sizes[1] if len(sizes) > 1 else sizes[0]}",
        ),
        ShapeCheck(
            "XML/HTTP grows past SOAP+HTTP by model size 1000 (crossover)",
            last[SCHEME_XML_HTTP] > last[SCHEME_SOAP_HTTP_CHANNEL],
            f"{last[SCHEME_XML_HTTP]:.0f}us vs {last[SCHEME_SOAP_HTTP_CHANNEL]:.0f}us at n={sizes[-1]}",
        ),
        ShapeCheck(
            "GridFTP is flat (auth-dominated: <1.15x across the sweep) and worst",
            gridftp_span < 1.15
            and all(
                series[SCHEME_SOAP_GRIDFTP][i] >= max(series[s][i] for s in SCHEMES)
                for i in range(len(sizes))
            ),
            f"span {gridftp_span:.2f}x, floor {min(series[SCHEME_SOAP_GRIDFTP]) / 1e3:.0f}ms",
        ),
    ]
    return ExperimentResult(
        experiment_id="Figure 4",
        title=f"Message response time, small datasets ({profile.name}), microseconds",
        columns=columns,
        rows=rows,
        checks=checks,
        notes=[
            "response time = measured CPU (this machine) + modelled wire time "
            f"({profile.name}: rtt={profile.rtt * 1e3:g}ms)",
        ],
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="Regenerate Figure 4.")
    add_observability_args(parser)
    args = parser.parse_args()
    trace_dir, metrics, sampler = observability_from_args(args)
    print(run(trace_dir=trace_dir, metrics=metrics, sampler=sampler).render())
    if args.metrics_out and metrics is not None:
        write_metrics_out(metrics, args.metrics_out, figure="figure4")
