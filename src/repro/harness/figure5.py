"""Figure 5: LAN bandwidth with large datasets (model size 1365 → 5591040).

The paper's sweep quadruples the model size from 1365 (16 KB of BXSA) to
5591040 (64 MB) and reports bandwidth = model size / response time in
(double,int) pairs per second.  Observations reproduced as shape checks:

* "the SOAP over BXSA/TCP scheme still shows the best performance [...]
  saturated at 960K pairs [...] almost reached the maximum transfer rate
  for a single untuned TCP stream";
* "The SOAP with HTTP data channel is a little bit slower [...] due to the
  extra disk I/O enforced by the netCDF library";
* "The SOAP with GridFTP data channel begins to match the above two
  schemes; the overhead of the security is amortized as the message size
  increases";
* "over a LAN the parallelism in GridFTP provides little additional
  benefit, and indeed somewhat degrades performance";
* "SOAP over XML/HTTP scheme lost the game at the very beginning".
"""

from __future__ import annotations

from repro.harness.measure import (
    add_observability_args,
    observability_from_args,
    traced_run,
    write_metrics_out,
)
from repro.harness.report import ExperimentResult, ShapeCheck, render_series_table
from repro.harness.runners import (
    SCHEME_BXSA_TCP,
    SCHEME_SOAP_GRIDFTP,
    SCHEME_SOAP_HTTP_CHANNEL,
    SCHEME_XML_HTTP,
    run_scheme,
)
from repro.netsim import LAN
from repro.netsim.tcpmodel import steady_bandwidth
from repro.workloads.lead import lead_dataset

#: The paper's x axis: 1365 × 4^k up to 5591040 (16 KB → 64 MB of BXSA).
DEFAULT_SIZES = [1365, 5460, 21840, 87360, 349440, 1397760, 5591040]

#: Figure 5's six series.
SERIES = [
    (SCHEME_BXSA_TCP, {}),
    (SCHEME_SOAP_HTTP_CHANNEL, {}),
    (SCHEME_SOAP_GRIDFTP, {"n_streams": 1}),
    (SCHEME_SOAP_GRIDFTP, {"n_streams": 4}),
    (SCHEME_SOAP_GRIDFTP, {"n_streams": 16}),
    (SCHEME_XML_HTTP, {}),
]


def _series_label(scheme: str, kwargs: dict) -> str:
    if "n_streams" in kwargs:
        return f"{scheme}({kwargs['n_streams']})"
    return scheme


def run(
    sizes: list[int] | None = None,
    profile=LAN,
    seed: int = 0,
    *,
    xml_size_cap: int | None = None,
    fault_profile=None,
    fault_seed: int = 0,
    trace_dir: str | None = None,
    metrics=None,
    sampler=None,
) -> ExperimentResult:
    """Regenerate the figure.  ``xml_size_cap`` optionally truncates the
    (very slow, known-to-lose) XML/HTTP series at a given model size for
    quicker runs; uncapped by default.  ``fault_profile`` replays each
    exchange live over a lossy link; ``metrics``/``sampler`` aggregate
    run metrics and thin trace files (see EXPERIMENTS.md)."""
    sizes = sizes if sizes is not None else DEFAULT_SIZES
    series: dict[str, list[float]] = {_series_label(s, k): [] for s, k in SERIES}
    for size in sizes:
        dataset = lead_dataset(size, seed)
        for scheme, kwargs in SERIES:
            label = _series_label(scheme, kwargs)
            if (
                scheme == SCHEME_XML_HTTP
                and xml_size_cap is not None
                and size > xml_size_cap
            ):
                continue
            result = traced_run(
                trace_dir,
                f"figure5-{label}-n{size}",
                lambda: run_scheme(
                    scheme, dataset, profile,
                    fault_profile=fault_profile, fault_seed=fault_seed,
                    **kwargs,
                ),
                metrics=metrics, sampler=sampler,
                figure="figure5", scheme=label, model_size=size,
                profile=profile.name,
            )
            series[label].append(result.bandwidth_pairs_per_sec)

    columns, rows = render_series_table(
        "model size", sizes, series, value_format="{:.3g}"
    )

    bxsa = series[SCHEME_BXSA_TCP]
    http_sep = series[SCHEME_SOAP_HTTP_CHANNEL]
    g1 = series[f"{SCHEME_SOAP_GRIDFTP}(1)"]
    g4 = series[f"{SCHEME_SOAP_GRIDFTP}(4)"]
    g16 = series[f"{SCHEME_SOAP_GRIDFTP}(16)"]
    xml = series[SCHEME_XML_HTTP]
    stream_pairs_per_sec = steady_bandwidth(profile, 1) / 12.0

    checks = [
        ShapeCheck(
            "BXSA/TCP is the best scheme at every size",
            all(
                bxsa[i] >= max(v[i] for v in (http_sep, g1, g4, g16))
                and (i >= len(xml) or bxsa[i] >= xml[i])
                for i in range(len(sizes))
            ),
        ),
        ShapeCheck(
            "BXSA/TCP saturates near the single-stream limit "
            f"(paper: ~960K pairs/s; model limit {stream_pairs_per_sec / 1e3:.0f}K)",
            bxsa[-1] >= 0.75 * stream_pairs_per_sec,
            f"measured {bxsa[-1] / 1e3:.0f}K pairs/s at n={sizes[-1]}",
        ),
        ShapeCheck(
            "SOAP+HTTP trails BXSA/TCP slightly at the large end (disk I/O)",
            0.55 * bxsa[-1] <= http_sep[-1] < bxsa[-1],
            f"{http_sep[-1] / 1e3:.0f}K vs {bxsa[-1] / 1e3:.0f}K pairs/s",
        ),
        ShapeCheck(
            "GridFTP amortizes auth: its bandwidth rises steeply with size "
            "and converges to SOAP+HTTP's neighbourhood (±15%) at 64 MB",
            all(g1[i] <= g1[i + 1] * 1.10 for i in range(len(g1) - 1))
            and 0.6 * http_sep[-1] <= g1[-1] <= 1.15 * http_sep[-1],
            f"GridFTP(1) {g1[-1] / 1e3:.0f}K vs SOAP+HTTP {http_sep[-1] / 1e3:.0f}K",
        ),
        ShapeCheck(
            "LAN parallelism does not help GridFTP (16 streams ≤ 1 stream)",
            g16[-1] <= g1[-1] and g4[-1] <= 1.05 * g1[-1],
            f"1str {g1[-1] / 1e3:.0f}K, 4str {g4[-1] / 1e3:.0f}K, 16str {g16[-1] / 1e3:.0f}K",
        ),
        ShapeCheck(
            "XML/HTTP loses from the very beginning: far below the unified "
            "and HTTP schemes everywhere, and worst overall once GridFTP's "
            "fixed auth cost is amortized (≥ 87360)",
            all(xml[i] < 0.5 * min(bxsa[i], http_sep[i]) for i in range(len(xml)))
            and all(
                xml[i] <= min(g1[i], g4[i], g16[i])
                for i in range(len(xml))
                if sizes[i] >= 87360
            ),
            f"XML {xml[-1] / 1e3:.1f}K pairs/s at its largest measured size",
        ),
    ]
    return ExperimentResult(
        experiment_id="Figure 5",
        title=f"Invocation bandwidth, large datasets ({profile.name}), (double,int) pairs/second",
        columns=columns,
        rows=rows,
        checks=checks,
        notes=[
            "bandwidth = model size / response time; response time = measured "
            f"CPU + modelled wire time ({profile.name})",
        ],
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="Regenerate Figure 5.")
    add_observability_args(parser)
    args = parser.parse_args()
    trace_dir, metrics, sampler = observability_from_args(args)
    print(run(trace_dir=trace_dir, metrics=metrics, sampler=sampler).render())
    if args.metrics_out and metrics is not None:
        write_metrics_out(metrics, args.metrics_out, figure="figure5")
