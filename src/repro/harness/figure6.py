"""Figure 6: WAN bandwidth with large datasets — the ordering flips.

Same sweep as Figure 5 but over the wide-area profile (5.75 ms RTT,
IU ↔ U. Chicago).  The paper drops the XML/HTTP series here (it lost
already on the LAN) and shows five curves.  Observations reproduced as
shape checks:

* "The parallel transport of GridFTP begin to show its benefit [...] not
  restricted by the bandwidth of a single TCP stream" — GridFTP(16) wins
  at the large end;
* "Both SOAP over BXSA/TCP scheme and SOAP with HTTP data channel have
  similar performance.  They are still restricted by the bandwidth of a
  single TCP stream";
* the ordering has only *partially* changed: at small sizes the
  auth-heavy GridFTP variants still trail the unified scheme.
"""

from __future__ import annotations

from repro.harness.measure import (
    add_observability_args,
    observability_from_args,
    traced_run,
    write_metrics_out,
)
from repro.harness.report import ExperimentResult, ShapeCheck, render_series_table
from repro.harness.runners import (
    SCHEME_BXSA_TCP,
    SCHEME_SOAP_GRIDFTP,
    SCHEME_SOAP_HTTP_CHANNEL,
    run_scheme,
)
from repro.netsim import WAN
from repro.netsim.tcpmodel import steady_bandwidth
from repro.workloads.lead import lead_dataset

DEFAULT_SIZES = [1365, 5460, 21840, 87360, 349440, 1397760, 5591040]

SERIES = [
    (SCHEME_SOAP_GRIDFTP, {"n_streams": 16}),
    (SCHEME_BXSA_TCP, {}),
    (SCHEME_SOAP_GRIDFTP, {"n_streams": 4}),
    (SCHEME_SOAP_HTTP_CHANNEL, {}),
    (SCHEME_SOAP_GRIDFTP, {"n_streams": 1}),
]


def _series_label(scheme: str, kwargs: dict) -> str:
    if "n_streams" in kwargs:
        return f"{scheme}({kwargs['n_streams']})"
    return scheme


def run(
    sizes: list[int] | None = None,
    profile=WAN,
    seed: int = 0,
    *,
    fault_profile=None,
    fault_seed: int = 0,
    trace_dir: str | None = None,
    metrics=None,
    sampler=None,
) -> ExperimentResult:
    """``fault_profile`` replays each exchange live over a lossy link and
    folds the recovery cost into the reported times; ``metrics``/``sampler``
    aggregate run metrics and thin trace files (see EXPERIMENTS.md)."""
    sizes = sizes if sizes is not None else DEFAULT_SIZES
    series: dict[str, list[float]] = {_series_label(s, k): [] for s, k in SERIES}
    for size in sizes:
        dataset = lead_dataset(size, seed)
        for scheme, kwargs in SERIES:
            label = _series_label(scheme, kwargs)
            result = traced_run(
                trace_dir,
                f"figure6-{label}-n{size}",
                lambda: run_scheme(
                    scheme, dataset, profile,
                    fault_profile=fault_profile, fault_seed=fault_seed,
                    **kwargs,
                ),
                metrics=metrics, sampler=sampler,
                figure="figure6", scheme=label, model_size=size,
                profile=profile.name,
            )
            series[label].append(result.bandwidth_pairs_per_sec)

    columns, rows = render_series_table(
        "model size", sizes, series, value_format="{:.3g}"
    )

    bxsa = series[SCHEME_BXSA_TCP]
    http_sep = series[SCHEME_SOAP_HTTP_CHANNEL]
    g1 = series[f"{SCHEME_SOAP_GRIDFTP}(1)"]
    g4 = series[f"{SCHEME_SOAP_GRIDFTP}(4)"]
    g16 = series[f"{SCHEME_SOAP_GRIDFTP}(16)"]
    window_limit_pairs = steady_bandwidth(profile, 1) / 12.0

    checks = [
        ShapeCheck(
            "GridFTP(16) overtakes every single-stream scheme at 64 MB",
            g16[-1] > max(bxsa[-1], http_sep[-1], g1[-1]),
            f"16str {g16[-1] / 1e3:.0f}K vs BXSA {bxsa[-1] / 1e3:.0f}K, "
            f"HTTP {http_sep[-1] / 1e3:.0f}K, 1str {g1[-1] / 1e3:.0f}K pairs/s",
        ),
        ShapeCheck(
            "parallelism escapes the single-stream window limit "
            "(GridFTP(16) exceeds it; single-stream schemes stay below)",
            g16[-1] > window_limit_pairs >= bxsa[-1] * 0.999
            and http_sep[-1] <= window_limit_pairs,
            f"window limit ≈ {window_limit_pairs / 1e3:.0f}K pairs/s",
        ),
        ShapeCheck(
            "BXSA/TCP ≈ SOAP+HTTP at the large end (both window-limited)",
            abs(bxsa[-1] - http_sep[-1]) <= 0.35 * bxsa[-1],
            f"{bxsa[-1] / 1e3:.0f}K vs {http_sep[-1] / 1e3:.0f}K pairs/s",
        ),
        ShapeCheck(
            "the flip is partial: BXSA/TCP still wins at small sizes "
            "(GridFTP's auth dominates there)",
            bxsa[0] > g16[0] and bxsa[0] > g4[0] and bxsa[0] > g1[0],
            f"at n={sizes[0]}: BXSA {bxsa[0] / 1e3:.1f}K vs 16str {g16[0] / 1e3:.1f}K",
        ),
        ShapeCheck(
            "both multi-stream variants escape the window limit at the "
            "large end (within 20% of each other, both capacity-bound); "
            "a single stream does not",
            g4[-1] > window_limit_pairs
            and g16[-1] > window_limit_pairs
            and abs(g16[-1] - g4[-1]) <= 0.20 * max(g16[-1], g4[-1])
            and g1[-1] <= window_limit_pairs,
            f"4str {g4[-1] / 1e3:.0f}K, 16str {g16[-1] / 1e3:.0f}K, "
            f"1str {g1[-1] / 1e3:.0f}K vs limit {window_limit_pairs / 1e3:.0f}K",
        ),
    ]
    return ExperimentResult(
        experiment_id="Figure 6",
        title=f"Invocation bandwidth, large datasets ({profile.name}), (double,int) pairs/second",
        columns=columns,
        rows=rows,
        checks=checks,
        notes=[
            "bandwidth = model size / response time; response time = measured "
            f"CPU + modelled wire time ({profile.name})",
            "the paper's Figure 6 omits XML/HTTP (it already lost on the LAN)",
        ],
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="Regenerate Figure 6.")
    add_observability_args(parser)
    args = parser.parse_args()
    trace_dir, metrics, sampler = observability_from_args(args)
    print(run(trace_dir=trace_dir, metrics=metrics, sampler=sampler).render())
    if args.metrics_out and metrics is not None:
        write_metrics_out(metrics, args.metrics_out, figure="figure6")
