"""Figure F: the federated data plane — balancing, caching, failover.

The paper's evaluation ends at one SOAP endpoint per host; this figure
measures what :mod:`repro.fed` buys past that, following the OSDF/XRootD
benchmarking ground rules (replica selection + near-client caching,
reported as a concurrency × cache-hit matrix):

* **concurrency × cache-hit-ratio matrix** — closed-loop clients drive a
  3-replica federation through the content-addressed
  :class:`~repro.fed.cache.ResponseCache`; each cell reports goodput,
  p95 latency, the measured hit rate and the number of upstream
  exchanges that actually reached a replica.  A warm hit must cost
  **zero** upstream exchanges (checked against the balancer's upstream
  request counter, not inferred from timing).
* **aggregate goodput one node sheds** — the same open-loop offered rate
  is driven at a single node and at a 3-node federation *in separate
  processes* (`repro.fed.node`): the single node saturates its worker
  pool and sheds, the federation completes the full offered load.  The
  federation must sustain ≥ 1.5x the saturated single-node goodput.
  Work here is backend-bound (``Work(io_ms=…)`` holds a worker for a
  fixed service time with the GIL released), so capacity is set by
  worker pools — the regime where adding nodes adds capacity even on a
  single-core host, and the regime in which a production SOAP service
  (database/disk/upstream behind each call) actually operates.
* **node-kill failover** — a replica dies abruptly mid-load: zero
  exchanges may be lost (offered = completed + shed + failed holds
  exactly and nothing fails), and in a traced run the failover is
  visible as per-replica ``fed.attempt`` spans inside one joined trace,
  with the dead replica's circuit re-closing after it returns.
* **striped fetch** — one blob pulled as byte-range stripes from all
  three replicas at once and reassembled under per-stripe digest
  verification.

Determinism: payload choice per request derives from ``seed``; the
latency/goodput numbers belong to the machine, the shape checks encode
the machine-independent claims.
"""

from __future__ import annotations

import json
import random
import threading
import time

from repro import obs
from repro.core.envelope import SoapEnvelope
from repro.fed import (
    Balancer,
    CachingClient,
    FederatedClient,
    LeastOutstandingPolicy,
    Replica,
    ResponseCache,
    RoundRobinPolicy,
    striped_fetch,
)
from repro.fed.node import decode_chunk, fed_blob, fed_dispatcher, spawn_nodes
from repro.fed.striping import stripe_digests
from repro.harness.report import ExperimentResult, ShapeCheck
from repro.loadgen import closed_loop, open_loop
from repro.obs.analyze import join_traces
from repro.serve import ServeConfig, SoapServeService
from repro.transport.memory import MemoryNetwork
from repro.xdm import element, leaf

#: Fixed identities so trace files (and their ids) are reproducible.
CLIENT_ORIGIN = "c1fed001"
SERVER_ORIGIN = "5edfed02"

DEFAULT_CONCURRENCY = (4, 16)
DEFAULT_HIT_RATIOS = (0.0, 0.5, 0.9)
#: Distinct hot payloads shared across clients at a given hit ratio.
HOT_KEYS = 8


def _work_envelope(key: int, *, size: int = 2048, rounds: int = 1, io_ms: int = 5):
    return SoapEnvelope.wrap(
        element(
            "Work",
            leaf("size", size, "int"),
            leaf("rounds", rounds, "int"),
            leaf("io_ms", io_ms, "int"),
            leaf("key", key, "int"),
        )
    )


def _memory_cluster(
    count: int = 3, *, workers: int = 2, queue_depth: int = 8, blob_size: int = 1 << 16
):
    """``count`` in-process replicas on a memory network; (network, services, replicas)."""
    network = MemoryNetwork()
    services, replicas = [], []
    for index in range(count):
        name = f"fed-node-{index}"
        service = SoapServeService(
            network.listen(name),
            fed_dispatcher(blob_size=blob_size),
            config=ServeConfig(workers=workers, queue_depth=queue_depth),
            name=name,
        ).start()
        services.append(service)
        replicas.append(
            Replica(name, (lambda nm: (lambda: network.connect(nm)))(name))
        )
    return network, services, replicas


# ---------------------------------------------------------------------------
# concurrency × cache-hit-ratio matrix


def cache_matrix(
    *,
    concurrency=DEFAULT_CONCURRENCY,
    hit_ratios=DEFAULT_HIT_RATIOS,
    requests_per_client: int = 25,
    seed: int = 0,
) -> list[dict]:
    """One cell per (clients, target hit ratio); shared cache per cell."""
    network, services, replicas = _memory_cluster()
    cells: list[dict] = []
    try:
        for clients in concurrency:
            for ratio in hit_ratios:
                total = clients * requests_per_client
                rng = random.Random((seed << 8) ^ int(ratio * 100) ^ clients)
                keys = [
                    rng.randrange(HOT_KEYS) if rng.random() < ratio else HOT_KEYS + i
                    for i in range(total)
                ]
                balancer = Balancer(replicas, policy=LeastOutstandingPolicy())
                cache = ResponseCache(max_bytes=4 << 20, ttl_seconds=None)

                def call_factory():
                    client = CachingClient(FederatedClient(balancer), cache)

                    def call(index: int):
                        client.call(_work_envelope(keys[index]))

                    call.close = client.close
                    return call

                result = closed_loop(
                    call_factory,
                    clients=clients,
                    requests_per_client=requests_per_client,
                    seed=seed,
                )
                p95 = result.quantile_seconds(0.95)
                cells.append(
                    {
                        "clients": clients,
                        "target_hit_ratio": ratio,
                        "offered": result.offered,
                        "completed": result.completed,
                        "shed": result.shed,
                        "failed": result.failed,
                        "goodput_rps": result.goodput,
                        "p95_ms": None if p95 is None else p95 * 1e3,
                        "cache_hits": cache.hits,
                        "cache_misses": cache.misses,
                        "cache_coalesced": cache.coalesced,
                        "hit_rate": cache.hits / max(1, result.offered),
                        "upstream_requests": balancer.upstream_requests,
                    }
                )
    finally:
        for service in services:
            service.stop()
    return cells


def warm_hit_upstream_check() -> dict:
    """Two identical calls: the second must reach no replica at all."""
    network, services, replicas = _memory_cluster()
    try:
        balancer = Balancer(replicas)
        client = CachingClient(
            FederatedClient(balancer), ResponseCache(ttl_seconds=None)
        )
        envelope = _work_envelope(0, io_ms=0)
        client.call(envelope)
        upstream_after_miss = balancer.upstream_requests
        response = client.call(envelope)
        upstream_after_hit = balancer.upstream_requests
        client.close()
        return {
            "upstream_after_miss": upstream_after_miss,
            "upstream_after_hit": upstream_after_hit,
            "hit_served_without_upstream": upstream_after_hit == upstream_after_miss,
            "response_operation": response.body_root.name.local,
        }
    finally:
        for service in services:
            service.stop()


# ---------------------------------------------------------------------------
# aggregate goodput a single node sheds (separate processes)


def federation_goodput(
    *,
    nodes: int = 3,
    workers: int = 2,
    queue_depth: int = 8,
    rate: float = 220.0,
    total: int = 440,
    io_ms: int = 20,
    seed: int = 0,
) -> dict:
    """Offer one rate to 1 node and to ``nodes`` nodes, in subprocesses.

    Per-node capacity is ``workers / (io_ms/1000)`` exchanges/s; the
    offered rate sits between one node's capacity and the federation's,
    so the single node must shed while the federation completes.
    """

    def drive(node_count: int) -> dict:
        spawned = spawn_nodes(node_count, workers=workers, queue_depth=queue_depth)
        try:
            balancer = Balancer(
                [node.replica() for node in spawned],
                policy=LeastOutstandingPolicy(),
            )

            def call_factory():
                fed = FederatedClient(balancer)

                def call(index: int):
                    fed.call(
                        _work_envelope(index, size=4096, rounds=1, io_ms=io_ms)
                    )

                call.close = fed.close
                return call

            result = open_loop(
                call_factory, rate=rate, total=total, senders=24, seed=seed
            )
            return {
                "nodes": node_count,
                "offered": result.offered,
                "completed": result.completed,
                "shed": result.shed,
                "failed": result.failed,
                "goodput_rps": result.goodput,
                "accounting_exact": result.offered
                == result.completed + result.shed + result.failed,
            }
        finally:
            for node in spawned:
                node.stop()

    single = drive(1)
    federation = drive(nodes)
    ratio = federation["goodput_rps"] / max(1e-9, single["goodput_rps"])
    return {
        "rate": rate,
        "io_ms": io_ms,
        "single": single,
        "federation": federation,
        "fed_vs_single_goodput": ratio,
    }


# ---------------------------------------------------------------------------
# node-kill failover


def kill_under_load(
    *, rate: float = 300.0, total: int = 300, kill_after: int = 60, seed: int = 0
) -> dict:
    """Open-loop load over 3 in-process replicas; one dies mid-run.

    Accounting must stay exact with zero failures: every exchange routed
    at the dead replica is replayed on a survivor by the balancer.
    """
    network, services, replicas = _memory_cluster(queue_depth=16)
    balancer = Balancer(
        replicas,
        policy=RoundRobinPolicy(),
        breaker_threshold=1,
        breaker_cooldown=0.2,
    )
    calls_made = [0]
    kill_trigger = threading.Event()
    count_lock = threading.Lock()

    def killer():
        kill_trigger.wait(timeout=30)
        services[1].stop()

    killer_thread = threading.Thread(target=killer, daemon=True)
    killer_thread.start()
    try:

        def call_factory():
            fed = FederatedClient(balancer)

            def call(index: int):
                with count_lock:
                    calls_made[0] += 1
                    if calls_made[0] == kill_after:
                        kill_trigger.set()
                fed.call(_work_envelope(index, io_ms=2))

            call.close = fed.close
            return call

        result = open_loop(call_factory, rate=rate, total=total, senders=16, seed=seed)
    finally:
        kill_trigger.set()
        killer_thread.join(timeout=30)
        for service in (services[0], services[2]):
            service.stop()
    failovers = balancer.metrics.counter("fed_failovers_total").snapshot()
    return {
        "offered": result.offered,
        "completed": result.completed,
        "shed": result.shed,
        "failed": result.failed,
        "accounting_exact": result.offered
        == result.completed + result.shed + result.failed,
        "failovers": failovers,
        "snapshot": balancer.snapshot(),
    }


def failover_trace_demo(*, requests: int = 12, seed: int = 0) -> dict:
    """Sequential traced run: kill a replica, fail over, recover, re-close.

    Server threads record to the process-global recorder, the client
    thread to a pinned one — two "processes", one joined trace per the
    dtrace demo.  Verifies: every request completes, the failed-over
    request shows ``fed.attempt`` spans on ≥ 2 distinct replicas, the
    joined forest has no problems and exactly one trace id (one logical
    run), and the dead replica's circuit re-closes once it returns.
    """
    problems: list[str] = []
    client_rec = obs.TraceRecorder(service="fed-client", origin=CLIENT_ORIGIN)
    server_rec = obs.TraceRecorder(service="fed-serve", origin=SERVER_ORIGIN)
    previous = obs.set_recorder(server_rec)
    kill_at, revive_at = requests // 3, 2 * requests // 3
    try:
        network, services, replicas = _memory_cluster()
        try:
            balancer = Balancer(
                replicas,
                policy=RoundRobinPolicy(),
                breaker_threshold=1,
                breaker_cooldown=0.05,
            )
            with obs.thread_recorder(client_rec):
                fed = FederatedClient(balancer, rng=random.Random(seed))
                # one logical run = one trace: join_traces asserts all
                # linked spans share a single trace id, per the dtrace demo
                try:
                    with obs.span("fed.run", kind="logical", requests=requests):
                        for index in range(requests):
                            if index == kill_at:
                                services[1].stop()
                            if index == revive_at:
                                services[1] = SoapServeService(
                                    network.listen("fed-node-1"),
                                    fed_dispatcher(blob_size=1 << 16),
                                    config=ServeConfig(workers=2, queue_depth=8),
                                    name="fed-node-1b",
                                ).start()
                                time.sleep(0.06)  # breaker cooldown lapses
                            with obs.span(
                                "fed.exchange", kind="logical", request=index
                            ):
                                response = fed.call(
                                    SoapEnvelope.wrap(
                                        element("Echo", leaf("n", index, "int"))
                                    )
                                )
                                if response.body_root.name.local != "EchoResponse":
                                    problems.append(f"request {index}: bad response")
                finally:
                    fed.close()
        finally:
            for service in services:
                try:
                    service.stop()
                except Exception:
                    pass
    finally:
        obs.set_recorder(previous)

    # -- assemble the two "processes" and check the joined forest
    client_doc = obs.trace_dict(client_rec, meta={"demo": "figure-fed-failover"})
    server_doc = obs.trace_dict(server_rec, meta={"demo": "figure-fed-failover"})
    joined = join_traces([client_doc, server_doc])
    problems.extend(joined["problems"])
    if len(joined["trace_ids"]) != 1:
        problems.append(
            f"expected one joined trace, saw {len(joined['trace_ids'])}"
        )

    # per-request fed.attempt replicas: walk each attempt up to its
    # fed.exchange ancestor (which carries the request number)
    by_id = {span.span_id: span for span in client_rec.spans}
    attempts_by_request: dict[int, list[str]] = {}
    for span in client_rec.spans:
        if span.name != "fed.attempt":
            continue
        node = span
        while node is not None and node.name != "fed.exchange":
            node = by_id.get(node.parent_id)
        if node is not None:
            attempts_by_request.setdefault(node.attributes["request"], []).append(
                span.attributes.get("replica")
            )
    multi = {
        request: replicas_hit
        for request, replicas_hit in attempts_by_request.items()
        if len(set(replicas_hit)) >= 2
    }
    if not multi:
        problems.append("no request failed over across >= 2 replicas")
    if len(attempts_by_request) != requests:
        problems.append(
            f"fed.attempt spans cover {len(attempts_by_request)} of {requests} requests"
        )

    snapshot = balancer.snapshot()
    recovered = snapshot["fed-node-1"]
    if recovered["circuit"] != "closed":
        problems.append(f"fed-node-1 circuit did not re-close: {recovered['circuit']}")
    if not (recovered["failures"] >= 1):
        problems.append("fed-node-1 never failed — kill not observed")

    return {
        "ok": not problems,
        "problems": problems,
        "requests": requests,
        "traces": len(joined["trace_ids"]),
        "links": len(joined["links"]),
        "failed_over_requests": {k: sorted(set(v)) for k, v in multi.items()},
        "circuit_after_recovery": recovered["circuit"],
        "snapshot": snapshot,
    }


# ---------------------------------------------------------------------------
# striped fetch


def striping_demo(*, blob_size: int = 1 << 16, stripe_size: int = 8192) -> dict:
    """Fetch one blob as stripes from all three replicas, digest-verified."""
    network, services, replicas = _memory_cluster(blob_size=blob_size)
    try:
        blob = fed_blob(size=blob_size)

        def make_fetch(replica: Replica):
            fed = FederatedClient(Balancer([replica]))

            def fetch(offset: int, length: int) -> bytes:
                return decode_chunk(
                    fed.call(
                        SoapEnvelope.wrap(
                            element(
                                "GetChunk",
                                leaf("offset", offset, "int"),
                                leaf("length", length, "int"),
                            )
                        )
                    )
                )

            return fetch

        sources = [(replica.name, make_fetch(replica)) for replica in replicas]
        data, stats = striped_fetch(
            sources,
            blob_size,
            stripe_size=stripe_size,
            digests=stripe_digests(blob, stripe_size),
        )
        return {
            "bytes_correct": data == blob,
            "sources_used": len(stats.stripes_by_source),
            "stats": stats.as_dict(),
        }
    finally:
        for service in services:
            service.stop()


# ---------------------------------------------------------------------------
# the figure


def run(
    *,
    seed: int = 0,
    quick: bool = False,
    skip_subprocess: bool = False,
) -> ExperimentResult:
    requests_per_client = 10 if quick else 25
    matrix = cache_matrix(seed=seed, requests_per_client=requests_per_client)
    warm = warm_hit_upstream_check()
    if skip_subprocess:
        goodput = None
    else:
        goodput = federation_goodput(
            seed=seed,
            rate=150.0 if quick else 220.0,
            total=150 if quick else 440,
        )
    killed = kill_under_load(seed=seed, total=150 if quick else 300, kill_after=40)
    traced = failover_trace_demo(seed=seed)
    striped = striping_demo()

    columns = [
        "section",
        "clients/nodes",
        "hit ratio",
        "offered",
        "completed",
        "shed",
        "failed",
        "goodput rps",
        "p95 ms",
        "hit rate",
        "upstream",
    ]
    rows = []
    for cell in matrix:
        rows.append(
            [
                "matrix",
                cell["clients"],
                f"{cell['target_hit_ratio']:.1f}",
                cell["offered"],
                cell["completed"],
                cell["shed"],
                cell["failed"],
                f"{cell['goodput_rps']:.0f}",
                "-" if cell["p95_ms"] is None else f"{cell['p95_ms']:.1f}",
                f"{cell['hit_rate']:.2f}",
                cell["upstream_requests"],
            ]
        )
    if goodput is not None:
        for label, side in (("1-node", goodput["single"]), ("3-node", goodput["federation"])):
            rows.append(
                [
                    "goodput",
                    label,
                    "-",
                    side["offered"],
                    side["completed"],
                    side["shed"],
                    side["failed"],
                    f"{side['goodput_rps']:.0f}",
                    "-",
                    "-",
                    "-",
                ]
            )
    rows.append(
        [
            "node-kill",
            "3 (1 dies)",
            "-",
            killed["offered"],
            killed["completed"],
            killed["shed"],
            killed["failed"],
            "-",
            "-",
            "-",
            "-",
        ]
    )

    checks = [
        ShapeCheck(
            "matrix accounting exact at every cell",
            all(
                cell["offered"] == cell["completed"] + cell["shed"] + cell["failed"]
                for cell in matrix
            ),
            f"{len(matrix)} cells",
        ),
        ShapeCheck(
            "warm cache hit served without any upstream exchange",
            warm["hit_served_without_upstream"],
            f"upstream requests {warm['upstream_after_miss']} -> "
            f"{warm['upstream_after_hit']} across the hit",
        ),
        ShapeCheck(
            "higher hit ratio means fewer upstream exchanges",
            all(
                _upstream_at(matrix, clients, 0.9) < _upstream_at(matrix, clients, 0.0)
                for clients in sorted({cell["clients"] for cell in matrix})
            ),
            ", ".join(
                f"{clients} clients: {_upstream_at(matrix, clients, 0.0)} -> "
                f"{_upstream_at(matrix, clients, 0.9)}"
                for clients in sorted({cell["clients"] for cell in matrix})
            ),
        ),
        ShapeCheck(
            "node-kill loses zero exchanges (exact accounting, none failed)",
            killed["accounting_exact"]
            and killed["failed"] == 0
            and killed["failovers"] >= 1,
            f"offered {killed['offered']} = completed {killed['completed']} + "
            f"shed {killed['shed']} + failed {killed['failed']}; "
            f"{killed['failovers']} failovers",
        ),
        ShapeCheck(
            "failover visible as fed.attempt spans in one joined trace, "
            "circuit re-closes after recovery",
            traced["ok"],
            "; ".join(traced["problems"])
            if traced["problems"]
            else f"{traced['traces']} traces, failed-over requests "
            f"{traced['failed_over_requests']}, circuit {traced['circuit_after_recovery']}",
        ),
        ShapeCheck(
            "striped fetch from 3 replicas reassembles byte-exact "
            "under per-stripe digests",
            striped["bytes_correct"] and striped["sources_used"] >= 2,
            f"sources {striped['stats']['stripes_by_source']}",
        ),
    ]
    if goodput is not None:
        checks.insert(
            3,
            ShapeCheck(
                "3-node federation sustains >= 1.5x saturated single-node goodput",
                goodput["fed_vs_single_goodput"] >= 1.5
                and goodput["single"]["shed"] > 0
                and goodput["federation"]["failed"] == 0,
                f"ratio {goodput['fed_vs_single_goodput']:.2f} "
                f"(single sheds {goodput['single']['shed']}, federation sheds "
                f"{goodput['federation']['shed']})",
            ),
        )

    notes = [
        "matrix/failover/striping run 3 in-process replicas over the memory "
        "transport; the goodput section runs real node processes "
        "(repro.fed.node) over TCP",
        "goodput exchanges are backend-bound (Work io_ms holds a worker with "
        "the GIL released), so capacity scales with worker pools across "
        "nodes — the regime a federation exists for",
    ]
    result = ExperimentResult(
        experiment_id="Figure F",
        title="Federated data plane: cache-hit matrix, shed goodput, failover",
        columns=columns,
        rows=rows,
        checks=checks,
        notes=notes,
    )
    result.raw = {
        "matrix": matrix,
        "warm_hit": warm,
        "goodput": goodput,
        "kill_under_load": {k: v for k, v in killed.items() if k != "snapshot"},
        "failover_trace": {
            k: v for k, v in traced.items() if k not in ("snapshot",)
        },
        "striping": striped,
    }
    return result


def _upstream_at(matrix: list[dict], clients: int, ratio: float) -> int:
    for cell in matrix:
        if cell["clients"] == clients and cell["target_hit_ratio"] == ratio:
            return cell["upstream_requests"]
    raise KeyError((clients, ratio))


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="Figure F: federated data plane")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true", help="smaller runs")
    parser.add_argument(
        "--skip-subprocess",
        action="store_true",
        help="skip the multi-process goodput section",
    )
    parser.add_argument("--json-out", default=None)
    args = parser.parse_args(argv)

    result = run(
        seed=args.seed, quick=args.quick, skip_subprocess=args.skip_subprocess
    )
    print(result.render())
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "experiment_id": result.experiment_id,
                    "columns": result.columns,
                    "rows": result.rows,
                    "checks": [
                        {"description": c.description, "passed": c.passed, "detail": c.detail}
                        for c in result.checks
                    ],
                    "raw": result.raw,
                },
                handle,
                indent=2,
                default=str,
            )
            handle.write("\n")
    return 0 if result.all_checks_pass else 1


if __name__ == "__main__":
    raise SystemExit(main())
