"""Figure L: throughput–latency under open-loop load, per encoding scheme.

The paper evaluates one client against one server (Figures 4–6); the
companion question for a *production* engine is what happens when many
clients arrive at once and offered load crosses capacity.  This
experiment drives the :class:`~repro.serve.SoapServeService` worker-pool
runtime with the open-loop generator from :mod:`repro.loadgen` and draws
the classic throughput–latency curve for each encoding over HTTP:

* x axis — offered load, as multiples of the *measured* XML/HTTP
  capacity (estimated with a short closed-loop run, so both encodings
  are offered the identical rate ladder);
* y — goodput (completed/s), tail latency (p50/p95/p99 of completed
  requests) and shed rate (503s past the admission queue).

Expected shapes, encoded as checks below:

* accounting is exact at every point: offered = completed + shed + failed;
* past capacity the runtime **degrades instead of collapsing** — the
  XML scheme sheds (503 + ``Retry-After``) rather than queueing without
  bound, and the sweep terminates (no deadlock);
* at saturation BXSA sustains **higher goodput** than XML 1.0 — the
  binary codec spends less CPU per exchange, so the same worker pool
  completes more of the offered load (the serving-side companion to the
  paper's Figures 4–6 response-time results);
* overload is answered cleanly: every non-completed request is a 503
  shed, none errors or hangs.

Determinism: the arrival schedule, think-time jitter and payload derive
from ``seed`` alone — a rerun offers the same requests in the same
pattern.  The rate ladder is anchored to this machine's measured XML
capacity (pass ``rates`` to pin absolute rates instead); goodput and
latency are measured, so their absolute values belong to the machine,
while the shape checks encode the machine-independent claims.
"""

from __future__ import annotations

import json
import os
import resource

from repro.core.dispatcher import Dispatcher
from repro.core.envelope import SoapEnvelope
from repro.core.policies import (
    BXSA_CONTENT_TYPE,
    XML_CONTENT_TYPE,
    encoding_for_content_type,
)
from repro.harness.measure import add_observability_args, observability_from_args
from repro.harness.report import ExperimentResult, ShapeCheck
from repro.loadgen import closed_loop, open_loop
from repro.serve import ServeConfig, SoapServeService
from repro.transport.memory import MemoryNetwork
from repro.workloads.lead import lead_dataset
from repro.xdm import element, leaf

#: Offered-load rungs, as multiples of measured XML/HTTP capacity.
DEFAULT_MULTIPLIERS = (0.5, 1.0, 2.0, 4.0)

#: The two schemes the serving runtime hosts (binding is HTTP for both;
#: the pool sheds identically — only codec cost differs).
SCHEMES = {
    "bxsa/http": BXSA_CONTENT_TYPE,
    "xml/http": XML_CONTENT_TYPE,
}


def _make_dispatcher() -> Dispatcher:
    """One operation: accept a LEAD model, acknowledge with its size.

    The request carries the (large) model — so the server-side *decode*
    dominates, exactly the cost the encodings differ on — and the reply
    is a small ack, keeping response encoding off the critical path.
    """
    dispatcher = Dispatcher()

    @dispatcher.operation("PutModel")
    def put_model(request: SoapEnvelope):
        atoms = len(request.body_root.children[0].children)
        return element("PutModelResponse", leaf("atoms", atoms, "int"))

    return dispatcher


def _call_factory(network: MemoryNetwork, address: str, content_type: str, payload: SoapEnvelope):
    """A per-sender-thread SOAP call over its own persistent connection."""
    from repro.core.client import SoapHttpClient

    def factory():
        client = SoapHttpClient(
            lambda: network.connect(address),
            encoding=encoding_for_content_type(content_type),
        )

        def call(_index: int):
            return client.call(payload)

        call.close = client.close
        return call

    return factory


def _serve_stack(content_label: str, dispatcher: Dispatcher, config: ServeConfig):
    network = MemoryNetwork()
    address = f"figure-load-{content_label}"
    service = SoapServeService(network.listen(address), dispatcher, config=config)
    return network, address, service


def sweep(
    *,
    workers: int = 2,
    queue_depth: int = 4,
    multipliers: tuple[float, ...] = DEFAULT_MULTIPLIERS,
    rates: tuple[float, ...] | None = None,
    requests_per_point: int = 200,
    model_size: int = 100,
    seed: int = 0,
    senders: int = 32,
    metrics=None,
) -> dict:
    """Run the full load sweep; returns the JSON-ready curve document.

    ``rates`` pins absolute arrival rates (requests/s) and skips capacity
    estimation; otherwise the ladder is ``multipliers`` × the measured
    closed-loop XML/HTTP capacity.
    """
    dispatcher = _make_dispatcher()
    payload = SoapEnvelope.wrap(
        element("PutModel", lead_dataset(model_size, seed).to_bxdm())
    )
    config = ServeConfig(workers=workers, queue_depth=queue_depth, retry_after=0.01)

    if rates is None:
        capacity = _estimate_xml_capacity(
            dispatcher, payload, config, seed=seed, samples=max(40, workers * 10)
        )
        ladder = [m * capacity for m in multipliers]
    else:
        capacity = None
        multipliers = tuple(float("nan") for _ in rates)
        ladder = list(rates)

    schemes: dict[str, list[dict]] = {}
    for label, content_type in SCHEMES.items():
        network, address, service = _serve_stack(
            label.replace("/", "-"), dispatcher, config
        )
        points = []
        with service:
            factory = _call_factory(network, address, content_type, payload)
            for rung, rate in enumerate(ladder):
                result = open_loop(
                    factory,
                    rate=rate,
                    total=requests_per_point,
                    seed=seed * 1000 + rung,
                    senders=senders,
                    metrics=metrics,
                )
                point = result.as_dict()
                point["target_rate_rps"] = rate
                points.append(point)
        schemes[label] = points

    return {
        "experiment": "figure_load",
        "seed": seed,
        "config": {
            "workers": workers,
            "queue_depth": queue_depth,
            "requests_per_point": requests_per_point,
            "model_size": model_size,
            "senders": senders,
        },
        "xml_capacity_rps": capacity,
        "multipliers": list(multipliers),
        "rates_rps": list(ladder),
        "schemes": schemes,
    }


#: Keep-alive connection counts for the event-driven rungs of the ladder.
DEFAULT_LADDER_RUNGS = (256, 1024, 4096, 10000)

#: Connection counts probed to find the threaded server's best point
#: (it peaks at modest concurrency; past it, thread overhead eats goodput).
DEFAULT_THREADED_PROBE = (16, 64)


def _clamp_rung_to_fd_budget(rung: int) -> int:
    """Bound a rung by the process fd limit (2 fds per in-process
    connection: client end + server end, plus headroom for everything
    else the interpreter holds open)."""
    soft, _hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    return min(rung, max(256, (soft - 1000) // 2))


def _ladder_request_bytes(payload: SoapEnvelope, content_type: str) -> bytes:
    """The exact POST the SOAP HTTP client would send, pre-serialized
    once — the ladder measures serving, not client-side encode."""
    from repro.transport.http.messages import HttpRequest

    policy = encoding_for_content_type(content_type)
    request = HttpRequest("POST", "/soap", body=policy.encode(payload.to_document()))
    request.headers.set("Host", "localhost")
    request.headers.set("Content-Type", content_type)
    request.headers.set("SOAPAction", '""')
    return request.to_bytes()


def connection_ladder(
    *,
    workers: int = 2,
    queue_depth: int = 64,
    rungs: tuple[int, ...] = DEFAULT_LADDER_RUNGS,
    threaded_probe: tuple[int, ...] = DEFAULT_THREADED_PROBE,
    requests_per_connection: int = 4,
    model_size: int = 20,
    seed: int = 0,
) -> dict:
    """Figure L's connection ladder: threaded vs event-driven serving core.

    Both cores run the identical :class:`SoapServeService` stack (same
    dispatcher, same worker pool discipline, same BXSA payload) over real
    loopback TCP, driven closed-loop by the selector-based
    :func:`~repro.transport.aio.drive_connections` client.  The threaded
    core is probed at the modest connection counts where it is at its
    best; the event-driven core climbs the ladder to thousands of
    keep-alive connections.  Returns the JSON-ready document with one
    point per rung (goodput, p50/p99, exact accounting).
    """
    from repro.transport.aio import drive_connections
    from repro.transport.sockets import TcpListener

    dispatcher = _make_dispatcher()
    payload = SoapEnvelope.wrap(
        element("PutModel", lead_dataset(model_size, seed).to_bxdm())
    )
    request_bytes = _ladder_request_bytes(payload, BXSA_CONTENT_TYPE)

    def _run_rung(core: str, connections: int) -> dict:
        config = ServeConfig(
            workers=workers,
            queue_depth=queue_depth,
            retry_after=0.01,
            max_connections=connections + 64,
            core=core,
        )
        listener = TcpListener(backlog=4096)
        address = listener.address
        service = SoapServeService(listener, dispatcher, config=config)
        with service:
            result = drive_connections(
                address,
                request_bytes,
                connections=connections,
                requests_per_connection=requests_per_connection,
                timeout=120.0,
            )
        point = result.summary()
        point["core"] = core
        return point

    threaded_points = [_run_rung("threaded", c) for c in threaded_probe]
    aio_points = [_run_rung("aio", _clamp_rung_to_fd_budget(r)) for r in rungs]

    threaded_best = max(threaded_points, key=lambda p: p["goodput_rps"])
    aio_top = aio_points[-1]
    return {
        "experiment": "figure_load_ladder",
        "seed": seed,
        "config": {
            "workers": workers,
            "queue_depth": queue_depth,
            "requests_per_connection": requests_per_connection,
            "model_size": model_size,
        },
        "threaded": threaded_points,
        "aio": aio_points,
        "threaded_best_goodput_rps": threaded_best["goodput_rps"],
        "threaded_best_connections": threaded_best["connections"],
        "aio_top_connections": aio_top["connections"],
        "aio_top_goodput_rps": aio_top["goodput_rps"],
    }


def run_ladder(
    *,
    workers: int = 2,
    queue_depth: int = 64,
    rungs: tuple[int, ...] = DEFAULT_LADDER_RUNGS,
    threaded_probe: tuple[int, ...] = DEFAULT_THREADED_PROBE,
    requests_per_connection: int = 4,
    model_size: int = 20,
    seed: int = 0,
    json_out: str | None = None,
) -> ExperimentResult:
    """Run the connection ladder and evaluate its shape checks."""
    document = connection_ladder(
        workers=workers,
        queue_depth=queue_depth,
        rungs=rungs,
        threaded_probe=threaded_probe,
        requests_per_connection=requests_per_connection,
        model_size=model_size,
        seed=seed,
    )
    if json_out:
        directory = os.path.dirname(json_out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")

    columns = ["core", "connections", "goodput rps", "p50 ms", "p99 ms", "shed", "failed"]
    rows = [
        [
            point["core"],
            str(point["connections"]),
            f"{point['goodput_rps']:.0f}",
            f"{point['p50_ms']:.1f}",
            f"{point['p99_ms']:.1f}",
            str(point["shed"]),
            str(point["failed"]),
        ]
        for point in document["threaded"] + document["aio"]
    ]
    every_point = document["threaded"] + document["aio"]
    aio_top = document["aio"][-1]
    checks = [
        ShapeCheck(
            "accounting exact at every rung (offered = completed + shed + failed)",
            all(
                p["offered"] == p["completed"] + p["shed"] + p["failed"]
                for p in every_point
            ),
        ),
        ShapeCheck(
            "every connection establishes at every rung (no accept drops)",
            all(p["established"] == p["connections"] for p in every_point),
        ),
        ShapeCheck(
            "event-driven core holds >= 4096 keep-alive connections",
            aio_top["connections"] >= 4096,
            f"top rung {aio_top['connections']} connections",
        ),
        ShapeCheck(
            "at the top rung, goodput >= the threaded core's best point",
            aio_top["goodput_rps"] >= document["threaded_best_goodput_rps"],
            f"{aio_top['goodput_rps']:.0f} vs "
            f"{document['threaded_best_goodput_rps']:.0f} completed/s",
        ),
        ShapeCheck(
            "overload is answered cleanly at every rung (failed == 0)",
            all(p["failed"] == 0 for p in every_point),
        ),
    ]
    notes = [
        f"workers={workers} queue_depth={queue_depth} "
        f"requests/connection={requests_per_connection} model_size={model_size} seed={seed}",
        "closed-loop over real loopback TCP; both cores share the identical "
        "SOAP stack and worker-pool discipline — only the I/O core differs",
    ]
    return ExperimentResult(
        experiment_id="Figure L (ladder)",
        title="Keep-alive connection ladder: threaded vs event-driven serving core",
        columns=columns,
        rows=rows,
        checks=checks,
        notes=notes,
    )


def _estimate_xml_capacity(
    dispatcher: Dispatcher,
    payload: SoapEnvelope,
    config: ServeConfig,
    *,
    seed: int,
    samples: int,
) -> float:
    """Best-case XML/HTTP throughput: a short closed-loop run at
    concurrency = workers (each worker always busy, nothing queued)."""
    network, address, service = _serve_stack("capacity", dispatcher, config)
    with service:
        result = closed_loop(
            _call_factory(network, address, XML_CONTENT_TYPE, payload),
            clients=config.workers,
            requests_per_client=max(1, samples // config.workers),
            seed=seed,
        )
    return max(result.goodput, 1.0)


def run(
    *,
    workers: int = 2,
    queue_depth: int = 4,
    multipliers: tuple[float, ...] = DEFAULT_MULTIPLIERS,
    rates: tuple[float, ...] | None = None,
    requests_per_point: int = 200,
    model_size: int = 100,
    seed: int = 0,
    senders: int = 32,
    metrics=None,
    json_out: str | None = None,
) -> ExperimentResult:
    """Run the sweep, evaluate the shape checks, render the curve table.

    ``json_out`` writes the full curve document (every point's goodput,
    p50/p95/p99, shed rate and exact accounting) as JSON.
    """
    document = sweep(
        workers=workers,
        queue_depth=queue_depth,
        multipliers=multipliers,
        rates=rates,
        requests_per_point=requests_per_point,
        model_size=model_size,
        seed=seed,
        senders=senders,
        metrics=metrics,
    )
    if json_out:
        directory = os.path.dirname(json_out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")

    schemes = document["schemes"]
    ladder = document["rates_rps"]
    columns = ["offered rps"]
    for label in schemes:
        columns += [f"{label} goodput", f"{label} p95 ms", f"{label} shed%"]
    rows = []
    for i, rate in enumerate(ladder):
        row = [f"{rate:.0f}"]
        for label in schemes:
            point = schemes[label][i]
            row += [
                f"{point['goodput_rps']:.0f}",
                "-" if point["p95_ms"] is None else f"{point['p95_ms']:.2f}",
                f"{100 * point['shed_rate']:.0f}",
            ]
        rows.append(row)

    bxsa_top = schemes["bxsa/http"][-1]
    xml_top = schemes["xml/http"][-1]
    accounting_ok = all(
        point["offered"] == point["completed"] + point["shed"] + point["failed"]
        for points in schemes.values()
        for point in points
    )
    checks = [
        ShapeCheck(
            "accounting exact at every point (offered = completed + shed + failed)",
            accounting_ok,
        ),
        ShapeCheck(
            "past capacity the runtime sheds instead of collapsing (XML sheds at the top rung)",
            xml_top["shed"] > 0,
            f"XML shed {xml_top['shed']}/{xml_top['offered']} at {ladder[-1]:.0f} rps offered",
        ),
        ShapeCheck(
            "BXSA sustains higher goodput at saturation than XML 1.0",
            bxsa_top["goodput_rps"] >= xml_top["goodput_rps"],
            f"{bxsa_top['goodput_rps']:.0f} vs {xml_top['goodput_rps']:.0f} completed/s",
        ),
        ShapeCheck(
            "overload is answered cleanly: every non-completed request is a "
            "503 shed, none errors or hangs",
            all(
                point["failed"] == 0
                for points in schemes.values()
                for point in points
            ),
        ),
    ]
    capacity = document["xml_capacity_rps"]
    notes = [
        f"workers={workers} queue_depth={queue_depth} "
        f"requests/point={requests_per_point} model_size={model_size} seed={seed}",
    ]
    if capacity is not None:
        notes.append(
            f"rate ladder = {', '.join(f'{m:g}x' for m in document['multipliers'])} "
            f"of measured XML/HTTP closed-loop capacity ({capacity:.0f} rps)"
        )
    return ExperimentResult(
        experiment_id="Figure L",
        title="Goodput and tail latency under open-loop load (SOAP over HTTP)",
        columns=columns,
        rows=rows,
        checks=checks,
        notes=notes,
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Regenerate the serving-under-load throughput-latency curve."
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-depth", type=int, default=4)
    parser.add_argument("--requests", type=int, default=200, help="requests per rung")
    parser.add_argument("--model-size", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=None,
        help="pin absolute arrival rates (rps) instead of the capacity ladder",
    )
    parser.add_argument("--json-out", default=None, help="write the curve JSON here")
    parser.add_argument(
        "--ladder",
        action="store_true",
        help="run the keep-alive connection ladder (threaded vs event-driven "
        "core over real TCP) instead of the rate sweep",
    )
    parser.add_argument(
        "--rungs",
        type=int,
        nargs="+",
        default=None,
        help="connection counts for the ladder's event-driven rungs",
    )
    parser.add_argument(
        "--distributed-trace",
        action="store_true",
        help="run the cross-process tracing demo (live client + server, "
        "both serving cores) and verify the assembled trace instead of "
        "the load sweep",
    )
    add_observability_args(parser)
    args = parser.parse_args()
    if args.distributed_trace:
        from repro.harness.dtrace import run_distributed_trace_demo

        failed = False
        for core in ("threaded", "aio"):
            demo = run_distributed_trace_demo(core=core)
            for problem in demo["problems"]:
                print(f"PROBLEM[{core}]: {problem}")
            print(
                f"distributed-trace[{core}]: trace {demo['trace_id']} "
                f"wire {demo['wire_seconds'] * 1e3:.3f}ms "
                f"[{'OK' if demo['ok'] else 'FAIL'}]"
            )
            failed = failed or not demo["ok"]
        raise SystemExit(1 if failed else 0)
    if args.ladder:
        result = run_ladder(
            workers=args.workers,
            queue_depth=max(args.queue_depth, 64),
            rungs=tuple(args.rungs) if args.rungs else DEFAULT_LADDER_RUNGS,
            model_size=args.model_size,
            seed=args.seed,
            json_out=args.json_out,
        )
        print(result.render())
        raise SystemExit(0)
    _trace_dir, metrics, _sampler = observability_from_args(args)
    result = run(
        workers=args.workers,
        queue_depth=args.queue_depth,
        requests_per_point=args.requests,
        model_size=args.model_size,
        seed=args.seed,
        rates=tuple(args.rates) if args.rates else None,
        metrics=metrics,
        json_out=args.json_out,
    )
    print(result.render())
    if args.metrics_out and metrics is not None:
        from repro.harness.measure import write_metrics_out

        write_metrics_out(metrics, args.metrics_out, figure="figure_load")
