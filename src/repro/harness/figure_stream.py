"""Figure S: the streaming large-message pipeline vs buffer-and-send.

The paper's evaluation stops at messages that fit comfortably in memory;
its §7 outlook — and the follow-on literature on very large SOAP
messages (Kohring; Lo Iacono's non-blocking signatures) — asks what
happens when they do not.  This experiment measures the full pipeline
this repo grew for that case: a producer emitting one huge typed array
through :class:`~repro.bxsa.BXSAStreamWriter` (streamed container
profile, sink-driven), HTTP/1.1 chunked transfer through the threaded
server and client, optional per-chunk HMAC signing
(:func:`~repro.core.security.sign_stream`), and incremental consumption
through :class:`~repro.bxsa.StreamDecoder`'s zero-copy array-chunk
events — against the classic buffered path that materializes the array,
encodes it, and ships one ``Content-Length`` body.

Two numbers per (size, mode) point, both taken through a *real* HTTP
exchange over loopback TCP with client and server in one process:

* **TTFB** — wall time from issuing the request to the first response
  body byte.  Buffered must finish producing before byte one; streamed
  answers as soon as the first chunk exists, so its TTFB is
  size-independent.
* **peak** — peak Python-heap allocation of the whole exchange
  (:func:`~repro.harness.measure.traced_peak_bytes`; tracemalloc sees
  both sides since they share the process, and NumPy >= 1.22 reports
  array buffers).  Buffered grows linearly with the payload; streamed
  stays bounded by a few transfer chunks regardless of message size.

Expected shapes, encoded as checks below:

* every transfer is verified: the decoded array's checksum matches the
  arithmetic expectation, in every mode, at every size;
* streamed peak allocation stays <= 4x the transfer chunk size at every
  size — signed or not — while buffered peak exceeds the payload itself;
* at the largest common size, buffered TTFB is >= 5x streamed TTFB;
* signing costs bounded throughput, not memory: the signed stream holds
  the same peak bound.

Determinism: the payload is ``arange(n)`` as 32-bit ints, so the
expected checksum is ``n*(n-1)/2`` — computable without ever holding
the array.  Sizes are powers of two in MiB; the buffered path is capped
(default 64 MiB) so the figure's full sweep can include a 256 MiB
streamed-only point without a multi-hundred-MiB buffered run.
"""

from __future__ import annotations

import itertools
import json
import os
import queue
import threading
import time

import numpy as np

from repro.bxsa import BXSAStreamWriter, EventKind, StreamDecoder
from repro.core.security import SecretKey, sign_stream, verify_stream
from repro.harness.measure import traced_peak_bytes
from repro.harness.report import ExperimentResult, ShapeCheck
from repro.transport.http import HttpClient, HttpRequest, HttpResponse, HttpServer
from repro.transport.sockets import TcpListener, connect_tcp

MIB = 1 << 20

#: Transfer chunk: the writer's flush unit, the producer queue's item
#: size, and the unit the streamed-peak bound is expressed in.
DEFAULT_CHUNK_BYTES = 1 * MIB

#: Producer-queue depth, in chunks.  The queue is the only place whole
#: chunks accumulate, so depth x chunk bounds the producer's lead over
#: the socket — keep it small or the "bounded memory" claim goes soft.
DEFAULT_QUEUE_DEPTH = 1

#: Message sizes for the full sweep; quick callers pass fewer.
DEFAULT_SIZES_MIB = (1, 8, 64, 256)

#: Largest size the buffered path runs at (it materializes the payload
#: at least twice; 256 MiB buffered is a swap test, not a measurement).
DEFAULT_BUFFERED_CAP_MIB = 64

#: Streamed-vs-buffered TTFB advantage required at the largest common
#: size, and the streamed peak bound in transfer chunks.
TTFB_RATIO_FLOOR = 5.0
STREAM_PEAK_CHUNKS = 4.0

#: Fixed demo key — the figure measures cost, not key management.
_KEY = SecretKey(b"figure-stream-demo-key-0123456789", "figure-s")

_MODES = ("buffered", "streamed", "signed")


def expected_checksum(n_items: int) -> int:
    """Sum of ``arange(n_items)`` without building it."""
    return n_items * (n_items - 1) // 2


def _blocks(n_items: int, block_items: int):
    """The payload as deterministic int32 blocks, never all at once."""
    for start in range(0, n_items, block_items):
        yield np.arange(start, min(start + block_items, n_items), dtype=np.int32)


class _ConsumerGone(Exception):
    """The response stream was abandoned; stop producing."""


def _streamed_pieces(n_items: int, chunk_bytes: int, queue_depth: int):
    """Encoded-document pieces from a bounded producer thread.

    The writer runs in its own thread, pushing ``chunk_bytes``-sized
    pieces into a ``queue_depth``-deep queue; the returned generator
    pulls them.  The queue is the backpressure: a slow consumer stalls
    the producer after ``queue_depth`` chunks, so memory stays bounded
    no matter how large the document is.  Pieces cross the queue
    *uncopied*: the writer's large-payload pieces are views over the
    per-call normalized block (fresh each ``_blocks`` step, never
    mutated) and its small-accumulation flushes are already fresh
    ``bytes`` — a defensive copy here would add a whole chunk to the
    pipeline's peak for nothing.
    """
    pieces: queue.Queue = queue.Queue(maxsize=queue_depth)
    abandoned = threading.Event()

    def put(item) -> None:
        while True:
            try:
                pieces.put(item, timeout=0.1)
                return
            except queue.Full:
                if abandoned.is_set():
                    raise _ConsumerGone()

    def produce() -> None:
        try:
            writer = BXSAStreamWriter(sink=put, chunk_size=chunk_bytes)
            writer.start_document()
            writer.start_element("PullResponse")
            writer.array_blocks(
                "values", n_items, _blocks(n_items, chunk_bytes // 4), "int"
            )
            writer.end_element()
            writer.end_document()
            put(None)
        except _ConsumerGone:
            return
        except Exception as exc:  # noqa: BLE001 - surface in the consumer
            try:
                put(exc)
            except _ConsumerGone:
                pass

    threading.Thread(target=produce, name="figure-stream-producer", daemon=True).start()

    def generate():
        try:
            while True:
                item = pieces.get()
                if item is None:
                    return
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            abandoned.set()

    return generate()


def _buffered_body(n_items: int) -> bytes:
    """The buffer-and-send baseline: materialize, encode, one body."""
    writer = BXSAStreamWriter()
    writer.start_document()
    writer.start_element("PullResponse")
    writer.array("values", np.arange(n_items, dtype=np.int32), "int")
    writer.end_element()
    return writer.end_document()


def make_handler(chunk_bytes: int, queue_depth: int):
    """``GET /pull/<mib>/<mode>`` -> one big array, three ways."""

    def handler(request: HttpRequest) -> HttpResponse:
        parts = request.target.strip("/").split("/")
        if len(parts) != 3 or parts[0] != "pull" or parts[2] not in _MODES:
            return HttpResponse(404, body=b"GET /pull/<mib>/<buffered|streamed|signed>")
        n_items = int(parts[1]) * MIB // 4
        mode = parts[2]
        response = HttpResponse(200)
        response.headers.set("Content-Type", "application/x-bxsa")
        if mode == "buffered":
            response.body = _buffered_body(n_items)
            return response
        if mode == "signed":
            # sign quarter-chunk units: the wrap/verify stages buffer a
            # couple of signing units each, so a smaller unit keeps the
            # signed pipeline inside the same 4x-transfer-chunk budget
            # (the per-unit MAC is 32 bytes — overhead stays negligible)
            pieces = _streamed_pieces(n_items, chunk_bytes // 4, queue_depth)
            response.stream = sign_stream(pieces, _KEY)
        else:
            response.stream = _streamed_pieces(n_items, chunk_bytes, queue_depth)
        return response

    return handler


def _consume(pieces, *, signed: bool, chunk_bytes: int) -> int:
    """Incrementally decode a piece stream; returns the array checksum.

    Never joins the pieces: each goes through the (optional) chunk
    verifier and the streaming decoder as it arrives, and array payloads
    surface as zero-copy ARRAY_CHUNK views that are reduced immediately.
    """
    if signed:
        pieces = verify_stream(pieces, _KEY)
    decoder = StreamDecoder(array_chunk_threshold=max(chunk_bytes // 4, 4096))
    checksum = 0
    for piece in pieces:
        for event in decoder.feed(piece):
            if event.kind in (EventKind.ARRAY_CHUNK, EventKind.ARRAY):
                checksum += int(event.values.sum(dtype=np.int64))
    decoder.close()
    return checksum


def _exchange(client: HttpClient, mib: int, mode: str, chunk_bytes: int) -> dict:
    """One GET, fully consumed; returns ttfb/total/checksum."""
    start = time.perf_counter()
    response = client.request("GET", f"/pull/{mib}/{mode}", stream_response=True)
    assert response.status == 200, response.status
    stream = iter(response.stream)
    first = next(stream)
    ttfb = time.perf_counter() - start
    checksum = _consume(
        itertools.chain((first,), stream),
        signed=(mode == "signed"),
        chunk_bytes=chunk_bytes,
    )
    total = time.perf_counter() - start
    return {"ttfb_s": ttfb, "total_s": total, "checksum": checksum}


def sweep(
    *,
    sizes_mib=DEFAULT_SIZES_MIB,
    buffered_cap_mib: int = DEFAULT_BUFFERED_CAP_MIB,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
) -> dict:
    """Run the full (size x mode) grid; returns the JSON-ready document.

    Each point is measured twice: an untraced pass for TTFB and total
    (tracemalloc slows every allocation, so timing and memory never
    share a run) and a traced pass for peak heap bytes.  Checksums are
    verified on both.
    """
    listener = TcpListener()
    host, port = listener.address
    server = HttpServer(
        listener,
        make_handler(chunk_bytes, queue_depth),
        name="figure-stream",
        admin=False,
        stream_bodies=True,
    )
    points = []
    with server:
        client = HttpClient(lambda: connect_tcp(host, port), host=host)
        try:
            for mib in sizes_mib:
                n_items = mib * MIB // 4
                expected = expected_checksum(n_items)
                for mode in _MODES:
                    if mode == "buffered" and mib > buffered_cap_mib:
                        continue
                    timing = _exchange(client, mib, mode, chunk_bytes)
                    peak, traced = traced_peak_bytes(
                        lambda: _exchange(client, mib, mode, chunk_bytes)
                    )
                    points.append(
                        {
                            "mib": mib,
                            "mode": mode,
                            "ttfb_s": timing["ttfb_s"],
                            "total_s": timing["total_s"],
                            "peak_bytes": peak,
                            "throughput_mib_s": mib / max(timing["total_s"], 1e-9),
                            "verified": timing["checksum"] == expected
                            and traced["checksum"] == expected,
                        }
                    )
        finally:
            client.close()
    return {
        "experiment": "figure_stream",
        "config": {
            "chunk_bytes": chunk_bytes,
            "queue_depth": queue_depth,
            "sizes_mib": list(sizes_mib),
            "buffered_cap_mib": buffered_cap_mib,
        },
        "points": points,
    }


def _point(document: dict, mib: int, mode: str) -> dict | None:
    for point in document["points"]:
        if point["mib"] == mib and point["mode"] == mode:
            return point
    return None


def run(
    *,
    sizes_mib=DEFAULT_SIZES_MIB,
    buffered_cap_mib: int = DEFAULT_BUFFERED_CAP_MIB,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    json_out: str | None = None,
) -> ExperimentResult:
    """Run the sweep, evaluate the shape checks, render the table."""
    document = sweep(
        sizes_mib=sizes_mib,
        buffered_cap_mib=buffered_cap_mib,
        chunk_bytes=chunk_bytes,
        queue_depth=queue_depth,
    )
    if json_out:
        directory = os.path.dirname(json_out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")

    columns = ["size MiB", "mode", "TTFB ms", "total s", "peak MiB", "MiB/s", "ok"]
    rows = [
        [
            str(p["mib"]),
            p["mode"],
            f"{1e3 * p['ttfb_s']:.1f}",
            f"{p['total_s']:.2f}",
            f"{p['peak_bytes'] / MIB:.1f}",
            f"{p['throughput_mib_s']:.0f}",
            "yes" if p["verified"] else "NO",
        ]
        for p in document["points"]
    ]

    streamed_points = [p for p in document["points"] if p["mode"] != "buffered"]
    peak_bound = STREAM_PEAK_CHUNKS * chunk_bytes
    worst_stream_peak = max(p["peak_bytes"] for p in streamed_points)
    top_common = max(m for m in sizes_mib if m <= buffered_cap_mib)
    buffered_top = _point(document, top_common, "buffered")
    streamed_top = _point(document, top_common, "streamed")
    ttfb_ratio = buffered_top["ttfb_s"] / max(streamed_top["ttfb_s"], 1e-9)
    checks = [
        ShapeCheck(
            "every transfer decodes to the expected checksum (all sizes, all modes)",
            all(p["verified"] for p in document["points"]),
        ),
        ShapeCheck(
            f"streamed peak allocation <= {STREAM_PEAK_CHUNKS:g}x the transfer "
            "chunk at every size, signed or not",
            worst_stream_peak <= peak_bound,
            f"worst {worst_stream_peak / MIB:.1f} MiB vs bound {peak_bound / MIB:.1f} MiB",
        ),
        ShapeCheck(
            "buffered peak exceeds the payload itself at the largest buffered size",
            buffered_top["peak_bytes"] >= top_common * MIB,
            f"{buffered_top['peak_bytes'] / MIB:.1f} MiB for a {top_common} MiB payload",
        ),
        ShapeCheck(
            f"buffered TTFB >= {TTFB_RATIO_FLOOR:g}x streamed TTFB at "
            f"{top_common} MiB",
            ttfb_ratio >= TTFB_RATIO_FLOOR,
            f"{1e3 * buffered_top['ttfb_s']:.1f} ms vs "
            f"{1e3 * streamed_top['ttfb_s']:.1f} ms ({ttfb_ratio:.1f}x)",
        ),
    ]
    notes = [
        f"chunk {chunk_bytes // MIB} MiB, producer queue {queue_depth} chunks, "
        f"buffered capped at {buffered_cap_mib} MiB; loopback TCP, client and "
        "server in one process (tracemalloc sees both sides)",
        "signed = per-chunk HMAC-SHA256 with a chained trailer "
        "(repro.core.security.sign_stream), verified incrementally in flight",
    ]
    return ExperimentResult(
        experiment_id="Figure S",
        title="Streaming vs buffered large-message pipeline (TTFB and peak memory)",
        columns=columns,
        rows=rows,
        checks=checks,
        notes=notes,
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Regenerate the streaming large-message pipeline figure."
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        metavar="MIB",
        help=f"message sizes in MiB (default {' '.join(map(str, DEFAULT_SIZES_MIB))})",
    )
    parser.add_argument("--buffered-cap", type=int, default=DEFAULT_BUFFERED_CAP_MIB)
    parser.add_argument("--chunk-kib", type=int, default=DEFAULT_CHUNK_BYTES // 1024)
    parser.add_argument("--queue-depth", type=int, default=DEFAULT_QUEUE_DEPTH)
    parser.add_argument("--json-out", default=None, help="write the sweep JSON here")
    parser.add_argument(
        "--distributed-trace",
        action="store_true",
        help="run the cross-process tracing demo with streamed-pipeline "
        "chunk markers (stream.first_chunk/stream.last_chunk events) and "
        "verify the assembled trace instead of the size sweep",
    )
    args = parser.parse_args()
    if args.distributed_trace:
        from repro.harness.dtrace import run_distributed_trace_demo

        demo = run_distributed_trace_demo(core="threaded", streamed_markers=True)
        for problem in demo["problems"]:
            print(f"PROBLEM: {problem}")
        print(
            f"distributed-trace[stream]: trace {demo['trace_id']} "
            f"wire {demo['wire_seconds'] * 1e3:.3f}ms "
            f"[{'OK' if demo['ok'] else 'FAIL'}]"
        )
        raise SystemExit(0 if demo["ok"] else 1)
    result = run(
        sizes_mib=tuple(args.sizes) if args.sizes else DEFAULT_SIZES_MIB,
        buffered_cap_mib=args.buffered_cap,
        chunk_bytes=args.chunk_kib * 1024,
        queue_depth=args.queue_depth,
        json_out=args.json_out,
    )
    print(result.render())
    raise SystemExit(0 if result.all_checks_pass else 1)
