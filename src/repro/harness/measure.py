"""Measurement substrate shared by the experiment harness.

Two concerns live here so the scheme runners stay about *what* to measure,
not *how*:

* :func:`timed_median` / :func:`median_seconds` — repeat-and-take-median
  timing on the calibrated 2006 clock.  The median of an even number of
  samples is the average of the two middle values; the seed's
  ``times[len(times) // 2]`` picked the upper middle one, biasing every
  even-repeat measurement toward its slower half.
* :func:`traced_run` — run one harness exchange under a fresh
  :class:`~repro.obs.TraceRecorder` and write the resulting span tree as
  JSON, so ``--trace-out`` can decompose each reported number into the
  measured-CPU and modelled-wire spans that produced it.
"""

from __future__ import annotations

import os
import re
import time
from typing import Callable, Sequence

from repro import obs
from repro.harness.calibration import cpu_scale


def median_seconds(samples: Sequence[float]) -> float:
    """Median of timing samples.

    An even count averages the two middle samples — returning the upper
    middle one (the seed behaviour) is biased high, and the bias is worst
    exactly where medians matter: small, noisy sample counts.
    """
    if not samples:
        raise ValueError("median of no samples")
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def timed_median(fn: Callable[[], object], repeats: int, *, scale: bool = True):
    """Run ``fn`` ``repeats`` times; returns (median seconds, last result).

    The first (unmeasured) call excludes first-touch page faults and
    allocator growth.  With ``scale`` the median is multiplied by
    :func:`~repro.harness.calibration.cpu_scale` so measured CPU segments
    live on the same 2006 clock as the modelled wire segments.  Each
    measured duration also feeds the ``harness.sample_seconds`` histogram
    of the active recorder.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    fn()  # warmup
    hist = obs.histogram("harness.sample_seconds")
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        hist.observe(elapsed)
    median = median_seconds(times)
    return (median * cpu_scale() if scale else median), result


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", str(text)).strip("-") or "exchange"


def traced_run(trace_dir, name: str, fn: Callable[[], object], **meta):
    """Run ``fn`` under a fresh recorder; write its span tree to a file.

    With ``trace_dir`` falsy this is exactly ``fn()`` — the no-op recorder
    stays installed and the instrumented code paths cost two function
    calls per site.  Otherwise the whole exchange runs inside a root
    ``exchange`` span (every :meth:`TimeBreakdown.charge
    <repro.netsim.clock.TimeBreakdown.charge>` accounting span and every
    library span nests under it) and the tree lands in
    ``<trace_dir>/<name>.json`` with ``meta`` embedded.  When ``fn``
    returns a :class:`~repro.harness.runners.SchemeResult`-shaped object,
    the reported total is stamped on the root span so consumers can
    reconcile the tree against the figure's numbers without re-deriving
    them.
    """
    if not trace_dir:
        return fn()
    recorder = obs.TraceRecorder()
    with obs.recording(recorder):
        with recorder.span("exchange", kind="logical", **meta) as root:
            result = fn()
            breakdown = getattr(result, "breakdown", None)
            if breakdown is not None:
                root.set("reported_total_seconds", breakdown.total)
            repeats = getattr(result, "repeats", None)
            if repeats:
                root.set("repeats", repeats)
    os.makedirs(trace_dir, exist_ok=True)
    path = os.path.join(trace_dir, _slug(name) + ".json")
    obs.write_trace(path, recorder, meta=meta)
    return result
