"""Measurement substrate shared by the experiment harness.

Two concerns live here so the scheme runners stay about *what* to measure,
not *how*:

* :func:`timed_median` / :func:`median_seconds` — repeat-and-take-median
  timing on the calibrated 2006 clock.  The median of an even number of
  samples is the average of the two middle values; the seed's
  ``times[len(times) // 2]`` picked the upper middle one, biasing every
  even-repeat measurement toward its slower half.
* :func:`traced_run` — run one harness exchange under a fresh
  :class:`~repro.obs.TraceRecorder` and write the resulting span tree as
  JSON, so ``--trace-out`` can decompose each reported number into the
  measured-CPU and modelled-wire spans that produced it.  A
  :class:`~repro.obs.HeadSampler` thins the trace *files* (a full
  figure sweep writes dozens of span trees); metrics stay exact — every
  exchange is counted and its recorder metrics merged into the run
  registry whether or not its tree was kept.
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Callable, Sequence

from repro import obs
from repro.harness.calibration import cpu_scale
from repro.obs.exposition import render_prometheus, render_varz
from repro.obs.metrics import MetricsRegistry


def median_seconds(samples: Sequence[float]) -> float:
    """Median of timing samples.

    An even count averages the two middle samples — returning the upper
    middle one (the seed behaviour) is biased high, and the bias is worst
    exactly where medians matter: small, noisy sample counts.
    """
    if not samples:
        raise ValueError("median of no samples")
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def timed_median(fn: Callable[[], object], repeats: int, *, scale: bool = True):
    """Run ``fn`` ``repeats`` times; returns (median seconds, last result).

    The first (unmeasured) call excludes first-touch page faults and
    allocator growth.  With ``scale`` the median is multiplied by
    :func:`~repro.harness.calibration.cpu_scale` so measured CPU segments
    live on the same 2006 clock as the modelled wire segments.  Each
    measured duration also feeds the ``harness.sample_seconds`` histogram
    of the active recorder.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    fn()  # warmup
    hist = obs.histogram("harness.sample_seconds")
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        hist.observe(elapsed)
    median = median_seconds(times)
    return (median * cpu_scale() if scale else median), result


def traced_peak_bytes(fn: Callable[[], object], *, repeats: int = 1):
    """Peak Python-heap allocation of ``fn()``: (peak bytes, last result).

    Same discipline as :func:`timed_median`: one unmeasured warmup call
    first, so allocator arena growth, import side effects and lazily
    built caches do not masquerade as the workload's own peak; then the
    *minimum* peak over ``repeats`` traced runs — memory peaks are
    deterministic for a deterministic workload, so the floor is the
    workload and anything above it is GC timing noise (the opposite
    tail from wall-clock, where the noise is additive and the median is
    the right summary).

    Uses :mod:`tracemalloc`, which since NumPy 1.22 also sees array
    buffer allocations — the dominant term for this project's payloads.
    Slower than running untraced (every allocation takes a bookkeeping
    hit), so keep timing and peak measurements in separate passes.
    """
    import gc
    import tracemalloc

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    fn()  # warmup
    peaks = []
    result = None
    for _ in range(repeats):
        gc.collect()
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            result = fn()
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        peaks.append(peak)
    return min(peaks), result


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", str(text)).strip("-") or "exchange"


def traced_run(
    trace_dir,
    name: str,
    fn: Callable[[], object],
    *,
    metrics: MetricsRegistry | None = None,
    sampler=None,
    **meta,
):
    """Run ``fn`` under a fresh recorder; write its span tree to a file.

    With ``trace_dir`` falsy and no ``metrics`` registry this is exactly
    ``fn()`` — the no-op recorder stays installed and the instrumented
    code paths cost two function calls per site.  Otherwise the whole
    exchange runs inside a root ``exchange`` span (every
    :meth:`TimeBreakdown.charge <repro.netsim.clock.TimeBreakdown.charge>`
    accounting span and every library span nests under it) and the tree
    lands in ``<trace_dir>/<name>.json`` with ``meta`` embedded.  When
    ``fn`` returns a :class:`~repro.harness.runners.SchemeResult`-shaped
    object, the reported total is stamped on the root span so consumers
    can reconcile the tree against the figure's numbers without
    re-deriving them.

    ``sampler`` (a :class:`~repro.obs.HeadSampler`) makes the
    keep-this-trace-file decision keyed on ``name`` — deterministic per
    seed, so reruns keep the same exchanges.  Sampling thins *files
    only*: a dropped exchange still runs instrumented when ``metrics`` is
    given, so counters stay exact and the kept trees still reconcile
    against their reported totals.  ``metrics`` receives every
    per-exchange recorder's counters/histograms (merged), a
    ``harness_exchanges_total{figure,scheme}`` count and the sampler's
    running sampled/dropped gauges.
    """
    write_trace_file = bool(trace_dir)
    if write_trace_file and sampler is not None:
        write_trace_file = sampler.should_sample(name)
        if metrics is not None:
            sampler.count_into(metrics)
    if not write_trace_file and metrics is None:
        return fn()
    recorder = obs.TraceRecorder()
    with obs.recording(recorder):
        with recorder.span("exchange", kind="logical", **meta) as root:
            result = fn()
            breakdown = getattr(result, "breakdown", None)
            if breakdown is not None:
                root.set("reported_total_seconds", breakdown.total)
            repeats = getattr(result, "repeats", None)
            if repeats:
                root.set("repeats", repeats)
    if metrics is not None:
        metrics.merge(recorder.metrics)
        labels = {
            "figure": str(meta.get("figure", "")),
            "scheme": str(meta.get("scheme", "")),
        }
        metrics.counter("harness_exchanges_total", labels=labels).add()
        if breakdown is not None:
            metrics.histogram("harness_exchange_seconds", labels=labels).observe(
                breakdown.total
            )
    if write_trace_file:
        os.makedirs(trace_dir, exist_ok=True)
        path = os.path.join(trace_dir, _slug(name) + ".json")
        obs.write_trace(path, recorder, meta=meta)
    return result


# ---------------------------------------------------------------------------
# CLI plumbing shared by the figure modules


def add_observability_args(parser) -> None:
    """The ``--trace-out`` / ``--metrics-out`` / sampling argparse knobs."""
    parser.add_argument(
        "--trace-out",
        metavar="DIR",
        default=None,
        help="write one span-tree JSON per exchange into DIR",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the run's metrics registry to FILE "
        "(Prometheus text; .json gets the /varz JSON document)",
    )
    parser.add_argument(
        "--trace-sample",
        metavar="RATE",
        type=float,
        default=1.0,
        help="keep this fraction of trace files (default 1.0 = all)",
    )
    parser.add_argument(
        "--trace-seed",
        metavar="N",
        type=int,
        default=0,
        help="sampling seed: same seed keeps the same exchanges (default 0)",
    )


def observability_from_args(args):
    """(trace_dir, metrics registry or None, sampler or None) from argparse."""
    metrics = MetricsRegistry() if (args.metrics_out or args.trace_out) else None
    sampler = None
    if args.trace_sample < 1.0:
        sampler = obs.HeadSampler(args.trace_sample, args.trace_seed)
    return args.trace_out, metrics, sampler


def write_metrics_out(metrics: MetricsRegistry, path: str, **info) -> None:
    """Dump ``metrics`` to ``path``: Prometheus text, or /varz JSON for
    ``*.json`` paths.  ``info`` goes into the JSON document's server block."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    if path.endswith(".json"):
        document = render_varz(metrics, **info)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(metrics))
