"""Wire-overhead accounting: exact framing bytes per protocol leg.

Rather than guessing header sizes, these helpers *build* the real protocol
messages with the project's own codecs and measure them — so the modelled
wire time is fed the same byte counts the live stack puts on a channel.
"""

from __future__ import annotations

from repro.transport.http.messages import HttpRequest, HttpResponse
from repro.transport.tcp_binding import write_message


class _CountingChannel:
    def __init__(self) -> None:
        self.sent = 0

    def send_all(self, data: bytes) -> None:
        self.sent += len(data)


def tcp_message_bytes(payload_size: int, content_type: str) -> int:
    """On-the-wire size of one TCP-binding SOAP message."""
    sink = _CountingChannel()
    write_message(sink, b"", content_type)  # header bytes are payload-independent
    return sink.sent + payload_size


def http_post_bytes(payload_size: int, content_type: str, target: str = "/soap") -> int:
    """On-the-wire size of a SOAP POST request (headers built for real)."""
    request = HttpRequest("POST", target)
    request.headers.set("Host", "localhost")
    request.headers.set("Content-Type", content_type)
    request.headers.set("SOAPAction", '""')
    request.headers.set("Content-Length", str(payload_size))
    return len(request.to_bytes()) + payload_size


def http_response_bytes(payload_size: int, content_type: str) -> int:
    """On-the-wire size of an HTTP response carrying ``payload_size``."""
    response = HttpResponse(200)
    response.headers.set("Content-Type", content_type)
    response.headers.set("Connection", "keep-alive")
    response.headers.set("Content-Length", str(payload_size))
    return len(response.to_bytes()) + payload_size


def http_get_bytes(target: str, host: str = "datahost") -> int:
    """On-the-wire size of the separated scheme's GET request."""
    request = HttpRequest("GET", target)
    request.headers.set("Host", host)
    return len(request.to_bytes())
