"""Plain-text rendering of experiment results.

Every experiment module produces an :class:`ExperimentResult` — an id, a
headline, column labels, rows, and the list of *shape checks* (the
qualitative claims from the paper the reproduction is expected to hold) —
which renders to the fixed-width tables printed by the benchmarks and
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ShapeCheck:
    """One qualitative expectation from the paper, evaluated on our data."""

    description: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        line = f"  [{mark}] {self.description}"
        if self.detail:
            line += f" — {self.detail}"
        return line


@dataclass
class ExperimentResult:
    """A regenerated table or figure plus its shape verdicts."""

    experiment_id: str  #: e.g. "Table 1", "Figure 5"
    title: str
    columns: list[str]
    rows: list[list[str]]
    checks: list[ShapeCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def all_checks_pass(self) -> bool:
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(render_table(self.columns, self.rows))
        if self.checks:
            lines.append("shape checks vs the paper:")
            lines.extend(check.render() for check in self.checks)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def render_table(columns: list[str], rows: list[list[str]]) -> str:
    """Fixed-width table with a header rule; all cells pre-stringified."""
    table = [list(map(str, columns))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(columns))]

    def fmt(row):
        return "  ".join(cell.rjust(width) for cell, width in zip(row, widths))

    out = [fmt(table[0]), "  ".join("-" * w for w in widths)]
    out.extend(fmt(row) for row in table[1:])
    return "\n".join(out)


def render_series_table(
    x_label: str,
    x_values: list,
    series: dict[str, list[float]],
    value_format: str = "{:.3g}",
) -> tuple[list[str], list[list[str]]]:
    """Figure data as (columns, rows): one x column + one column per curve."""
    columns = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row = [str(x)]
        for name in series:
            value = series[name][i] if i < len(series[name]) else None
            row.append("-" if value is None else value_format.format(value))
        rows.append(row)
    return columns, rows
