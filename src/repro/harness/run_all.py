"""Regenerate every experiment and write EXPERIMENTS.md.

Usage::

    python -m repro.harness.run_all [output-path]

Runs Table 1 and Figures 4-6 with the paper's full parameter sweeps,
prints each rendered result, and writes the paper-vs-measured record to
``EXPERIMENTS.md`` (or the given path).
"""

from __future__ import annotations

import platform
import sys

from repro.harness import (
    extension_attachments,
    extension_rtt,
    figure4,
    figure5,
    figure6,
    figure_fed,
    figure_load,
    figure_stream,
    table1,
)
from repro.harness.calibration import cpu_scale
from repro.harness.report import ExperimentResult

#: The paper's own numbers, quoted next to ours in the output.
PAPER_CONTEXT = {
    "Table 1": (
        "(model size 1000): native 12000 B (0%), BXSA 12156 B (+1.3%), "
        "netCDF 12268 B (+2.2%), XML 1.0 23896 B (+99.1%)."
    ),
    "Figure 4": (
        "(LAN, 0.2 ms RTT): BXSA/TCP lowest and almost flat; XML/HTTP "
        "cheap when tiny but rising past SOAP+HTTP before model size 1000; "
        "SOAP+HTTP a fixed offset above the unified schemes; SOAP+GridFTP "
        "flat near 0.25 s, dominated by authentication."
    ),
    "Figure 5": (
        "(LAN): BXSA/TCP best throughout, saturating at ~960K pairs/s "
        "(a single untuned TCP stream); SOAP+HTTP slightly lower (netCDF "
        "disk I/O); GridFTP converging as auth amortizes, with parallel "
        "streams slightly *hurting* on the LAN; XML/HTTP near zero."
    ),
    "Figure 6": (
        "(WAN, 5.75 ms RTT): ordering partially flips — GridFTP's "
        "16 parallel streams escape the single-stream window limit and win "
        "at the large end, while BXSA/TCP and SOAP+HTTP sit together at the "
        "single-stream ceiling."
    ),
    "Extension A": (
        "(§6 footnote 1, asserted without measurement): the attachment "
        "solution 'in terms of performance should be close to SOAP with "
        "HTTP data channel'.  We test both packaging variants of the era."
    ),
    "Extension B": (
        "(implicit in the paper): Figures 5 and 6 are two points of one curve; "
        "the crossover RTT should sit near window/capacity."
    ),
    "Figure L": (
        "(beyond the paper's one-client evaluation): under open-loop "
        "overload a production engine must degrade by shedding rather than "
        "collapse, and BXSA's cheaper codec should let the same worker pool "
        "sustain higher goodput at saturation than XML 1.0 — the "
        "serving-side companion to the Figures 4-6 response-time results."
    ),
    "Figure S": (
        "(beyond the paper's buffered exchanges): §4's streamed container "
        "profile only pays off if no layer re-buffers the message — the "
        "writer, the HTTP framing, the signature layer and the decoder "
        "must all run in O(chunk) memory, and the first byte must leave "
        "before the last byte is produced.  Chunk signing follows Kohring "
        "& Lo Iacono's non-blocking streaming-signature construction."
    ),
    "Figure F": (
        "(beyond the paper's single-endpoint deployment): a grid service "
        "is many replicas, not one — following the data-federation "
        "deployments the paper targets, a client-side balancer plus a "
        "content-addressed cache should (a) serve a warm hit with zero "
        "upstream exchanges, (b) sustain aggregate goodput a saturated "
        "single node sheds, and (c) survive a replica's abrupt death "
        "without losing an exchange."
    ),
}


def run_all() -> list[ExperimentResult]:
    results = [
        table1.run(),
        figure4.run(),
        figure5.run(),
        figure6.run(),
        extension_attachments.run(),
        extension_rtt.run(),
        figure_load.run(),
        figure_stream.run(),
        figure_fed.run(),
    ]
    return results


def to_markdown(results: list[ExperimentResult]) -> str:
    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Regenerated with `python -m repro.harness.run_all` "
        "(equivalently: `pytest benchmarks/ --benchmark-only`).",
        "",
        "Methodology: response time = **measured CPU** (real codecs, netCDF,",
        "verification and file handling on this machine, median of repeats,",
        f"scaled by the CPU-era factor {cpu_scale():g} — see",
        "`repro/harness/calibration.py`) + **modelled wire/disk time**",
        "(`repro.netsim`, parameterized with the paper's RTTs and era-",
        "plausible capacities; every constant documented in",
        "`repro/netsim/profiles.py`).  Absolute numbers are therefore not",
        "comparable to the paper's testbed; the *shape checks* under each",
        "table encode the comparisons that are.",
        "",
        f"Environment: Python {platform.python_version()}, {platform.machine()}.",
        "",
        "Lossy-link replays: every figure accepts a `fault_profile` — e.g.",
        "`figure4.run(fault_profile=FLAKY_LAN, fault_seed=1)` with",
        "`from repro.netsim.faults import FLAKY_LAN` — which re-runs each",
        "exchange *live* through a seeded fault-injecting channel (connection",
        "resets, truncated sends, stalls, slow reads; see",
        "`repro/netsim/faults.py`) with bounded retries, and charges the",
        "observed recovery attempts as extra wire time (`wire: fault",
        "retries` in the breakdown).  The tables below are the lossless",
        "baseline.",
        "",
        "Serving under load: `python -m repro.harness.figure_load` drives",
        "the bounded worker-pool runtime (`repro.serve`) with the open-loop",
        "generator (`repro.loadgen`) and draws the throughput-latency curve",
        "per encoding.  Knobs: `--workers` / `--queue-depth` size the pool",
        "and its admission queue, `--requests` sets the samples per rung,",
        "`--seed` fixes the arrival schedule and payload, `--rates` pins",
        "absolute arrival rates (rps) instead of the default ladder of",
        "0.5/1/2/4x the measured closed-loop XML/HTTP capacity, and",
        "`--json-out` writes every point's goodput, p50/p95/p99 and exact",
        "offered = completed + shed + failed accounting as JSON.  Read the",
        "curve as: below capacity goodput tracks offered load and nothing",
        "sheds; past capacity goodput plateaus at the scheme's capacity,",
        "p95 grows toward the queue bound, and the excess is answered with",
        "`503` + `Retry-After` (the shed% column) — never with errors or",
        "unbounded queueing.",
        "",
        "Streaming large messages: `python -m repro.harness.figure_stream`",
        "measures the chunked pipeline — sink-driven `BXSAStreamWriter`",
        "behind a bounded producer queue, HTTP/1.1 chunked",
        "Transfer-Encoding through the threaded server and client,",
        "optional per-chunk HMAC signing verified in flight, incremental",
        "`StreamDecoder` consumption — against the buffered baseline that",
        "assembles the whole message before the first byte moves.  Knobs:",
        "`--sizes` (MiB rungs), `--buffered-cap` (largest size the",
        "buffered mode is asked to carry), `--chunk-kib`, `--queue-depth`,",
        "`--json-out`.  Read the table as: streamed TTFB and peak memory",
        "stay flat as the message grows (peak ≤ 4 transfer chunks, signed",
        "or not) while the buffered column's TTFB and peak grow linearly",
        "with the payload.  `benchmarks/bench_stream.py` pins the peak and",
        "TTFB ratios in `benchmarks/results/stream.json`, enforced by",
        "`tools/bench_guard.py`, and `tools/stream_smoke.py` runs the",
        "64 MiB exchange (plus a tamper check) as a verify-flow step.",
        "",
        "Federated data plane: `python -m repro.harness.figure_fed` runs a",
        "3-replica federation behind `repro.fed` — the client-side load",
        "balancer (round-robin / least-outstanding / EWMA-latency policies,",
        "`/readyz`-gated health probes, per-replica circuit breakers,",
        "failover replayed through `retry_call`), the content-addressed",
        "response cache (TTL + LRU-bytes, single-flight coalescing) and",
        "multi-source striped transfers with per-stripe digests.  Knobs:",
        "`--quick` shrinks every section, `--skip-subprocess` drops the",
        "multi-process goodput run, `--seed` fixes payload choice and",
        "arrival schedules, `--json-out` dumps every cell.  Read it as: the",
        "matrix shows goodput rising and upstream exchanges falling as the",
        "hit ratio grows (a warm hit is verified to make *zero* upstream",
        "exchanges against the balancer's request counter); the goodput",
        "rows show one node shedding the offered rate a 3-node federation",
        "completes; the node-kill row shows exact accounting with nothing",
        "failed while a replica dies mid-load.  `tools/fed_smoke.py` runs",
        "the 3-process cluster (one killed) as a verify-flow step and",
        "`benchmarks/bench_fed.py` pins the federation/single goodput ratio",
        "and the warm-hit latency in `benchmarks/results/fed.json`.",
        "",
        "Hot-path codec sessions: the figures above time the *cold*",
        "per-message codec cost (`session=False`), matching the paper's",
        "one-shot exchanges.  Sustained same-shape traffic instead rides",
        "`repro.bxsa.CodecSession`'s compiled plans in both directions:",
        "encode plans replay pre-rendered constant byte runs, and decode",
        "plans — keyed by a structural fingerprint of the byte stream —",
        "replay pre-resolved QNames, scalar slots and zero-copy array views",
        "with every structural byte memcmp'd, the first reuse",
        "structure-checked against the stateless decoder, and divergent",
        "shapes poisoned to the slow path.  `benchmarks/bench_hotpath.py`",
        "prints cold/warm microseconds per direction (cold/warm encode and",
        "decode columns plus enc/dec/roundtrip ratios) and pins the ratios",
        "and a `warm_decode_us` ceiling in",
        "`benchmarks/results/hotpath.json`, enforced by",
        "`tools/bench_guard.py`.",
        "",
    ]
    for result in results:
        lines.append(f"## {result.experiment_id}: {result.title}")
        lines.append("")
        context = PAPER_CONTEXT.get(result.experiment_id)
        if context:
            lines.append(f"**Paper:** {context}")
            lines.append("")
        lines.append("**Measured:**")
        lines.append("")
        lines.append("```text")
        lines.append(result.render())
        lines.append("```")
        lines.append("")
        verdict = "all shape checks PASS" if result.all_checks_pass else "SHAPE CHECK FAILURES — see above"
        lines.append(f"**Verdict:** {verdict}.")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    output = argv[1] if len(argv) > 1 else "EXPERIMENTS.md"
    results = run_all()
    for result in results:
        print(result.render())
        print()
    markdown = to_markdown(results)
    with open(output, "w") as fh:
        fh.write(markdown)
    print(f"wrote {output}")
    return 0 if all(r.all_checks_pass for r in results) else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
