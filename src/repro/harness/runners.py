"""Scheme runners: one function per evaluated configuration.

Each runner executes the *real* code path of its scheme (the same modules
the live services use), timing every CPU segment, and charges modelled
wire/disk segments computed from the real byte counts.  The result is a
labelled :class:`~repro.netsim.TimeBreakdown`, so every reported number
decomposes into its causes.

The four schemes of §6:

=============================  =============================================
``soap-bxsa-tcp``              unified: data in the message, BXSA over TCP
``soap-xml-http``              unified: data in the message, XML over HTTP
``soap+http``                  separated: netCDF file pulled over HTTP
``soap+gridftp``               separated: netCDF pulled over striped GridFTP
=============================  =============================================
"""

from __future__ import annotations

import itertools
import os
import tempfile
import time
from dataclasses import dataclass

from repro.core.client import SoapHttpClient, SoapTcpClient
from repro.core.envelope import SoapEnvelope
from repro.core.policies import BXSAEncoding, XMLEncoding
from repro.core.service import SoapHttpService, SoapTcpService
from repro.gridftp.auth import GSI_CRYPTO_TIME, GSI_HANDSHAKE_ROUND_TRIPS
from repro.gridftp.client import GridFTPClient
from repro.gridftp.errors import GridFTPError
from repro.gridftp.server import GridFTPServer
from repro.gridftp.auth import HostCredential
from repro.harness import overheads
from repro.harness.measure import median_seconds, timed_median
from repro.netcdf.writer import write_dataset_bytes
from repro.netsim import (
    DiskModel,
    LinkProfile,
    TimeBreakdown,
    connection_setup_time,
    striped_transfer_time,
    transfer_time,
)
from repro.netsim.faults import FaultProfile, FaultSchedule, faulty_connect
from repro.netsim.tcpmodel import aggregate_bandwidth
from repro.services.verification import (
    build_verification_dispatcher,
    make_reference_request,
    make_unified_request,
    parse_verification_response,
)
from repro.transport import MemoryNetwork
from repro.transport.base import TransportError
from repro.transport.http.client import HttpClient
from repro.transport.http.messages import HttpResponse
from repro.transport.http.server import HttpServer
from repro.transport.resilience import RetryPolicy, retry_call
from repro.workloads.lead import LeadDataset

SCHEME_BXSA_TCP = "soap-bxsa-tcp"
SCHEME_XML_HTTP = "soap-xml-http"
SCHEME_SOAP_HTTP_CHANNEL = "soap+http"
SCHEME_SOAP_GRIDFTP = "soap+gridftp"

#: Retry policy for lossy-profile replays: a generous attempt budget with
#: tiny *real* backoff (the live exchange only exists to observe protocol
#: behaviour; the era wire cost of each retry is charged from the model).
FAULT_REPLAY_RETRY = RetryPolicy(
    max_attempts=8, base_backoff=0.0005, backoff_multiplier=2.0, max_backoff=0.01
)


@dataclass
class SchemeResult:
    """Outcome of running one scheme at one model size on one link."""

    scheme: str
    model_size: int
    breakdown: TimeBreakdown
    request_wire_bytes: int
    response_wire_bytes: int
    data_wire_bytes: int = 0
    n_streams: int = 1
    #: Extra attempts the live lossy-profile replay needed (0 = clean).
    fault_retries: int = 0
    #: Faults the schedule injected during the replay.
    faults_injected: int = 0
    #: Timing repeats each measured CPU segment was medianed over.
    repeats: int = 1

    @property
    def response_time(self) -> float:
        """End-to-end response time at the client, seconds."""
        return self.breakdown.total

    @property
    def bandwidth_pairs_per_sec(self) -> float:
        """The paper's Figure 5/6 metric: model size / response time."""
        if self.response_time == 0:
            return 0.0
        return self.model_size / self.response_time

    @property
    def label(self) -> str:
        if self.scheme == SCHEME_SOAP_GRIDFTP:
            return f"{self.scheme}({self.n_streams})"
        return self.scheme


def _repeats_for(model_size: int) -> int:
    """More repeats for small (noise-prone) sizes, one for huge ones."""
    if model_size <= 2_000:
        return 7
    return 3


#: Timing now lives in :mod:`repro.harness.measure`; the old name stays
#: importable for code grown against the seed's private helper.
_measure_median = timed_median


# ---------------------------------------------------------------------------
# lossy-profile replay (the fault-injection knob)


def _run_faulted_soap_exchange(
    encoding, binding_name: str, request_env, fault_profile: FaultProfile, fault_seed: int, dispatcher
) -> tuple[int, int]:
    """Run one *live* SOAP invoke over a fault-injected memory link.

    The same client/service modules the experiments model are driven
    through a :class:`~repro.netsim.faults.FaultingChannel` with resilience
    enabled, so the figure replay observes real recovery behaviour.
    Returns ``(extra_connection_attempts, faults_injected)``; a profile
    whose faults outlast the retry budget raises the typed transport error
    (the harness does not hide an unsurvivable link).
    """
    net = MemoryNetwork()
    schedule = FaultSchedule(fault_profile, fault_seed)
    connects = {"n": 0}

    def counted_connect():
        connects["n"] += 1
        return net.connect("svc")

    connect = faulty_connect(counted_connect, schedule)
    if binding_name == "tcp":
        service = SoapTcpService(net.listen("svc"), dispatcher, encoding=encoding)
        client = SoapTcpClient(
            connect, encoding=encoding, retry=FAULT_REPLAY_RETRY, idempotent=True
        )
    else:
        service = SoapHttpService(net.listen("svc"), dispatcher, encoding=encoding)
        client = SoapHttpClient(
            connect, encoding=encoding, retry=FAULT_REPLAY_RETRY, idempotent=True
        )
    service.start()
    try:
        # clients refuse automatic replay once response bytes have been
        # consumed (the duplicate-delivery guard); the harness's exchange
        # is replay-safe, so failed calls re-invoke at application level
        last_error = None
        for _ in range(FAULT_REPLAY_RETRY.max_attempts):
            try:
                client.call(request_env)
                last_error = None
                break
            except TransportError as exc:
                last_error = exc
        if last_error is not None:
            raise last_error
    finally:
        client.close()
        service.stop()
    return max(0, connects["n"] - 1), schedule.faults_injected


def _run_faulted_http_fetch(
    blob: bytes, fault_profile: FaultProfile, fault_seed: int
) -> tuple[int, int]:
    """Live file GET over a fault-injected link (separated HTTP scheme)."""
    net = MemoryNetwork()

    def handler(_request):
        response = HttpResponse(200, body=blob)
        response.headers.set("Content-Type", "application/x-netcdf")
        return response

    server = HttpServer(net.listen("data"), handler, name="fault-data").start()
    schedule = FaultSchedule(fault_profile, fault_seed)
    connects = {"n": 0}

    def counted_connect():
        connects["n"] += 1
        return net.connect("data")

    client = HttpClient(faulty_connect(counted_connect, schedule), retry=FAULT_REPLAY_RETRY)
    try:
        # the client will not auto-replay a GET once response bytes landed;
        # re-issuing the whole (idempotent) fetch is the application's call
        last_error = None
        for _ in range(FAULT_REPLAY_RETRY.max_attempts):
            try:
                response = client.get("/run.nc")
                last_error = None
                break
            except TransportError as exc:
                last_error = exc
        if last_error is not None:
            raise last_error
        if response.body != blob:
            raise AssertionError("faulted fetch returned corrupt data")
    finally:
        client.close()
        server.stop()
    return max(0, connects["n"] - 1), schedule.faults_injected


# ---------------------------------------------------------------------------
# unified schemes


def run_unified(
    dataset: LeadDataset,
    profile: LinkProfile,
    *,
    encoding_name: str,
    binding_name: str,
    repeats: int | None = None,
    new_connection: bool = True,
    fault_profile: FaultProfile | None = None,
    fault_seed: int = 0,
) -> SchemeResult:
    """The unified scheme: the dataset rides inside the SOAP message.

    ``encoding_name`` ∈ {"bxsa", "xml"}; ``binding_name`` ∈ {"tcp", "http"}.
    All four combinations work (the generic engine's point); the paper
    evaluates bxsa/tcp and xml/http.

    ``fault_profile`` replays the exchange *live* over a fault-injected
    link (seeded by ``fault_seed``) and charges the extra wire time each
    recovery retry would have cost on ``profile``.
    """
    # session=False: the harness measures the *cold* per-message codec cost
    # (Figures 4-6 time each encode/decode as a standalone message); a warm
    # CodecSession would turn timed_median's repeats into plan replays and
    # silently change what the figures report.
    encoding = (
        BXSAEncoding(session=False) if encoding_name == "bxsa" else XMLEncoding()
    )
    repeats = repeats if repeats is not None else _repeats_for(dataset.model_size)
    dispatcher = build_verification_dispatcher()
    tb = TimeBreakdown()

    request_env = make_unified_request(dataset)

    t, request_payload = timed_median(
        lambda: encoding.encode(request_env.to_document()), repeats
    )
    tb.charge("client encode", t, repeats=repeats)

    t, decoded = timed_median(
        lambda: SoapEnvelope.from_document(encoding.decode(request_payload)), repeats
    )
    tb.charge("server decode", t, repeats=repeats)

    t, response_env = timed_median(lambda: dispatcher.dispatch(decoded), repeats)
    tb.charge("server verify", t, repeats=repeats)

    t, response_payload = timed_median(
        lambda: encoding.encode(response_env.to_document()), repeats
    )
    tb.charge("server encode", t, repeats=repeats)

    t, response = timed_median(
        lambda: SoapEnvelope.from_document(encoding.decode(response_payload)), repeats
    )
    tb.charge("client decode", t, repeats=repeats)
    result = parse_verification_response(response.body_root)
    if not result.ok or result.count != dataset.model_size:
        raise AssertionError(f"verification failed: {result}")

    if binding_name == "tcp":
        req_wire = overheads.tcp_message_bytes(len(request_payload), encoding.content_type)
        resp_wire = overheads.tcp_message_bytes(len(response_payload), encoding.content_type)
    else:
        req_wire = overheads.http_post_bytes(len(request_payload), encoding.content_type)
        resp_wire = overheads.http_response_bytes(len(response_payload), encoding.content_type)

    if new_connection:
        tb.charge("wire: connect", connection_setup_time(profile))
    tb.charge("wire: request", transfer_time(profile, req_wire))
    tb.charge("wire: response", transfer_time(profile, resp_wire))

    fault_retries = faults_injected = 0
    if fault_profile is not None:
        fault_retries, faults_injected = _run_faulted_soap_exchange(
            encoding, binding_name, request_env, fault_profile, fault_seed, dispatcher
        )
        # each recovery attempt reconnects and resends the request
        tb.charge(
            "wire: fault retries",
            fault_retries * (connection_setup_time(profile) + transfer_time(profile, req_wire)),
        )

    scheme = SCHEME_BXSA_TCP if (encoding_name, binding_name) == ("bxsa", "tcp") else (
        SCHEME_XML_HTTP
        if (encoding_name, binding_name) == ("xml", "http")
        else f"soap-{encoding_name}-{binding_name}"
    )
    return SchemeResult(
        scheme=scheme,
        model_size=dataset.model_size,
        breakdown=tb,
        request_wire_bytes=req_wire,
        response_wire_bytes=resp_wire,
        fault_retries=fault_retries,
        faults_injected=faults_injected,
        repeats=repeats,
    )


# ---------------------------------------------------------------------------
# separated schemes


def _control_exchange_wire(profile: LinkProfile, url: str, tb: TimeBreakdown, repeats: int):
    """The small SOAP control exchange shared by both separated schemes.

    Returns (req_wire, resp_wire) and charges measured codec CPU + wire.
    """
    encoding = XMLEncoding()
    request_env = make_reference_request(url)
    t, request_payload = timed_median(
        lambda: encoding.encode(request_env.to_document()), repeats
    )
    tb.charge("client encode", t, repeats=repeats)
    t, _decoded = timed_median(
        lambda: SoapEnvelope.from_document(encoding.decode(request_payload)), repeats
    )
    tb.charge("server decode", t, repeats=repeats)

    req_wire = overheads.http_post_bytes(len(request_payload), encoding.content_type)
    tb.charge("wire: connect", connection_setup_time(profile))
    tb.charge("wire: request", transfer_time(profile, req_wire))
    return encoding, req_wire


def _respond_and_charge(encoding, result_env, profile, tb, repeats) -> int:
    t, response_payload = timed_median(
        lambda: encoding.encode(result_env.to_document()), repeats
    )
    tb.charge("server encode", t, repeats=repeats)
    t, _ = timed_median(
        lambda: SoapEnvelope.from_document(encoding.decode(response_payload)), repeats
    )
    tb.charge("client decode", t, repeats=repeats)
    resp_wire = overheads.http_response_bytes(len(response_payload), encoding.content_type)
    tb.charge("wire: response", transfer_time(profile, resp_wire))
    return resp_wire


def _netcdf_publish(dataset: LeadDataset, tb: TimeBreakdown, disk: DiskModel, repeats: int):
    """Client side of both separated schemes: build + save the netCDF file.

    The file is really written (CPU measured); the period-disk cost of the
    write is charged from the disk model.
    """
    t, blob = timed_median(lambda: write_dataset_bytes(dataset.to_netcdf()), repeats)
    tb.charge("client netCDF encode", t, repeats=repeats)

    def spool():
        fd, path = tempfile.mkstemp(suffix=".nc", prefix="repro-pub-")
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        return path

    t, path = timed_median(spool, repeats)
    tb.charge("client spool (cpu)", t, repeats=repeats)
    tb.charge("disk: client write", disk.write_time(len(blob)))
    return blob, path


def _verify_fetched(
    blob: bytes,
    dataset: LeadDataset,
    tb: TimeBreakdown,
    disk: DiskModel,
    repeats: int,
    download_bandwidth: float,
):
    """Server side: temp-file the download, netCDF-read, verify (the real
    service code path).

    Disk accounting: landing the download in the temp file overlaps the
    download itself (only the excess over the network rate is charged);
    the netCDF library's read-back is a full, non-overlapped pass — the
    "extra disk I/O enforced by the netCDF library" of §6.2.
    """
    from repro.services.verification import VerificationResult, _read_netcdf_via_tempfile

    def step():
        fetched = _read_netcdf_via_tempfile(blob)
        return VerificationResult.from_record(fetched.verify())

    t, result = timed_median(step, repeats)
    tb.charge("server netCDF read+verify", t, repeats=repeats)
    tb.charge("disk: server write (excess)", disk.overlapped_excess(len(blob), download_bandwidth))
    tb.charge("disk: server read", disk.read_time(len(blob)))
    # the classic netCDF format cannot hold zero-length fixed dimensions, so
    # an empty dataset ships as the 1-element sentinel (see LeadDataset)
    expected = dataset.model_size if dataset.model_size else 1
    if not result.ok or result.count != expected:
        raise AssertionError(f"verification failed: {result}")
    return result


def run_separated_http(
    dataset: LeadDataset,
    profile: LinkProfile,
    *,
    repeats: int | None = None,
    disk: DiskModel | None = None,
    fault_profile: FaultProfile | None = None,
    fault_seed: int = 0,
) -> SchemeResult:
    """SOAP control + netCDF file pulled over HTTP (the paper's scheme 2a)."""
    repeats = repeats if repeats is not None else _repeats_for(dataset.model_size)
    disk = disk or DiskModel()
    tb = TimeBreakdown()

    blob, path = _netcdf_publish(dataset, tb, disk, repeats)
    try:
        url = "http://datahost/run.nc"
        encoding, req_wire = _control_exchange_wire(profile, url, tb, repeats)

        # data leg: server connects back to the publisher's web server
        get_wire = overheads.http_get_bytes("/run.nc")
        file_wire = overheads.http_response_bytes(len(blob), "application/x-netcdf")
        download_bw = aggregate_bandwidth(profile, 1)
        tb.charge("wire: data connect", connection_setup_time(profile))
        tb.charge("wire: GET", transfer_time(profile, get_wire))
        tb.charge("wire: file download", transfer_time(profile, file_wire))
        # the web server reads the file while sending it: excess only
        tb.charge("disk: origin read (excess)", disk.overlapped_excess(len(blob), download_bw))

        fault_retries = faults_injected = 0
        if fault_profile is not None:
            fault_retries, faults_injected = _run_faulted_http_fetch(
                blob, fault_profile, fault_seed
            )
            # a failed GET costs a reconnect, the request, and (pessimistic
            # midpoint) half of the file body already on the wire
            tb.charge(
                "wire: fault retries",
                fault_retries
                * (
                    connection_setup_time(profile)
                    + transfer_time(profile, get_wire)
                    + 0.5 * transfer_time(profile, file_wire)
                ),
            )

        result = _verify_fetched(blob, dataset, tb, disk, repeats, download_bw)
        result_env = SoapEnvelope.wrap(result.to_element())
        resp_wire = _respond_and_charge(encoding, result_env, profile, tb, repeats)
    finally:
        os.unlink(path)

    return SchemeResult(
        scheme=SCHEME_SOAP_HTTP_CHANNEL,
        model_size=dataset.model_size,
        breakdown=tb,
        request_wire_bytes=req_wire,
        response_wire_bytes=resp_wire,
        data_wire_bytes=file_wire,
        fault_retries=fault_retries,
        faults_injected=faults_injected,
        repeats=repeats,
    )


def run_separated_gridftp(
    dataset: LeadDataset,
    profile: LinkProfile,
    *,
    n_streams: int = 1,
    repeats: int | None = None,
    disk: DiskModel | None = None,
    fault_profile: FaultProfile | None = None,
    fault_seed: int = 0,
) -> SchemeResult:
    """SOAP control + netCDF pulled over the striped GridFTP-like service.

    The transfer really runs (over a memory network) so the modelled wire
    time is driven by *observed* protocol behaviour: actual control round
    trips, actual block-header overhead, actual stream count.
    """
    repeats = repeats if repeats is not None else _repeats_for(dataset.model_size)
    disk = disk or DiskModel()
    tb = TimeBreakdown()

    blob, path = _netcdf_publish(dataset, tb, disk, repeats)
    try:
        url = "gftp://gridhost/run.nc"
        encoding, req_wire = _control_exchange_wire(profile, url, tb, repeats)

        # --- data leg: run the real striped protocol to observe its costs
        net = MemoryNetwork()
        counter = itertools.count()

        def data_listener_factory():
            name = f"d{next(counter)}"
            return name, net.listen(name)

        credential = HostCredential.generate()
        server = GridFTPServer(net.listen("g"), data_listener_factory, credential)
        server.publish("/run.nc", blob)
        server.start()
        control_connect = lambda: net.connect("g")
        data_connect = net.connect
        sessions = {"n": 0}
        schedule = None
        if fault_profile is not None:
            schedule = FaultSchedule(fault_profile, fault_seed)
            control_connect = faulty_connect(control_connect, schedule)
            data_connect = faulty_connect(net.connect, schedule)

        def session(_attempt: int):
            sessions["n"] += 1
            client = GridFTPClient(control_connect, data_connect, credential)
            try:
                fetched = client.retrieve("/run.nc", n_streams)
            finally:
                try:
                    client.quit()
                except (GridFTPError, TransportError):
                    pass  # a broken goodbye must not mask the retrieval error
            return client, fetched

        try:
            # median of several live transfers: the wall time of the real
            # threaded protocol is the noisiest segment in the harness
            times = []
            iterations = max(repeats, 3)
            for _ in range(iterations):
                start = time.perf_counter()
                if fault_profile is None:
                    client, fetched = session(1)
                else:
                    # a faulted session (reset control channel, dead stripe)
                    # is re-run whole: retrieval is read-only, so replay-safe
                    client, fetched = retry_call(
                        session,
                        FAULT_REPLAY_RETRY,
                        retryable=lambda exc: isinstance(exc, (GridFTPError, TransportError)),
                    )
                times.append(time.perf_counter() - start)
            # deliberately unscaled: this wall time is Python thread/queue
            # overhead of running the live protocol, not era CPU work
            tb.charge(
                "gridftp transfer (python overhead)",
                median_seconds(times),
                repeats=iterations,
            )
        finally:
            server.stop()
        assert fetched == blob
        stats = client.stats
        fault_retries = max(0, sessions["n"] - iterations)
        faults_injected = schedule.faults_injected if schedule is not None else 0
        if fault_retries:
            # each abandoned session re-pays connection setup plus the
            # authentication round trips before retrieval can restart
            tb.charge(
                "wire: fault retries",
                fault_retries
                * (connection_setup_time(profile) + GSI_HANDSHAKE_ROUND_TRIPS * profile.rtt),
            )

        # --- charge modelled costs from the observed stats
        tb.charge("gsi crypto", GSI_CRYPTO_TIME)
        command_rtts = stats.control_round_trips - GSI_HANDSHAKE_ROUND_TRIPS
        tb.charge("wire: control connect", connection_setup_time(profile))
        tb.charge("wire: gsi handshake", GSI_HANDSHAKE_ROUND_TRIPS * profile.rtt)
        tb.charge("wire: control commands", command_rtts * profile.rtt)
        tb.charge("wire: data connect", connection_setup_time(profile, n_streams))
        tb.charge(
            "wire: striped transfer",
            striped_transfer_time(
                profile, stats.wire_bytes, n_streams, receiver_disk=None
            ),
        )
        download_bw = aggregate_bandwidth(profile, n_streams)
        tb.charge("disk: origin read (excess)", disk.overlapped_excess(len(blob), download_bw))

        result = _verify_fetched(blob, dataset, tb, disk, repeats, download_bw)
        result_env = SoapEnvelope.wrap(result.to_element())
        resp_wire = _respond_and_charge(encoding, result_env, profile, tb, repeats)
    finally:
        os.unlink(path)

    return SchemeResult(
        scheme=SCHEME_SOAP_GRIDFTP,
        model_size=dataset.model_size,
        breakdown=tb,
        request_wire_bytes=req_wire,
        response_wire_bytes=resp_wire,
        data_wire_bytes=stats.wire_bytes,
        n_streams=n_streams,
        fault_retries=fault_retries,
        faults_injected=faults_injected,
        repeats=repeats,
    )


# ---------------------------------------------------------------------------


def run_scheme(scheme: str, dataset: LeadDataset, profile: LinkProfile, **kwargs) -> SchemeResult:
    """Dispatch by scheme name (the figure modules' entry point)."""
    if scheme == SCHEME_BXSA_TCP:
        return run_unified(dataset, profile, encoding_name="bxsa", binding_name="tcp", **kwargs)
    if scheme == SCHEME_XML_HTTP:
        return run_unified(dataset, profile, encoding_name="xml", binding_name="http", **kwargs)
    if scheme == SCHEME_SOAP_HTTP_CHANNEL:
        return run_separated_http(dataset, profile, **kwargs)
    if scheme == SCHEME_SOAP_GRIDFTP:
        return run_separated_gridftp(dataset, profile, **kwargs)
    raise ValueError(f"unknown scheme {scheme!r}")
