"""Table 1: serialization size of the binary dataset, model size 1000.

Paper's numbers::

    Format                  Size (bytes)   Overhead
    Native representation   12000          0%
    BXSA                    12156          1.3%
    netCDF                  12268          2.2%
    XML 1.0                 23896          99.1%

"XML encoding introduces 99% encoding overhead even if it is namespace
free and uses the shortest [tag] name of each element in the array.
Moreover the overhead of XML encoding is linearly proportional to the
model size."  Both claims are checked.
"""

from __future__ import annotations

from repro.bxsa.encoder import encode as bxsa_encode
from repro.harness.report import ExperimentResult, ShapeCheck
from repro.netcdf.writer import write_dataset_bytes
from repro.workloads.lead import lead_dataset
from repro.xmlcodec.serializer import serialize


def measure_sizes(model_size: int, seed: int = 0) -> dict[str, int]:
    """Serialized sizes of one dataset under every format."""
    dataset = lead_dataset(model_size, seed)
    doc = dataset.to_document()
    return {
        "Native representation": dataset.native_bytes,
        "BXSA": len(bxsa_encode(doc)),
        "netCDF": len(write_dataset_bytes(dataset.to_netcdf())),
        # the paper's setup: namespace-free, shortest tag names, no types
        "XML 1.0": len(serialize(doc, emit_types=False).encode()),
    }


def run(model_size: int = 1000, seed: int = 0) -> ExperimentResult:
    sizes = measure_sizes(model_size, seed)
    native = sizes["Native representation"]

    def overhead(size: int) -> float:
        return (size - native) / native

    rows = [
        [name, str(size), f"{overhead(size) * 100:.1f}%"]
        for name, size in sizes.items()
    ]

    # linearity of XML overhead in model size
    small = measure_sizes(max(10, model_size // 10), seed)
    small_native = small["Native representation"]
    small_ovh = (small["XML 1.0"] - small_native) / small_native
    big_ovh = overhead(sizes["XML 1.0"])

    checks = [
        ShapeCheck(
            "BXSA overhead is small single-digit % (paper: 1.3%)",
            0.0 <= overhead(sizes["BXSA"]) < 0.05,
            f"measured {overhead(sizes['BXSA']) * 100:.1f}%",
        ),
        ShapeCheck(
            "netCDF overhead is small single-digit % (paper: 2.2%)",
            0.0 <= overhead(sizes["netCDF"]) < 0.05,
            f"measured {overhead(sizes['netCDF']) * 100:.1f}%",
        ),
        ShapeCheck(
            "XML 1.0 overhead is ≈ +99% (band 60-140%)",
            0.60 <= big_ovh <= 1.40,
            f"measured {big_ovh * 100:.1f}%",
        ),
        ShapeCheck(
            "XML overhead is ~linear in model size (ratio stable ±20%)",
            abs(big_ovh - small_ovh) <= 0.2 * max(big_ovh, small_ovh),
            f"{small_ovh * 100:.1f}% at n={max(10, model_size // 10)} vs "
            f"{big_ovh * 100:.1f}% at n={model_size}",
        ),
    ]
    return ExperimentResult(
        experiment_id="Table 1",
        title=f"Serialization size of the binary data set (model size = {model_size})",
        columns=["Format", "Size (bytes)", "Overhead"],
        rows=rows,
        checks=checks,
    )


if __name__ == "__main__":
    print(run().render())
