"""``repro.loadgen`` — seeded open/closed-loop SOAP load generation.

See :mod:`repro.loadgen.generator` for the two traffic disciplines; the
harness (``repro.harness.figure_load``) sweeps :func:`open_loop` across
an arrival-rate ladder to draw throughput–latency curves per
encoding×binding scheme.
"""

from repro.loadgen.generator import (
    LATENCY_BOUNDS,
    LoadResult,
    arrival_schedule,
    closed_loop,
    open_loop,
)

__all__ = [
    "LATENCY_BOUNDS",
    "LoadResult",
    "arrival_schedule",
    "closed_loop",
    "open_loop",
]
