"""Open- and closed-loop load generators with seeded reproducibility.

Two canonical traffic disciplines (the distinction matters — see
"Open Versus Closed: A Cautionary Tale", NSDI'06):

* **Open loop** (:func:`open_loop`) — requests arrive on a fixed schedule
  (``rate`` per second) regardless of how the server is doing.  This is
  what internet traffic looks like, and it is the discipline that
  exposes overload: when offered load exceeds capacity, the excess must
  go *somewhere* — into the admission queue, then into 503s.
* **Closed loop** (:func:`closed_loop`) — ``clients`` concurrent callers
  each issue a request, wait for the response, think for a while, and
  repeat.  Offered load self-limits at capacity; this is the discipline
  that measures best-case sustained throughput.

Both record every completed request's latency into a
:class:`repro.obs.metrics.Histogram` (and into a caller-supplied
:class:`~repro.obs.MetricsRegistry` under
``loadgen_request_seconds{mode}`` when given), classify outcomes as
completed / shed / failed — a shed is a
:class:`~repro.transport.resilience.ServerBusy`, i.e. a 503 — and return
a :class:`LoadResult` whose accounting is exact by construction::

    offered == completed + shed + failed

The schedule is deterministic per seed: arrival offsets, per-client
think-time jitter and any payload selection derive from ``seed`` alone,
so a rerun offers the same requests in the same pattern (their measured
latencies, of course, belong to the machine that ran them).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.transport.resilience import ServerBusy

#: Latency histogram bounds: 10 µs .. ~30 s, log-spaced (finer than the
#: default metrics bounds around the millisecond range load tests live in).
LATENCY_BOUNDS = tuple(10.0 ** (e / 4.0) for e in range(-20, 7))


@dataclass
class LoadResult:
    """Outcome accounting + latency distribution of one load run."""

    mode: str  #: ``"open"`` or ``"closed"``
    offered: int
    completed: int
    shed: int
    failed: int
    duration_seconds: float
    #: Latency distribution of *completed* requests, seconds.
    latency: Histogram = field(repr=False)

    def __post_init__(self) -> None:
        if self.completed + self.shed + self.failed != self.offered:
            raise ValueError(
                f"accounting violation: offered {self.offered} != completed "
                f"{self.completed} + shed {self.shed} + failed {self.failed}"
            )

    @property
    def goodput(self) -> float:
        """Completed requests per second over the run's wall clock."""
        return self.completed / self.duration_seconds if self.duration_seconds else 0.0

    @property
    def offered_rate(self) -> float:
        return self.offered / self.duration_seconds if self.duration_seconds else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def quantile_seconds(self, q: float) -> float | None:
        return self.latency.quantile(q)

    def as_dict(self) -> dict:
        """JSON-ready summary (the figure_load curve-point shape)."""
        q = self.quantile_seconds
        return {
            "mode": self.mode,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "duration_seconds": self.duration_seconds,
            "offered_rate_rps": self.offered_rate,
            "goodput_rps": self.goodput,
            "shed_rate": self.shed_rate,
            "p50_ms": None if q(0.5) is None else q(0.5) * 1e3,
            "p95_ms": None if q(0.95) is None else q(0.95) * 1e3,
            "p99_ms": None if q(0.99) is None else q(0.99) * 1e3,
        }


class _Tally:
    """Thread-safe outcome counters + latency sink shared by the senders."""

    def __init__(self, mode: str, metrics: MetricsRegistry | None) -> None:
        self.mode = mode
        self.latency = Histogram("loadgen_latency_seconds", bounds=LATENCY_BOUNDS)
        self._metrics = metrics
        self._lock = threading.Lock()
        self.completed = 0
        self.shed = 0
        self.failed = 0

    def record(self, outcome: str, seconds: float) -> None:
        with self._lock:
            setattr(self, outcome, getattr(self, outcome) + 1)
        if outcome == "completed":
            self.latency.observe(seconds)
            if self._metrics is not None:
                self._metrics.histogram(
                    "loadgen_request_seconds",
                    bounds=LATENCY_BOUNDS,
                    labels={"mode": self.mode},
                ).observe(seconds)
        if self._metrics is not None:
            self._metrics.counter(
                "loadgen_requests_total", labels={"mode": self.mode, "outcome": outcome}
            ).add()


def arrival_schedule(
    rate: float, total: int, seed: int = 0, jitter: float = 0.0
) -> list[float]:
    """The open-loop arrival offsets (seconds from start), per seed.

    Request ``i`` is due at ``i / rate``, optionally displaced by up to
    ``jitter`` × the inter-arrival gap, drawn from ``seed``.  Pure and
    deterministic — the same arguments always give the same schedule.
    """
    if rate <= 0:
        raise ValueError("rate must be > 0")
    rng = random.Random(seed)
    gap = 1.0 / rate
    schedule = []
    for i in range(total):
        offset = i * gap
        if jitter:
            offset += gap * jitter * (2.0 * rng.random() - 1.0)
        schedule.append(max(0.0, offset))
    return schedule


def _close_quietly(call: Callable[[int], object]) -> None:
    """Release a sender's connection: a ``close`` attribute on the call
    (set by the factory) is invoked when the sender finishes its share."""
    closer = getattr(call, "close", None)
    if closer is not None:
        try:
            closer()
        except Exception:  # noqa: BLE001 - teardown must not mask results
            pass


def _classify_and_record(tally: _Tally, call: Callable[[int], object], index: int) -> None:
    start = time.perf_counter()
    try:
        call(index)
    except ServerBusy:
        tally.record("shed", time.perf_counter() - start)
    except Exception:  # noqa: BLE001 - the generator survives its targets
        tally.record("failed", time.perf_counter() - start)
    else:
        tally.record("completed", time.perf_counter() - start)


def open_loop(
    call_factory: Callable[[], Callable[[int], object]],
    *,
    rate: float,
    total: int,
    seed: int = 0,
    senders: int = 16,
    arrival_jitter: float = 0.0,
    metrics: MetricsRegistry | None = None,
) -> LoadResult:
    """Offer ``total`` requests at ``rate``/s on a deterministic schedule.

    ``call_factory`` is invoked once per sender thread and must return a
    thread-confined callable performing one request (sender threads own
    their connection; nothing is shared).  Request ``i`` is scheduled at
    ``i / rate`` seconds (± ``arrival_jitter`` fraction of the gap, drawn
    from ``seed`` — 0 keeps the schedule strictly periodic); ``senders``
    threads execute the schedule round-robin, so as long as per-request
    latency stays below ``senders / rate`` the offered load is truly
    open — independent of server progress.  A request whose sender is
    still busy at its scheduled time fires immediately (late), it is
    never dropped: every scheduled request is offered and accounted.
    """
    if total < 1:
        raise ValueError("total must be >= 1")
    if senders < 1:
        raise ValueError("senders must be >= 1")
    senders = min(senders, total)
    schedule = arrival_schedule(rate, total, seed, arrival_jitter)

    tally = _Tally("open", metrics)
    barrier = threading.Barrier(senders + 1)

    def sender(worker: int) -> None:
        call = call_factory()
        barrier.wait()
        try:
            for index in range(worker, total, senders):
                delay = base[0] + schedule[index] - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                _classify_and_record(tally, call, index)
        finally:
            _close_quietly(call)

    threads = [
        threading.Thread(target=sender, args=(w,), name=f"loadgen-open-{w}", daemon=True)
        for w in range(senders)
    ]
    base = [0.0]
    for thread in threads:
        thread.start()
    barrier.wait()  # all senders connected and ready before the clock starts
    base[0] = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - base[0]
    return LoadResult(
        "open", total, tally.completed, tally.shed, tally.failed, duration, tally.latency
    )


def closed_loop(
    call_factory: Callable[[], Callable[[int], object]],
    *,
    clients: int,
    requests_per_client: int,
    think_time: float = 0.0,
    seed: int = 0,
    metrics: MetricsRegistry | None = None,
) -> LoadResult:
    """``clients`` concurrent callers, each request→response→think→repeat.

    ``think_time`` is the mean pause between a client's exchanges; the
    actual pause is jittered uniformly in ``[0.5, 1.5] × think_time`` from
    a per-client stream derived from ``seed`` (deterministic schedule,
    clients mutually decorrelated).
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if requests_per_client < 1:
        raise ValueError("requests_per_client must be >= 1")
    tally = _Tally("closed", metrics)
    barrier = threading.Barrier(clients + 1)

    def client_loop(worker: int) -> None:
        call = call_factory()
        rng = random.Random((seed << 16) ^ (worker * 0x9E3779B1))
        barrier.wait()
        try:
            for j in range(requests_per_client):
                index = worker * requests_per_client + j
                _classify_and_record(tally, call, index)
                if think_time and j + 1 < requests_per_client:
                    time.sleep(think_time * (0.5 + rng.random()))
        finally:
            _close_quietly(call)

    threads = [
        threading.Thread(
            target=client_loop, args=(w,), name=f"loadgen-closed-{w}", daemon=True
        )
        for w in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - start
    total = clients * requests_per_client
    return LoadResult(
        "closed", total, tally.completed, tally.shed, tally.failed, duration, tally.latency
    )
