"""A from-scratch netCDF-3 (classic format) reader and writer.

The paper's "separated solution" stores binary data in netCDF files pulled
over HTTP or GridFTP; this package implements the on-disk classic format
(CDF-1, and CDF-2 64-bit offsets) well enough to round-trip the
evaluation's datasets and anything similar: fixed-size dimensions,
variables of the six external types, global and per-variable attributes.

The unlimited (record) dimension is intentionally unsupported — the
evaluation never uses it — and is rejected loudly on read rather than
misparsed.

The layout follows the classic format specification: a big-endian header
(magic, dimension/attribute/variable lists with 4-byte-aligned names and
values) followed by each variable's data at its recorded ``begin`` offset,
padded to 4-byte boundaries.
"""

from repro.netcdf.errors import NetCDFError, NetCDFFormatError
from repro.netcdf.model import Dataset, Variable
from repro.netcdf.reader import read_dataset, read_dataset_bytes
from repro.netcdf.writer import write_dataset, write_dataset_bytes

__all__ = [
    "Dataset",
    "NetCDFError",
    "NetCDFFormatError",
    "Variable",
    "read_dataset",
    "read_dataset_bytes",
    "write_dataset",
    "write_dataset_bytes",
]
