"""Exception hierarchy for the netCDF codec."""


class NetCDFError(Exception):
    """Base class for netCDF codec errors."""


class NetCDFFormatError(NetCDFError):
    """The byte stream is not a classic-format netCDF file this codec
    supports (bad magic, truncation, unknown tags, record dimensions)."""
