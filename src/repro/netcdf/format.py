"""Classic netCDF format constants and low-level helpers."""

from __future__ import annotations

import numpy as np

from repro.netcdf.errors import NetCDFFormatError

MAGIC = b"CDF"
VERSION_CLASSIC = 1  # 32-bit offsets (CDF-1)
VERSION_64BIT = 2  # 64-bit offsets (CDF-2)

# header list tags
ZERO = 0x00
NC_DIMENSION = 0x0A
NC_VARIABLE = 0x0B
NC_ATTRIBUTE = 0x0C

# external data types
NC_BYTE = 1
NC_CHAR = 2
NC_SHORT = 3
NC_INT = 4
NC_FLOAT = 5
NC_DOUBLE = 6

#: nc_type → (numpy dtype [big-endian, as stored], element size)
NC_DTYPES: dict[int, np.dtype] = {
    NC_BYTE: np.dtype(">i1"),
    NC_CHAR: np.dtype("S1"),
    NC_SHORT: np.dtype(">i2"),
    NC_INT: np.dtype(">i4"),
    NC_FLOAT: np.dtype(">f4"),
    NC_DOUBLE: np.dtype(">f8"),
}

_NC_TYPE_BY_KIND = {
    "i1": NC_BYTE,
    "u1": NC_BYTE,  # stored as signed bytes, classic-format convention
    "i2": NC_SHORT,
    "i4": NC_INT,
    "f4": NC_FLOAT,
    "f8": NC_DOUBLE,
    "S1": NC_CHAR,
}


def nc_type_for_dtype(dtype) -> int:
    """Map a numpy dtype to its external nc_type (width-widening where the
    classic format lacks the exact type, e.g. i8 → error, u2 → NC_INT)."""
    dt = np.dtype(dtype)
    key = dt.kind + str(dt.itemsize) if dt.kind != "S" else "S1"
    if key in _NC_TYPE_BY_KIND:
        return _NC_TYPE_BY_KIND[key]
    if key == "u2":
        return NC_INT
    raise NetCDFFormatError(
        f"dtype {dt!r} has no classic netCDF external type (64-bit integers "
        f"and unsigned 32/64-bit are not representable in CDF-1/2)"
    )


def element_size(nc_type: int) -> int:
    try:
        return NC_DTYPES[nc_type].itemsize
    except KeyError:
        raise NetCDFFormatError(f"unknown nc_type {nc_type}") from None


def padded(nbytes: int) -> int:
    """Round up to the 4-byte boundary the format requires."""
    return (nbytes + 3) & ~3


def pad_bytes(nbytes: int) -> bytes:
    return b"\x00" * (padded(nbytes) - nbytes)
