"""In-memory model of a classic netCDF dataset."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netcdf.errors import NetCDFError


@dataclass
class Variable:
    """One netCDF variable: named dimensions + attributes + data array.

    ``data`` must have one axis per dimension name, matching the dataset's
    dimension lengths.
    """

    name: str
    dimensions: tuple[str, ...]
    data: np.ndarray
    attributes: dict[str, object] = field(default_factory=dict)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.data.shape)


class Dataset:
    """A classic netCDF dataset: dimensions, global attributes, variables."""

    def __init__(self) -> None:
        self.dimensions: dict[str, int] = {}
        self.attributes: dict[str, object] = {}
        self.variables: dict[str, Variable] = {}

    # ------------------------------------------------------------------

    def create_dimension(self, name: str, length: int) -> None:
        if name in self.dimensions:
            raise NetCDFError(f"dimension {name!r} already exists")
        if length is None or length <= 0:
            raise NetCDFError(
                f"dimension {name!r}: only fixed positive lengths are supported "
                f"(the unlimited dimension is out of scope)"
            )
        self.dimensions[name] = int(length)

    def create_variable(
        self,
        name: str,
        data: np.ndarray,
        dimensions: tuple[str, ...] | list[str],
        attributes: dict[str, object] | None = None,
    ) -> Variable:
        """Add a variable, auto-creating any missing dimensions from its shape."""
        if name in self.variables:
            raise NetCDFError(f"variable {name!r} already exists")
        arr = np.asarray(data)
        dims = tuple(dimensions)
        if arr.ndim != len(dims):
            raise NetCDFError(
                f"variable {name!r}: {arr.ndim}-D data with {len(dims)} dimensions"
            )
        for dim_name, axis_len in zip(dims, arr.shape):
            if dim_name in self.dimensions:
                if self.dimensions[dim_name] != axis_len:
                    raise NetCDFError(
                        f"variable {name!r}: axis {dim_name!r} has length "
                        f"{axis_len}, dimension is {self.dimensions[dim_name]}"
                    )
            else:
                self.create_dimension(dim_name, axis_len)
        var = Variable(name, dims, arr, dict(attributes or {}))
        self.variables[name] = var
        return var

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Dataset dims={self.dimensions} "
            f"vars={[v.name for v in self.variables.values()]}>"
        )
