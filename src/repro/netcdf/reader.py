"""Classic netCDF reader.

Parses CDF-1/CDF-2 headers and loads variable data as numpy arrays (one
bulk ``frombuffer`` + native-order conversion per variable).  Files with a
record (unlimited) dimension are rejected with a clear error — see the
package docstring.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.netcdf.errors import NetCDFFormatError
from repro.netcdf.format import (
    MAGIC,
    NC_ATTRIBUTE,
    NC_CHAR,
    NC_DIMENSION,
    NC_DTYPES,
    NC_VARIABLE,
    VERSION_64BIT,
    VERSION_CLASSIC,
    ZERO,
    element_size,
    padded,
)
from repro.netcdf.model import Dataset, Variable


def read_dataset(path) -> Dataset:
    """Read a classic netCDF file from disk."""
    with open(path, "rb") as fh:
        return read_dataset_bytes(fh.read())


def read_dataset_bytes(blob: bytes) -> Dataset:
    """Parse a classic netCDF byte stream."""
    return _Reader(blob).run()


class _Reader:
    def __init__(self, blob: bytes) -> None:
        self.blob = blob
        self.pos = 0

    # ------------------------------------------------------------------

    def run(self) -> Dataset:
        if len(self.blob) < 4:
            raise NetCDFFormatError(f"file of {len(self.blob)} bytes is too short")
        if self.blob[:3] != MAGIC:
            raise NetCDFFormatError(f"bad magic {self.blob[:3]!r}, not a netCDF file")
        version = self.blob[3]
        if version not in (VERSION_CLASSIC, VERSION_64BIT):
            raise NetCDFFormatError(
                f"unsupported netCDF version byte {version} (HDF5-based "
                f"netCDF-4 files are out of scope)"
            )
        self.pos = 4
        use_64bit = version == VERSION_64BIT

        numrecs = self._i4()
        ds = Dataset()
        dims = self._read_dim_list(ds)
        ds.attributes.update(self._read_att_list())
        self._read_var_list(ds, dims, numrecs, use_64bit)
        return ds

    # ------------------------------------------------------------------
    # primitives

    def _need(self, n: int) -> None:
        if self.pos + n > len(self.blob):
            raise NetCDFFormatError(
                f"truncated file: need {n} bytes at offset {self.pos}"
            )

    def _i4(self) -> int:
        self._need(4)
        (value,) = struct.unpack_from(">i", self.blob, self.pos)
        self.pos += 4
        return value

    def _i8(self) -> int:
        self._need(8)
        (value,) = struct.unpack_from(">q", self.blob, self.pos)
        self.pos += 8
        return value

    def _name(self) -> str:
        length = self._i4()
        if length < 0:
            raise NetCDFFormatError(f"negative name length at offset {self.pos - 4}")
        self._need(padded(length))
        raw = self.blob[self.pos : self.pos + length]
        self.pos += padded(length)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise NetCDFFormatError(f"invalid UTF-8 name: {exc}") from exc

    def _tagged_count(self, expected_tag: int, what: str) -> int:
        tag = self._i4()
        count = self._i4()
        if tag == ZERO and count == 0:
            return 0
        if tag != expected_tag:
            raise NetCDFFormatError(f"bad {what} list tag 0x{tag:02x}")
        if count < 0:
            raise NetCDFFormatError(f"negative {what} count {count}")
        return count

    # ------------------------------------------------------------------
    # header sections

    def _read_dim_list(self, ds: Dataset) -> list[tuple[str, int]]:
        count = self._tagged_count(NC_DIMENSION, "dimension")
        dims: list[tuple[str, int]] = []
        for _ in range(count):
            name = self._name()
            length = self._i4()
            if length == 0:
                raise NetCDFFormatError(
                    "file uses the unlimited (record) dimension, which this "
                    "codec does not support"
                )
            if length < 0:
                raise NetCDFFormatError(
                    f"dimension {name!r}: negative length {length}"
                )
            if name in ds.dimensions:
                raise NetCDFFormatError(f"duplicate dimension {name!r}")
            ds.create_dimension(name, length)
            dims.append((name, length))
        return dims

    def _read_att_list(self) -> dict[str, object]:
        count = self._tagged_count(NC_ATTRIBUTE, "attribute")
        attrs: dict[str, object] = {}
        for _ in range(count):
            name = self._name()
            nc_type = self._i4()
            nelems = self._i4()
            if nelems < 0:
                raise NetCDFFormatError(f"negative attribute length for {name!r}")
            nbytes = nelems * element_size(nc_type)
            self._need(padded(nbytes))
            raw = self.blob[self.pos : self.pos + nbytes]
            self.pos += padded(nbytes)
            if nc_type == NC_CHAR:
                attrs[name] = raw.decode("utf-8", errors="replace")
            else:
                values = np.frombuffer(raw, dtype=NC_DTYPES[nc_type]).astype(
                    NC_DTYPES[nc_type].newbyteorder("=")
                )
                attrs[name] = values if values.size != 1 else values[0]
        return attrs

    def _read_var_list(self, ds, dims, numrecs: int, use_64bit: bool) -> None:
        count = self._tagged_count(NC_VARIABLE, "variable")
        for _ in range(count):
            name = self._name()
            ndims = self._i4()
            if ndims < 0:
                raise NetCDFFormatError(f"negative rank for variable {name!r}")
            dim_ids = [self._i4() for _ in range(ndims)]
            for dim_id in dim_ids:
                if not 0 <= dim_id < len(dims):
                    raise NetCDFFormatError(
                        f"variable {name!r} references unknown dimension {dim_id}"
                    )
            attrs = self._read_att_list()
            nc_type = self._i4()
            _vsize = self._i4()
            begin = self._i8() if use_64bit else self._i4()
            shape = tuple(dims[d][1] for d in dim_ids)
            nelems = int(np.prod(shape, dtype=np.int64)) if shape else 1
            nbytes = nelems * element_size(nc_type)
            if begin < 0 or begin + nbytes > len(self.blob):
                raise NetCDFFormatError(
                    f"variable {name!r} data [{begin}, {begin + nbytes}) falls "
                    f"outside the file of {len(self.blob)} bytes"
                )
            stored = NC_DTYPES[nc_type]
            flat = np.frombuffer(self.blob, dtype=stored, count=nelems, offset=begin)
            if nc_type == NC_CHAR:
                data = flat.reshape(shape)
            else:
                data = flat.astype(stored.newbyteorder("=")).reshape(shape)
            ds.variables[name] = Variable(
                name, tuple(dims[d][0] for d in dim_ids), data, attrs
            )
