"""Classic netCDF writer.

Emits a spec-conformant CDF-1 (or CDF-2 when offsets demand it) byte
stream: big-endian header with 4-byte-aligned names/values, then variable
data blocks at their recorded ``begin`` offsets.  Data conversion is one
bulk ``astype(big-endian)`` per variable — no per-element work.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.netcdf.errors import NetCDFError
from repro.netcdf.format import (
    MAGIC,
    NC_ATTRIBUTE,
    NC_CHAR,
    NC_DIMENSION,
    NC_DTYPES,
    NC_VARIABLE,
    VERSION_64BIT,
    VERSION_CLASSIC,
    ZERO,
    element_size,
    nc_type_for_dtype,
    pad_bytes,
    padded,
)
from repro.netcdf.model import Dataset


def write_dataset_bytes(dataset: Dataset) -> bytes:
    """Serialize a dataset to classic-format bytes."""
    return _Writer(dataset).run()


def write_dataset(dataset: Dataset, path) -> int:
    """Write a dataset to ``path``; returns the byte count written."""
    blob = write_dataset_bytes(dataset)
    with open(path, "wb") as fh:
        fh.write(blob)
    return len(blob)


class _Writer:
    def __init__(self, dataset: Dataset) -> None:
        self.ds = dataset
        self.dim_index = {name: i for i, name in enumerate(dataset.dimensions)}

    # ------------------------------------------------------------------

    def run(self) -> bytes:
        # Pass 1: serialize everything except the variables' begin offsets
        # to learn the header size, then place data blocks.
        var_entries = [self._var_entry_without_begin(v) for v in self.ds.variables.values()]
        use_64bit = False
        while True:
            begin_width = 8 if use_64bit else 4
            header_size = self._header_size(var_entries, begin_width)
            offset = header_size
            begins: list[int] = []
            for var, entry, vsize in var_entries:
                begins.append(offset)
                offset += vsize
            if not use_64bit and offset > 0x7FFFFFFF:
                use_64bit = True
                continue
            break

        out = bytearray()
        out += MAGIC
        out.append(VERSION_64BIT if use_64bit else VERSION_CLASSIC)
        out += struct.pack(">i", 0)  # numrecs: no record dimension
        self._write_dim_list(out)
        self._write_att_list(out, self.ds.attributes)
        self._write_var_list(out, var_entries, begins, use_64bit)
        assert len(out) == header_size, (len(out), header_size)
        # assemble header + per-variable data blocks with a single join so
        # large variables are copied once, not re-copied per append
        chunks: list = [bytes(out)]
        position = len(out)
        for (var, entry, vsize), begin in zip(var_entries, begins):
            assert position == begin
            for chunk in self._var_data_chunks(var):
                chunks.append(chunk)
                position += len(chunk)
        return b"".join(chunks)

    # ------------------------------------------------------------------
    # sizing

    def _header_size(self, var_entries, begin_width: int) -> int:
        size = 4 + 4  # magic+version, numrecs
        size += self._dim_list_size()
        size += self._att_list_size(self.ds.attributes)
        size += 8  # var list tag + count
        for var, entry, _vsize in var_entries:
            size += len(entry) + begin_width
        return size

    def _dim_list_size(self) -> int:
        if not self.ds.dimensions:
            return 8
        size = 8
        for name in self.ds.dimensions:
            size += 4 + padded(len(name.encode())) + 4
        return size

    def _att_list_size(self, attrs: dict) -> int:
        if not attrs:
            return 8
        size = 8
        for name, value in attrs.items():
            raw = _attr_payload(value)
            size += 4 + padded(len(name.encode())) + 4 + 4 + padded(len(raw[1]))
        return size

    # ------------------------------------------------------------------
    # header sections

    def _write_dim_list(self, out: bytearray) -> None:
        if not self.ds.dimensions:
            out += struct.pack(">ii", ZERO, 0)
            return
        out += struct.pack(">ii", NC_DIMENSION, len(self.ds.dimensions))
        for name, length in self.ds.dimensions.items():
            self._write_name(out, name)
            out += struct.pack(">i", length)

    def _write_att_list(self, out: bytearray, attrs: dict) -> None:
        if not attrs:
            out += struct.pack(">ii", ZERO, 0)
            return
        out += struct.pack(">ii", NC_ATTRIBUTE, len(attrs))
        for name, value in attrs.items():
            self._write_name(out, name)
            nc_type, raw, nelems = _attr_payload_full(value)
            out += struct.pack(">ii", nc_type, nelems)
            out += raw
            out += pad_bytes(len(raw))

    def _write_var_list(self, out: bytearray, var_entries, begins, use_64bit: bool) -> None:
        out += struct.pack(">ii", NC_VARIABLE if var_entries else ZERO, len(var_entries))
        for (var, entry, _vsize), begin in zip(var_entries, begins):
            out += entry
            out += struct.pack(">q" if use_64bit else ">i", begin)

    def _var_entry_without_begin(self, var) -> tuple:
        """(variable, serialized entry minus begin, padded data size)."""
        out = bytearray()
        self._write_name(out, var.name)
        out += struct.pack(">i", len(var.dimensions))
        for dim_name in var.dimensions:
            out += struct.pack(">i", self.dim_index[dim_name])
        self._write_att_list(out, var.attributes)
        nc_type = nc_type_for_dtype(var.data.dtype)
        vsize = padded(int(np.prod(var.shape, dtype=np.int64)) * element_size(nc_type))
        out += struct.pack(">ii", nc_type, vsize)
        return var, bytes(out), vsize

    @staticmethod
    def _write_name(out: bytearray, name: str) -> None:
        raw = name.encode("utf-8")
        out += struct.pack(">i", len(raw))
        out += raw
        out += pad_bytes(len(raw))

    # ------------------------------------------------------------------

    @staticmethod
    def _var_data_chunks(var) -> list:
        nc_type = nc_type_for_dtype(var.data.dtype)
        target = NC_DTYPES[nc_type]
        arr = np.ascontiguousarray(var.data, dtype=target)
        raw = memoryview(arr.reshape(-1)).cast("B") if arr.size else b""
        pad = pad_bytes(len(raw))
        return [raw, pad] if pad else [raw]


def _attr_payload_full(value) -> tuple[int, bytes, int]:
    """(nc_type, raw bytes, element count) for an attribute value."""
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return NC_CHAR, raw, len(raw)
    if isinstance(value, bytes):
        return NC_CHAR, value, len(value)
    arr = np.atleast_1d(np.asarray(value))
    if arr.ndim != 1:
        raise NetCDFError("attribute values must be scalars, strings or 1-D arrays")
    nc_type = nc_type_for_dtype(arr.dtype)
    raw = np.ascontiguousarray(arr, dtype=NC_DTYPES[nc_type]).tobytes()
    return nc_type, raw, int(arr.size)


def _attr_payload(value) -> tuple[int, bytes]:
    nc_type, raw, _ = _attr_payload_full(value)
    return nc_type, raw
