"""Analytic network model standing in for the paper's LAN/WAN testbeds.

The reproduction cannot run on the authors' Indiana↔Chicago testbed, so the
experiment harness splits every response time into

* **measured CPU time** — serialization, parsing, verification, disk I/O
  system calls all execute for real and are timed; and
* **modelled wire time** — computed here from first-order TCP behaviour:
  propagation (RTT), connection setup, slow-start ramp, the per-stream
  window limit (``window/RTT``), the shared bottleneck capacity, parallel-
  stream efficiency, the striped-receive reorder "seek" penalty GridFTP
  shows on a LAN, and a receiver disk bottleneck for file-based channels.

The LAN profile uses the paper's stated 0.2 ms RTT with Fast-Ethernet-class
capacity (the paper's single untuned stream saturates near 10 MB/s); the
WAN profile uses the stated 5.75 ms RTT with an untuned ~24 KiB window
(window/RTT ≈ 4 MB/s, matching the single-stream plateau of Figure 6) over
a wider backbone that only parallel streams can fill.  Parameters are plain
dataclass fields — every number is visible, documented and ablatable.
"""

from repro.netsim.faults import (
    FLAKY_LAN,
    LOSSLESS,
    LOSSY_WAN,
    FaultProfile,
    FaultSchedule,
    FaultingChannel,
    InjectedFault,
    InjectedReset,
    faulty_connect,
)
from repro.netsim.profiles import LAN, WAN, DiskModel, LinkProfile
from repro.netsim.tcpmodel import (
    connection_setup_time,
    request_response_time,
    steady_bandwidth,
    striped_transfer_time,
    transfer_time,
)
from repro.netsim.clock import TimeBreakdown

__all__ = [
    "DiskModel",
    "FLAKY_LAN",
    "FaultProfile",
    "FaultSchedule",
    "FaultingChannel",
    "InjectedFault",
    "InjectedReset",
    "LAN",
    "LOSSLESS",
    "LOSSY_WAN",
    "LinkProfile",
    "TimeBreakdown",
    "WAN",
    "faulty_connect",
    "connection_setup_time",
    "request_response_time",
    "steady_bandwidth",
    "striped_transfer_time",
    "transfer_time",
]
