"""Labelled time accounting for hybrid measured+modelled experiments.

A :class:`TimeBreakdown` accumulates named time segments — some measured
with ``perf_counter`` around real code, some produced by the TCP model —
and reports both the total and the per-label split, so every number in
EXPERIMENTS.md can be decomposed (e.g. "how much of the XML/HTTP response
time is float→ASCII conversion?").
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class TimeBreakdown:
    """Ordered mapping of label → seconds, with measure/charge helpers."""

    def __init__(self) -> None:
        self._segments: dict[str, float] = {}

    # ------------------------------------------------------------------

    def charge(self, label: str, seconds: float) -> None:
        """Add modelled time under a label."""
        if seconds < 0:
            raise ValueError(f"negative time charge {seconds} for {label!r}")
        self._segments[label] = self._segments.get(label, 0.0) + seconds

    @contextmanager
    def measure(self, label: str):
        """Measure the wall time of a real code block under a label."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.charge(label, time.perf_counter() - start)

    def merge(self, other: "TimeBreakdown") -> None:
        for label, seconds in other._segments.items():
            self.charge(label, seconds)

    # ------------------------------------------------------------------

    @property
    def total(self) -> float:
        return sum(self._segments.values())

    def get(self, label: str) -> float:
        return self._segments.get(label, 0.0)

    def items(self):
        return list(self._segments.items())

    def scaled(self, factor: float) -> "TimeBreakdown":
        """A copy with every segment multiplied by ``factor`` (used to
        average repeated measured runs)."""
        out = TimeBreakdown()
        for label, seconds in self._segments.items():
            out._segments[label] = seconds * factor
        return out

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v * 1e3:.3f}ms" for k, v in self._segments.items())
        return f"<TimeBreakdown total={self.total * 1e3:.3f}ms {parts}>"
