"""Labelled time accounting for hybrid measured+modelled experiments.

A :class:`TimeBreakdown` accumulates named time segments — some measured
with ``perf_counter`` around real code, some produced by the TCP model —
and reports both the total and the per-label split, so every number in
EXPERIMENTS.md can be decomposed (e.g. "how much of the XML/HTTP response
time is float→ASCII conversion?").

Every charge is also reported to the active :mod:`repro.obs` recorder as
an *accounting span* (attribute ``segment: true``), so the modelled wire
time and the measured CPU time of one exchange land in a single trace.
The span kind follows the label convention the runners already use:
``wire: ...`` → ``wire``, ``disk: ...`` → ``disk``, everything else →
``cpu``.  Summing the accounting spans of an exchange reproduces
:attr:`TimeBreakdown.total` exactly — the reconciliation the harness's
``--trace-out`` output is tested against.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro import obs


def _kind_for(label: str) -> str:
    if label.startswith("wire:"):
        return "wire"
    if label.startswith("disk:"):
        return "disk"
    return "cpu"


class TimeBreakdown:
    """Ordered mapping of label → seconds, with measure/charge helpers."""

    def __init__(self) -> None:
        self._segments: dict[str, float] = {}

    # ------------------------------------------------------------------

    def charge(self, label: str, seconds: float, **attributes) -> None:
        """Add modelled (or pre-measured) time under a label.

        ``attributes`` are attached to the accounting span emitted into
        the active trace (e.g. ``repeats=5`` from the harness's median
        measurement).
        """
        if seconds < 0:
            raise ValueError(f"negative time charge {seconds} for {label!r}")
        self._segments[label] = self._segments.get(label, 0.0) + seconds
        obs.charge(label, seconds, kind=_kind_for(label), segment=True, **attributes)

    @contextmanager
    def measure(self, label: str):
        """Measure the wall time of a real code block under a label."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.charge(label, time.perf_counter() - start)

    def merge(self, other: "TimeBreakdown") -> None:
        # no accounting spans here: the other breakdown's charges were
        # already reported when they happened; re-emitting would double
        # count the segments in the trace
        for label, seconds in other._segments.items():
            if seconds < 0:
                raise ValueError(f"negative time charge {seconds} for {label!r}")
            self._segments[label] = self._segments.get(label, 0.0) + seconds

    # ------------------------------------------------------------------

    @property
    def total(self) -> float:
        return sum(self._segments.values())

    def get(self, label: str) -> float:
        return self._segments.get(label, 0.0)

    def items(self):
        return list(self._segments.items())

    def scaled(self, factor: float) -> "TimeBreakdown":
        """A copy with every segment multiplied by ``factor`` (used to
        average repeated measured runs)."""
        out = TimeBreakdown()
        for label, seconds in self._segments.items():
            out._segments[label] = seconds * factor
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v * 1e3:.3f}ms" for k, v in self._segments.items())
        return f"<TimeBreakdown total={self.total * 1e3:.3f}ms {parts}>"
