"""Deterministic fault injection for channel-level chaos testing.

The paper's evaluation assumes flawless links; a production deployment sees
connection resets, stalls and half-written requests as the steady state.
This module makes those conditions reproducible: a :class:`FaultSchedule`
is a seeded decision stream drawn from a :class:`FaultProfile`, and a
:class:`FaultingChannel` consults it on every channel operation, injecting

* **reset** — the connection dies abruptly (surfaces as
  :class:`InjectedReset`, a :class:`~repro.transport.base.TransportClosed`);
* **truncate** — a send delivers only a prefix of the data, then resets
  (the half-written request case);
* **stall** — a read blocks for ``stall_seconds`` before proceeding (long
  enough to trip a per-call deadline, finite so nothing hangs forever);
* **slow_read** — a read dribbles back a single byte (exercises every
  ``recv_exactly`` loop above).

Schedules are deliberately *shared* across reconnections: wrapping a
channel factory with :func:`faulty_connect` gives every new connection the
same decision stream, so "the first two attempts reset, the third is
clean" is expressible as ``FaultProfile(reset_rate=1.0, max_faults=2)``
with any seed.  The wrapper composes with
:class:`~repro.transport.instrument.InstrumentedChannel` in either order
(both are plain channels).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

from repro.transport.base import Channel, TransportClosed, TransportError


class InjectedFault(TransportError):
    """A failure injected by a :class:`FaultSchedule` (not organic)."""


class InjectedReset(InjectedFault, TransportClosed):
    """An injected connection reset; upper layers see a closed channel."""


@dataclass(frozen=True)
class FaultProfile:
    """Per-operation fault probabilities for one lossy link."""

    name: str = "custom"
    #: Probability a send or receive kills the connection outright.
    reset_rate: float = 0.0
    #: Probability a send delivers a random prefix, then resets.
    truncate_rate: float = 0.0
    #: Probability a receive blocks for :attr:`stall_seconds` first.
    stall_rate: float = 0.0
    #: Probability a receive returns a single byte (dribble).
    slow_read_rate: float = 0.0
    #: How long an injected stall blocks (real seconds, finite).
    stall_seconds: float = 0.02
    #: Stop injecting after this many faults (None = unbounded).  A finite
    #: budget guarantees any retry loop with more attempts than faults
    #: eventually sees a clean operation.
    max_faults: int | None = None

    def __post_init__(self) -> None:
        for rate in (self.reset_rate, self.truncate_rate, self.stall_rate, self.slow_read_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rates must be in [0, 1], got {rate}")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be >= 0 or None")


#: No faults at all — the identity schedule (profile of the paper's testbed).
LOSSLESS = FaultProfile("lossless")

#: Occasional resets and dribbled reads: a congested but usable LAN.
FLAKY_LAN = FaultProfile("flaky-lan", reset_rate=0.05, slow_read_rate=0.10)

#: Long-haul link under duress: resets, half-written requests and dribble.
LOSSY_WAN = FaultProfile(
    "lossy-wan",
    reset_rate=0.10,
    truncate_rate=0.05,
    slow_read_rate=0.15,
    stall_rate=0.02,
    stall_seconds=0.01,
)


class FaultSchedule:
    """A seeded, replayable stream of fault decisions.

    One schedule is typically shared by every channel of one endpoint (see
    :func:`faulty_connect`); the injected-fault log doubles as the test
    oracle for "every fault either recovered or surfaced".
    """

    def __init__(self, profile: FaultProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        self._rng = random.Random(seed)
        #: Chronological log of injected fault kinds ("reset", ...).
        self.injected: list[str] = []

    @property
    def faults_injected(self) -> int:
        return len(self.injected)

    def _budget_left(self) -> bool:
        limit = self.profile.max_faults
        return limit is None or len(self.injected) < limit

    def _draw(self, kinds: tuple[tuple[str, float], ...]) -> str | None:
        """One decision: at most one fault kind per operation.

        A single uniform draw is compared against stacked rate bands, so
        the decision stream is a pure function of (profile, seed, #draws).
        """
        roll = self._rng.random()
        if not self._budget_left():
            return None
        acc = 0.0
        for kind, rate in kinds:
            acc += rate
            if roll < acc:
                self.injected.append(kind)
                return kind
        return None

    def next_send_fault(self) -> str | None:
        p = self.profile
        return self._draw((("reset", p.reset_rate), ("truncate", p.truncate_rate)))

    def next_recv_fault(self) -> str | None:
        p = self.profile
        return self._draw(
            (("reset", p.reset_rate), ("stall", p.stall_rate), ("slow_read", p.slow_read_rate))
        )

    def truncate_point(self, nbytes: int) -> int:
        """How many bytes of a truncated send actually leave (``< nbytes``)."""
        return self._rng.randrange(nbytes) if nbytes else 0


class FaultingChannel:
    """Wrap any channel, injecting faults per a :class:`FaultSchedule`.

    Composable with any other channel wrapper; wrapping an
    :class:`~repro.transport.instrument.InstrumentedChannel` (or being
    wrapped by one) determines whether faulted bytes are counted.
    """

    def __init__(self, channel: Channel, schedule: FaultSchedule, *, sleep=time.sleep) -> None:
        self._channel = channel
        self._schedule = schedule
        self._sleep = sleep

    def send_all(self, data: bytes) -> None:
        fault = self._schedule.next_send_fault()
        if fault == "reset":
            self._channel.close()
            raise InjectedReset("injected connection reset during send")
        if fault == "truncate":
            cut = self._schedule.truncate_point(len(data))
            if cut:
                self._channel.send_all(data[:cut])
            self._channel.close()
            raise InjectedReset(
                f"injected truncation: {cut}/{len(data)} bytes delivered before reset"
            )
        self._channel.send_all(data)

    def recv(self, max_bytes: int = 65536) -> bytes:
        fault = self._schedule.next_recv_fault()
        if fault == "reset":
            self._channel.close()
            raise InjectedReset("injected connection reset during receive")
        if fault == "stall":
            self._sleep(self._schedule.profile.stall_seconds)
        if fault == "slow_read":
            return self._channel.recv(1)
        return self._channel.recv(max_bytes)

    def close(self) -> None:
        self._channel.close()


def faulty_connect(
    connect: Callable[..., Channel], schedule: FaultSchedule
) -> Callable[..., Channel]:
    """Wrap a channel factory so every connection shares one schedule.

    Works for zero-argument factories (``() -> Channel``) and the
    one-argument data-channel connectors of the GridFTP client.
    """

    def connect_faulty(*args):
        return FaultingChannel(connect(*args), schedule)

    return connect_faulty
