"""Link and disk parameter sets.

Every constant is either taken from the paper (RTTs), derived from a curve
it reports (single-stream plateaus), or a documented period-plausible value
(2006-era commodity disk and Fast Ethernet).  DESIGN.md records the
derivations; the ablation benchmarks vary them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkProfile:
    """First-order parameters of one network path."""

    name: str
    #: Round-trip time in seconds.
    rtt: float
    #: Shared bottleneck capacity in bytes/second (all streams together).
    capacity: float
    #: Untuned per-stream TCP window in bytes; a single stream can never
    #: exceed ``window / rtt``.
    per_stream_window: int
    #: Maximum segment size in bytes (Ethernet-framed TCP payload).
    mss: int = 1460
    #: Initial congestion window in segments (pre-RFC6928 stacks used 2-4).
    initial_cwnd_segments: int = 3
    #: Fraction of aggregate capacity n parallel streams achieve, as
    #: ``parallel_efficiency ** (n - 1)`` — contention and duplicate
    #: control overhead make n streams slightly worse than one when a
    #: single stream can already fill the path.
    parallel_efficiency: float = 0.985
    #: Receiver-side cost of an out-of-order striped block (the "seek"
    #: operations [Allcock et al. 2005] blame for LAN degradation).
    reorder_seek_time: float = 0.0008
    #: Striped-transfer block size in bytes (GridFTP MODE E default-ish).
    stripe_block_size: int = 262144

    def __post_init__(self) -> None:
        if self.rtt <= 0 or self.capacity <= 0 or self.per_stream_window <= 0:
            raise ValueError("link parameters must be positive")

    @property
    def window_limited_bandwidth(self) -> float:
        """Single-stream ceiling imposed by the untuned window (bytes/s)."""
        return self.per_stream_window / self.rtt

    @property
    def bandwidth_delay_product(self) -> float:
        return self.capacity * self.rtt


@dataclass(frozen=True)
class DiskModel:
    """Receiver/sender disk for the file-based (separated) schemes.

    The effective rate is *page-cache-backed* sequential I/O on the paper's
    1 GB-RAM boxes (the 64 MB evaluation files fit in cache), not raw
    platter speed: calibrated so the four file touches of the separated
    scheme cost it the ≈15-20 % Figure 5 shows it losing to BXSA/TCP at
    the large end.
    """

    #: Effective sequential rate in bytes/second through the filesystem.
    rate: float = 150e6
    #: Fixed per-file cost (create/open/close/metadata), seconds.
    per_file_overhead: float = 0.0008

    def write_time(self, nbytes: int) -> float:
        """Full, non-overlapped file write (or read)."""
        return self.per_file_overhead + nbytes / self.rate

    read_time = write_time

    def overlapped_excess(self, nbytes: int, concurrent_rate: float) -> float:
        """Extra time a disk touch adds when it overlaps a network leg.

        While a download streams at ``concurrent_rate``, writing it to disk
        only costs extra time if the disk is the slower device; either way
        the per-file overhead is paid.
        """
        excess = max(0.0, nbytes / self.rate - nbytes / concurrent_rate)
        return self.per_file_overhead + excess


#: The paper's local-area testbed: 0.2 ms RTT, Fast-Ethernet-class path
#: (Figure 5's single stream saturates just above 10 MB/s).
LAN = LinkProfile(
    name="LAN",
    rtt=0.0002,
    capacity=11.8e6,
    per_stream_window=65536,
)

#: The paper's wide-area testbed (IU ↔ U. Chicago): 5.75 ms RTT.  The
#: untuned ~24 KiB window caps a single stream at ≈4.2 MB/s — the plateau
#: Figure 6 shows for BXSA/TCP and SOAP+HTTP — while the path itself (the
#: same Fast-Ethernet-class campus links feeding the Abilene backbone) is
#: wide enough that only parallel streams can fill it, which is precisely
#: why GridFTP's 16 streams win there.
WAN = LinkProfile(
    name="WAN",
    rtt=0.00575,
    capacity=11.8e6,
    per_stream_window=24576,
    parallel_efficiency=0.995,
    reorder_seek_time=0.0008,
)
