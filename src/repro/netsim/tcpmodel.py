"""First-order TCP transfer-time model.

The model captures the four effects the paper's Figures 4-6 hinge on:

1. **propagation** — every exchange pays RTT-scale latency, so tiny
   messages are latency-bound (Figure 4);
2. **slow start** — the congestion window doubles each RTT from a small
   initial value, so medium transfers do not instantly see full bandwidth;
3. **window limit** — an untuned stream can never exceed ``window / RTT``,
   the WAN ceiling single-stream schemes hit in Figure 6;
4. **shared capacity & parallel streams** — n streams split the bottleneck
   with a small efficiency loss, plus a receiver reorder ("seek") penalty
   for striped transfers, which is why GridFTP parallelism *hurts* on the
   LAN and *wins* on the WAN.

All functions are pure: (profile, sizes) → seconds.
"""

from __future__ import annotations

import math

from repro.netsim.profiles import LinkProfile


def steady_bandwidth(profile: LinkProfile, n_streams: int = 1) -> float:
    """Per-stream steady-state bandwidth with ``n_streams`` sharing the path
    (bytes/second)."""
    if n_streams < 1:
        raise ValueError("n_streams must be >= 1")
    aggregate = profile.capacity * profile.parallel_efficiency ** (n_streams - 1)
    return min(profile.window_limited_bandwidth, aggregate / n_streams)


def aggregate_bandwidth(profile: LinkProfile, n_streams: int = 1) -> float:
    """Total bandwidth across all streams (bytes/second)."""
    return steady_bandwidth(profile, n_streams) * n_streams


def connection_setup_time(profile: LinkProfile, connections: int = 1, *, serial: bool = False) -> float:
    """TCP three-way handshake cost: 1 RTT before data can flow.

    Parallel connections (GridFTP's data streams) are opened concurrently,
    so they cost one RTT together unless ``serial=True``.
    """
    if connections < 1:
        return 0.0
    return profile.rtt * (connections if serial else 1)


def _slow_start(profile: LinkProfile, target_bw: float) -> tuple[float, float]:
    """(ramp time, bytes delivered during ramp) for one stream.

    The congestion window starts at ``initial_cwnd_segments × MSS`` and
    doubles every RTT until it covers ``target_bw × RTT``.
    """
    cwnd = profile.initial_cwnd_segments * profile.mss
    target_window = target_bw * profile.rtt
    if cwnd >= target_window:
        return 0.0, 0.0
    rounds = math.ceil(math.log2(target_window / cwnd))
    # bytes sent in the doubling rounds: cwnd * (2^rounds - 1)
    ramp_bytes = cwnd * (2**rounds - 1)
    return rounds * profile.rtt, ramp_bytes


def transfer_time(
    profile: LinkProfile,
    nbytes: int,
    n_streams: int = 1,
    *,
    slow_start: bool = True,
) -> float:
    """One-way bulk transfer time: first byte sent → last byte received.

    ``nbytes`` is the total payload, split evenly when ``n_streams > 1``.
    Includes the trailing half-RTT of propagation; excludes connection
    setup (see :func:`connection_setup_time`).
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    propagation = profile.rtt / 2
    if nbytes == 0:
        return propagation
    per_stream = nbytes / n_streams
    bw = steady_bandwidth(profile, n_streams)
    if not slow_start:
        return per_stream / bw + propagation
    ramp_time, ramp_bytes = _slow_start(profile, bw)
    if per_stream <= ramp_bytes:
        # finishes inside the ramp: find the doubling round that covers it
        cwnd = profile.initial_cwnd_segments * profile.mss
        sent = 0.0
        time = 0.0
        while sent + cwnd < per_stream:
            sent += cwnd
            time += profile.rtt
            cwnd *= 2
        # partial final round at the current window's rate
        time += (per_stream - sent) / (cwnd / profile.rtt)
        return time + propagation
    return ramp_time + (per_stream - ramp_bytes) / bw + propagation


def striped_transfer_time(
    profile: LinkProfile,
    nbytes: int,
    n_streams: int,
    *,
    receiver_disk=None,
    slow_start: bool = True,
) -> float:
    """Striped (GridFTP MODE E-style) transfer with reorder accounting.

    Blocks of ``profile.stripe_block_size`` are distributed round-robin
    over ``n_streams``; with more than one stream a block arriving from
    stream *k* is out of sequence with probability ``1 − 1/n``, and each
    such arrival costs the receiver one backward seek
    (``profile.reorder_seek_time``) — the effect [Allcock et al. 2005]
    measured and the paper cites for GridFTP's LAN degradation.

    ``receiver_disk`` (a :class:`~repro.netsim.profiles.DiskModel`) caps
    throughput when the receiver must land the stripes in a file.
    """
    base = transfer_time(profile, nbytes, n_streams, slow_start=slow_start)
    if n_streams > 1 and nbytes > 0:
        n_blocks = max(1, math.ceil(nbytes / profile.stripe_block_size))
        out_of_order = n_blocks * (1.0 - 1.0 / n_streams)
        base += out_of_order * profile.reorder_seek_time
    if receiver_disk is not None and nbytes > 0:
        network_bw = aggregate_bandwidth(profile, n_streams)
        if network_bw > receiver_disk.rate:
            # disk becomes the bottleneck for the steady portion
            base += nbytes / receiver_disk.rate - nbytes / network_bw
    return base


def request_response_time(
    profile: LinkProfile,
    request_bytes: int,
    response_bytes: int,
    *,
    new_connection: bool = False,
    slow_start: bool = True,
) -> float:
    """Wire time of one request-response exchange on one stream.

    Server processing time is *not* included — the harness measures that
    for real and adds it.
    """
    total = 0.0
    if new_connection:
        total += connection_setup_time(profile)
    total += transfer_time(profile, request_bytes, slow_start=slow_start)
    total += transfer_time(profile, response_bytes, slow_start=slow_start)
    return total
