"""``repro.obs`` — zero-dependency tracing and metrics for the whole stack.

The paper's argument rests on *decomposed* cost accounting: CPU time per
encoding phase versus modelled wire time per scheme (Figures 4–6, Table 1).
This package is the one substrate every layer reports into:

* **Spans** (:mod:`repro.obs.trace`) — named, nested time segments with
  monotonic timestamps, attributes and point events.  Spans nest through a
  thread-local context; a worker thread joins a parent trace by passing the
  parent span explicitly (the GridFTP stripe workers do this).
* **Accounting spans** — zero-duration spans carrying ``seconds`` charged
  from a model rather than measured from a clock.  The netsim
  :class:`~repro.netsim.TimeBreakdown` emits one per charge, so modelled
  wire time and measured CPU time land in one unified trace.
* **Counters and histograms** (:mod:`repro.obs.metrics`) — mergeable
  aggregates for quantities that are not time segments (bytes, retries,
  out-of-order blocks).
* **Export** (:mod:`repro.obs.export`) — a JSON span-tree document (golden
  schema ``repro.obs.trace/1``) and flamegraph-friendly folded stacks.

Recording is opt-in per process: the module-level active recorder defaults
to :data:`NULL_RECORDER`, whose every operation is a no-op returning shared
singletons — the disabled-path cost of an instrumented call site is two
attribute lookups and a no-op context manager, negligible against any real
encode/decode (``benchmarks/bench_obs.py`` keeps this honest).

Usage::

    from repro import obs

    with obs.recording() as recorder:
        with obs.span("exchange", kind="logical", scheme="soap-bxsa-tcp"):
            ...instrumented code runs here...
    trace = recorder.export()          # JSON-ready dict

Call sites inside the library always go through the module-level helpers
(:func:`span`, :func:`event`, :func:`charge`, :func:`counter`,
:func:`histogram`) so they observe whatever recorder is active when they
run — including from worker threads.
"""

from __future__ import annotations

from repro.obs.export import append_trace, folded_stacks, read_trace_lines, trace_dict, write_trace
from repro.obs.exposition import render_prometheus, render_varz
from repro.obs.metrics import (
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    LabelCardinalityError,
    MetricsRegistry,
)
from repro.obs.sampling import ALWAYS_SAMPLE, HeadSampler
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    SpanEvent,
    TraceContext,
    TraceRecorder,
    current_context,
    current_trace_id,
    get_recorder,
    recording,
    set_recorder,
    thread_recorder,
    use_context,
)

__all__ = [
    "ALWAYS_SAMPLE",
    "NULL_RECORDER",
    "Counter",
    "CounterFamily",
    "Gauge",
    "GaugeFamily",
    "HeadSampler",
    "Histogram",
    "HistogramFamily",
    "LabelCardinalityError",
    "MetricsRegistry",
    "NullRecorder",
    "Span",
    "SpanEvent",
    "TraceContext",
    "TraceRecorder",
    "append_trace",
    "charge",
    "counter",
    "current_context",
    "current_trace_id",
    "event",
    "folded_stacks",
    "gauge",
    "get_recorder",
    "histogram",
    "read_trace_lines",
    "recording",
    "render_prometheus",
    "render_varz",
    "set_recorder",
    "span",
    "thread_recorder",
    "trace_dict",
    "use_context",
    "write_trace",
]


def span(name: str, kind: str = "cpu", parent=None, context=None, **attributes):
    """Open a span on the active recorder (no-op context when disabled)."""
    return get_recorder().span(name, kind=kind, parent=parent, context=context, **attributes)


def event(name: str, **attributes) -> None:
    """Attach a point event to the active recorder's current span."""
    get_recorder().event(name, **attributes)


def charge(name: str, seconds: float, kind: str = "wire", parent=None, **attributes) -> None:
    """Record an accounting span: ``seconds`` charged, not measured."""
    get_recorder().charge(name, seconds, kind=kind, parent=parent, **attributes)


def counter(name: str, labels: dict | None = None):
    """The active recorder's counter ``name`` (no-op sink when disabled)."""
    return get_recorder().counter(name, labels)


def gauge(name: str, labels: dict | None = None):
    """The active recorder's gauge ``name`` (no-op sink when disabled)."""
    return get_recorder().gauge(name, labels)


def histogram(name: str, labels: dict | None = None):
    """The active recorder's histogram ``name`` (no-op sink when disabled)."""
    return get_recorder().histogram(name, labels=labels)
