"""Trace analysis CLI: critical paths, aggregates, diffs, cross-process joins.

Works on the span-tree JSON documents (schema ``repro.obs.trace/1``) that
``--trace-out`` writes — one file per harness exchange.  Four commands::

    python -m repro.obs.analyze critical-path TRACE_OR_DIR [...]
    python -m repro.obs.analyze aggregate DIR [...]
    python -m repro.obs.analyze diff DIR_A DIR_B
    python -m repro.obs.analyze join TRACE_OR_DIR [...] [--out FILE]

* **critical-path** walks each exchange tree along its most expensive
  child at every level, prints the chain, and *reconciles*: the sum of
  the trace's segment spans (the accounting spans
  :meth:`~repro.netsim.clock.TimeBreakdown.charge` emits) must equal the
  root span's ``reported_total_seconds`` — the number the figure
  printed.  A mismatch means the trace no longer explains the figure and
  the command exits 1.
* **aggregate** pools many exchanges: per-segment p50/p95/p99 seconds,
  and the CPU / wire / disk share of total time per scheme — Table-1
  style decomposition recovered from raw traces.
* **diff** pairs traces by filename across two directories (two runs,
  two machines, two commits) and reports per-exchange total deltas and
  the segments that moved most.
* **join** assembles per-process trace files into one cross-process
  tree: a server root span carrying ``trace.remote_origin`` /
  ``trace.remote_span`` join keys is re-parented under the client span
  it names, its clock is aligned into the client's time base (loopback
  assumption: the wire delay splits evenly around the server's work),
  and the link is annotated with ``wire_seconds`` — client span minus
  server span, the time the request and response spent between the
  processes.  Exits 1 when any join key fails to resolve, the linked
  spans disagree on the trace id, or a wire time comes out negative.

Everything here is pure stdlib and side-effect free below :func:`main`,
so the same functions serve tests and notebooks.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Iterable, Iterator

#: Relative tolerance for sum-vs-reported reconciliation.  The harness
#: computes both numbers from the same floats, so only representation
#: noise is tolerated — a real regression is orders of magnitude larger.
RECONCILE_REL_TOL = 1e-9


# ---------------------------------------------------------------------------
# loading and walking


def load_trace(path: str) -> dict:
    """One trace document, validated to the known schema."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    schema = document.get("schema")
    if schema != "repro.obs.trace/1":
        raise ValueError(f"{path}: unsupported trace schema {schema!r}")
    return document


def trace_files(paths: Iterable[str], suffixes: tuple[str, ...] = (".json",)) -> list[str]:
    """Expand files/directories into a sorted list of trace files."""
    found: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            found.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(suffixes)
            )
        else:
            found.append(path)
    return found


def iter_spans(span: dict) -> Iterator[dict]:
    """The span and all its descendants, depth first."""
    yield span
    for child in span.get("children", ()):
        yield from iter_spans(child)


def roots(document: dict) -> list[dict]:
    return document.get("spans", [])


def segments(document: dict) -> list[dict]:
    """The accounting segments: spans charged by the netsim clock."""
    return [
        span
        for root in roots(document)
        for span in iter_spans(root)
        if span.get("attributes", {}).get("segment")
    ]


# ---------------------------------------------------------------------------
# critical path + reconciliation


def critical_path(document: dict) -> list[dict]:
    """Greedy most-expensive descent from the heaviest root span."""
    top = roots(document)
    if not top:
        return []
    node = max(top, key=lambda s: s.get("seconds", 0.0))
    path = [node]
    while node.get("children"):
        node = max(node["children"], key=lambda s: s.get("seconds", 0.0))
        path.append(node)
    return path


def reconcile(document: dict) -> tuple[float, float | None, bool]:
    """(segment sum, reported total or None, ok).

    ``ok`` is True when the root's ``reported_total_seconds`` equals the
    sum of segment spans within :data:`RECONCILE_REL_TOL` — or when the
    trace carries no reported total to check against (nothing to refute).
    """
    segment_sum = sum(span.get("seconds", 0.0) for span in segments(document))
    reported = None
    for root in roots(document):
        value = root.get("attributes", {}).get("reported_total_seconds")
        if value is not None:
            reported = float(value)
            break
    if reported is None:
        return segment_sum, None, True
    ok = math.isclose(segment_sum, reported, rel_tol=RECONCILE_REL_TOL, abs_tol=1e-12)
    return segment_sum, reported, ok


# ---------------------------------------------------------------------------
# cross-process assembly


def load_documents(path: str) -> list[dict]:
    """Trace documents at ``path``: one for ``.json``, many for ``.jsonl``."""
    if path.endswith(".jsonl"):
        documents = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                document = json.loads(line)
                if document.get("schema") != "repro.obs.trace/1":
                    raise ValueError(
                        f"{path}: unsupported trace schema {document.get('schema')!r}"
                    )
                documents.append(document)
        return documents
    return [load_trace(path)]


def _shift_subtree(span: dict, offset: float) -> None:
    span["start"] = span.get("start", 0.0) + offset
    for event in span.get("events", ()):
        event["at"] = event.get("at", 0.0) + offset
    for child in span.get("children", ()):
        _shift_subtree(child, offset)


def join_traces(documents: list[dict]) -> dict:
    """Assemble per-process documents into one cross-process span forest.

    Returns ``{"roots": [...], "trace_ids": [...], "links": [...],
    "problems": [...], "ok": bool}``.  Every span gains a ``service``
    key (its process's ``meta.service``).  For each resolved link the
    client span gains ``attributes["wire_seconds"]`` and the server
    subtree's timestamps are shifted into the client span's time base,
    centred inside it (the loopback clock-offset alignment: with both
    processes on one host the request and response halves of the wire
    time are assumed symmetric).
    """
    by_origin: dict[str, dict[int, dict]] = {}
    for document in documents:
        meta = document.get("meta", {})
        origin = str(meta.get("origin", ""))
        service = str(meta.get("service", ""))
        index = by_origin.setdefault(origin, {})
        for root in roots(document):
            for span in iter_spans(root):
                span["service"] = service
                index[span["id"]] = span

    problems: list[str] = []
    links: list[dict] = []
    adopted: set[tuple[str, int]] = set()
    linked_trace_ids: set[str] = set()

    for document in documents:
        origin = str(document.get("meta", {}).get("origin", ""))
        for root in roots(document):
            attrs = root.get("attributes", {})
            remote_origin = attrs.get("trace.remote_origin")
            remote_span = attrs.get("trace.remote_span")
            if remote_origin is None or remote_span is None:
                continue
            parent = by_origin.get(str(remote_origin), {}).get(remote_span)
            if parent is None:
                problems.append(
                    f"span {root['id']} ({root['name']}) from origin {origin}: "
                    f"remote parent ({remote_origin}, {remote_span}) not found"
                )
                continue
            if parent.get("trace_id") != root.get("trace_id"):
                problems.append(
                    f"span {root['id']} ({root['name']}): trace id "
                    f"{root.get('trace_id')} does not match remote parent's "
                    f"{parent.get('trace_id')}"
                )
            linked_trace_ids.add(str(root.get("trace_id")))
            linked_trace_ids.add(str(parent.get("trace_id")))
            wire_seconds = parent.get("seconds", 0.0) - root.get("seconds", 0.0)
            if wire_seconds < 0:
                problems.append(
                    f"span {root['id']} ({root['name']}): negative wire time "
                    f"{wire_seconds:.9f}s (server span longer than client span)"
                )
            # centre the server's subtree inside the client span: on
            # loopback the only defensible split of the wire time is half
            # before the server's work, half after
            offset = (
                parent.get("start", 0.0)
                + wire_seconds / 2.0
                - root.get("start", 0.0)
            )
            _shift_subtree(root, offset)
            parent.setdefault("attributes", {})["wire_seconds"] = wire_seconds
            parent.setdefault("children", []).append(root)
            adopted.add((origin, root["id"]))
            links.append(
                {
                    "client_span": parent["id"],
                    "client_service": parent.get("service", ""),
                    "server_span": root["id"],
                    "server_service": root.get("service", ""),
                    "wire_seconds": wire_seconds,
                    "trace_id": str(parent.get("trace_id")),
                }
            )

    if len(linked_trace_ids) > 1:
        problems.append(
            f"linked spans span {len(linked_trace_ids)} trace ids: "
            + ", ".join(sorted(linked_trace_ids))
        )

    joined_roots = []
    for document in documents:
        origin = str(document.get("meta", {}).get("origin", ""))
        for root in roots(document):
            if (origin, root["id"]) not in adopted:
                joined_roots.append(root)

    return {
        "roots": joined_roots,
        "trace_ids": sorted(linked_trace_ids),
        "links": links,
        "problems": problems,
        "ok": not problems,
    }


# ---------------------------------------------------------------------------
# aggregation


def quantile_of(samples: list[float], q: float) -> float:
    """Linear-interpolated quantile of raw samples (q in [0, 1])."""
    if not samples:
        raise ValueError("quantile of no samples")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def aggregate(documents: Iterable[dict]) -> dict:
    """Cross-trace pools: per-segment quantiles and per-scheme kind shares.

    Returns ``{"segments": {name: {count,p50,p95,p99,total}},
    "schemes": {scheme: {kind: seconds}}, "traces": n}``.
    """
    per_segment: dict[str, list[float]] = {}
    per_scheme: dict[str, dict[str, float]] = {}
    n_traces = 0
    for document in documents:
        n_traces += 1
        scheme = str(document.get("meta", {}).get("scheme", "?"))
        shares = per_scheme.setdefault(scheme, {})
        for span in segments(document):
            seconds = span.get("seconds", 0.0)
            per_segment.setdefault(span["name"], []).append(seconds)
            kind = span.get("kind", "cpu")
            shares[kind] = shares.get(kind, 0.0) + seconds
    segment_stats = {
        name: {
            "count": len(samples),
            "p50": quantile_of(samples, 0.50),
            "p95": quantile_of(samples, 0.95),
            "p99": quantile_of(samples, 0.99),
            "total": sum(samples),
        }
        for name, samples in per_segment.items()
    }
    return {"segments": segment_stats, "schemes": per_scheme, "traces": n_traces}


def diff_directories(dir_a: str, dir_b: str) -> dict:
    """Pair traces by filename; compare totals and per-segment times.

    Returns ``{"common": {name: {"a","b","delta","segments"}},
    "only_a": [...], "only_b": [...]}`` where each ``segments`` maps
    segment name → (a_seconds, b_seconds).
    """
    names_a = {os.path.basename(p): p for p in trace_files([dir_a])}
    names_b = {os.path.basename(p): p for p in trace_files([dir_b])}
    common = {}
    for name in sorted(names_a.keys() & names_b.keys()):
        doc_a = load_trace(names_a[name])
        doc_b = load_trace(names_b[name])
        sum_a, reported_a, _ = reconcile(doc_a)
        sum_b, reported_b, _ = reconcile(doc_b)
        total_a = reported_a if reported_a is not None else sum_a
        total_b = reported_b if reported_b is not None else sum_b
        seg_a = {s["name"]: s.get("seconds", 0.0) for s in segments(doc_a)}
        seg_b = {s["name"]: s.get("seconds", 0.0) for s in segments(doc_b)}
        common[name] = {
            "a": total_a,
            "b": total_b,
            "delta": total_b - total_a,
            "segments": {
                seg: (seg_a.get(seg, 0.0), seg_b.get(seg, 0.0))
                for seg in sorted(seg_a.keys() | seg_b.keys())
            },
        }
    return {
        "common": common,
        "only_a": sorted(names_a.keys() - names_b.keys()),
        "only_b": sorted(names_b.keys() - names_a.keys()),
    }


# ---------------------------------------------------------------------------
# rendering


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:10.4f}ms"


def _render_critical_path(path: str, document: dict, out) -> bool:
    name = os.path.basename(path)
    chain = critical_path(document)
    segment_sum, reported, ok = reconcile(document)
    print(f"{name}:", file=out)
    for depth, span in enumerate(chain):
        marker = "seg" if span.get("attributes", {}).get("segment") else span.get("kind", "?")
        print(
            f"  {'  ' * depth}{_ms(span.get('seconds', 0.0))}  {span['name']}  [{marker}]",
            file=out,
        )
    if reported is None:
        print(f"  segments sum {_ms(segment_sum)} (no reported total in trace)", file=out)
    else:
        verdict = "OK" if ok else "MISMATCH"
        print(
            f"  segments sum {_ms(segment_sum)} vs reported {_ms(reported)}  [{verdict}]",
            file=out,
        )
    return ok


def _render_aggregate(result: dict, out) -> None:
    print(f"{result['traces']} traces", file=out)
    print("per-segment latency (seconds over all exchanges):", file=out)
    stats = sorted(
        result["segments"].items(), key=lambda item: item[1]["total"], reverse=True
    )
    for name, stat in stats:
        print(
            f"  {name:32s} n={stat['count']:<4d} "
            f"p50={_ms(stat['p50'])} p95={_ms(stat['p95'])} p99={_ms(stat['p99'])}",
            file=out,
        )
    print("time share by kind per scheme:", file=out)
    for scheme, shares in sorted(result["schemes"].items()):
        total = sum(shares.values()) or 1.0
        parts = "  ".join(
            f"{kind}={seconds / total * 100.0:5.1f}%"
            for kind, seconds in sorted(shares.items())
        )
        print(f"  {scheme:24s} {parts}", file=out)


def _render_join_span(span: dict, depth: int, out) -> None:
    service = span.get("service", "")
    label = f"[{service}] " if service else ""
    wire = span.get("attributes", {}).get("wire_seconds")
    wire_note = f"  (wire {wire * 1e3:.4f}ms)" if wire is not None else ""
    print(
        f"  {'  ' * depth}{_ms(span.get('seconds', 0.0))}  "
        f"{label}{span['name']}{wire_note}",
        file=out,
    )
    for child in sorted(span.get("children", ()), key=lambda s: s.get("start", 0.0)):
        _render_join_span(child, depth + 1, out)


def _render_join(result: dict, out) -> None:
    ids = result["trace_ids"]
    if ids:
        print(f"assembled trace {', '.join(ids)}:", file=out)
    else:
        print("no cross-process links found:", file=out)
    for root in sorted(result["roots"], key=lambda s: s.get("start", 0.0)):
        _render_join_span(root, 0, out)
    for link in result["links"]:
        print(
            f"  link: {link['client_service']}#{link['client_span']} -> "
            f"{link['server_service']}#{link['server_span']} "
            f"wire {link['wire_seconds'] * 1e3:.4f}ms",
            file=out,
        )
    for problem in result["problems"]:
        print(f"  PROBLEM: {problem}", file=out)
    print(f"  [{'OK' if result['ok'] else 'FAIL'}]", file=out)


def _render_diff(result: dict, out) -> None:
    for name, entry in result["common"].items():
        drift = entry["delta"] / entry["a"] * 100.0 if entry["a"] else 0.0
        print(
            f"{name}: {_ms(entry['a'])} -> {_ms(entry['b'])} ({drift:+.1f}%)",
            file=out,
        )
        moved = sorted(
            entry["segments"].items(),
            key=lambda item: abs(item[1][1] - item[1][0]),
            reverse=True,
        )[:3]
        for seg, (a, b) in moved:
            if a == b:
                continue
            print(f"    {seg:32s} {_ms(a)} -> {_ms(b)}", file=out)
    for name in result["only_a"]:
        print(f"{name}: only in A", file=out)
    for name in result["only_b"]:
        print(f"{name}: only in B", file=out)


# ---------------------------------------------------------------------------
# CLI


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.analyze",
        description="Analyze --trace-out span-tree JSON documents.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_cp = sub.add_parser(
        "critical-path",
        help="most-expensive descent per exchange + segment-sum reconciliation",
    )
    p_cp.add_argument("paths", nargs="+", metavar="TRACE_OR_DIR")

    p_agg = sub.add_parser(
        "aggregate", help="per-segment quantiles and per-scheme kind shares"
    )
    p_agg.add_argument("paths", nargs="+", metavar="TRACE_OR_DIR")

    p_diff = sub.add_parser("diff", help="compare two trace directories")
    p_diff.add_argument("dir_a", metavar="DIR_A")
    p_diff.add_argument("dir_b", metavar="DIR_B")

    p_join = sub.add_parser(
        "join", help="assemble per-process trace files into one cross-process tree"
    )
    p_join.add_argument("paths", nargs="+", metavar="TRACE_OR_DIR")
    p_join.add_argument(
        "--out", default=None, metavar="FILE", help="also write the assembled forest as JSON"
    )

    args = parser.parse_args(argv)

    if args.command == "critical-path":
        files = trace_files(args.paths)
        if not files:
            print("no trace files found", file=out)
            return 1
        all_ok = True
        for path in files:
            ok = _render_critical_path(path, load_trace(path), out)
            all_ok = all_ok and ok
        return 0 if all_ok else 1

    if args.command == "aggregate":
        files = trace_files(args.paths)
        if not files:
            print("no trace files found", file=out)
            return 1
        _render_aggregate(aggregate(load_trace(path) for path in files), out)
        return 0

    if args.command == "join":
        files = trace_files(args.paths, suffixes=(".json", ".jsonl"))
        if not files:
            print("no trace files found", file=out)
            return 1
        documents = [doc for path in files for doc in load_documents(path)]
        result = join_traces(documents)
        _render_join(result, out)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(result, handle, indent=1, default=str)
                handle.write("\n")
        return 0 if result["ok"] else 1

    # diff
    result = diff_directories(args.dir_a, args.dir_b)
    _render_diff(result, out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
