"""Trace export: the span-tree JSON document and folded flamegraph stacks.

The JSON document is the stable, golden-tested surface (schema tag
``repro.obs.trace/1``); ``tests/test_obs.py`` pins its shape.  Timestamps
are exported relative to the earliest span start so documents are
reproducible-looking and diffable; the raw monotonic origin is kept in
``meta.t0`` for correlating multiple traces from one process.
"""

from __future__ import annotations

import json
import threading

SCHEMA = "repro.obs.trace/1"

#: One writer at a time per process: concurrent handlers exporting their
#: traces (or appending to a shared file) must not interleave bytes.
_write_lock = threading.Lock()


def _span_dict(span, t0: float) -> dict:
    out = {
        "id": span.span_id,
        "trace_id": f"{span.trace_id:032x}",
        "name": span.name,
        "kind": span.kind,
        "thread": span.thread,
        "start": round(span.start - t0, 9),
        "seconds": span.seconds,
        "modelled": span.modelled_seconds is not None,
        "attributes": dict(span.attributes),
        "events": [
            {"name": e.name, "at": round(e.time - t0, 9), "attributes": dict(e.attributes)}
            for e in span.events
        ],
        "children": [],
    }
    if span.modelled_seconds is None:
        out["wall_seconds"] = span.wall_seconds
    return out


def build_tree(spans, t0: float | None = None) -> list[dict]:
    """Nest flat spans into parent→children trees (roots returned).

    Spans whose parent is missing from the list (e.g. a filtered export)
    are promoted to roots rather than dropped.
    """
    if t0 is None:
        t0 = min((s.start for s in spans), default=0.0)
    by_id = {s.span_id: _span_dict(s, t0) for s in spans}
    roots: list[dict] = []
    for span in spans:  # spans are appended in start order: children follow parents
        node = by_id[span.span_id]
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


def trace_dict(recorder, meta: dict | None = None) -> dict:
    """The full trace document for a :class:`~repro.obs.trace.TraceRecorder`."""
    spans = list(recorder.spans)
    t0 = min((s.start for s in spans), default=0.0)
    metrics = recorder.metrics.snapshot()
    return {
        "schema": SCHEMA,
        "meta": {
            "t0": t0,
            "service": getattr(recorder, "service", ""),
            "origin": getattr(recorder, "origin", ""),
            **(meta or {}),
        },
        "spans": build_tree(spans, t0),
        "counters": metrics["counters"],
        "histograms": metrics["histograms"],
        "orphan_events": [
            {"name": e.name, "at": round(e.time - t0, 9), "attributes": dict(e.attributes)}
            for e in recorder.orphan_events
        ],
    }


def write_trace(path: str, recorder, meta: dict | None = None) -> dict:
    """Serialize the trace document to ``path``; returns the document."""
    document = trace_dict(recorder, meta=meta)
    with _write_lock:
        with open(path, "w") as fh:
            json.dump(document, fh, indent=1, default=str)
            fh.write("\n")
    return document


def append_trace(path: str, recorder, meta: dict | None = None) -> dict:
    """Append the trace as one compact JSONL line (concurrency-safe).

    Concurrent handlers exporting to one shared file serialize on the
    process-wide writer lock, and each document is a single
    newline-terminated line, so the result always parses line-by-line —
    no interleaving even under N parallel requests.
    """
    document = trace_dict(recorder, meta=meta)
    line = json.dumps(document, default=str, separators=(",", ":"))
    with _write_lock:
        with open(path, "a") as fh:
            fh.write(line + "\n")
    return document


def read_trace_lines(path: str) -> list[dict]:
    """Parse a JSONL trace file written by :func:`append_trace`."""
    documents = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                documents.append(json.loads(line))
    return documents


# ---------------------------------------------------------------------------
# flamegraph folded stacks


def folded_stacks(recorder) -> list[str]:
    """``root;child;leaf <microseconds>`` lines (self time per stack).

    Feed to any flamegraph renderer.  Self time is the span's reportable
    duration minus its children's (clamped at zero: accounting children
    under a measured parent can legitimately exceed the parent's wall
    time — modelled seconds are not wall seconds).
    """
    spans = list(recorder.spans)
    by_id = {s.span_id: s for s in spans}
    child_seconds: dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            child_seconds[span.parent_id] = child_seconds.get(span.parent_id, 0.0) + span.seconds

    def stack_of(span) -> str:
        names = [span.name]
        seen = {span.span_id}
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        while parent is not None and parent.span_id not in seen:
            names.append(parent.name)
            seen.add(parent.span_id)
            parent = by_id.get(parent.parent_id) if parent.parent_id is not None else None
        return ";".join(reversed(names))

    lines = []
    for span in spans:
        self_seconds = max(0.0, span.seconds - child_seconds.get(span.span_id, 0.0))
        lines.append(f"{stack_of(span)} {int(round(self_seconds * 1e6))}")
    return lines
