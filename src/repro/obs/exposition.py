"""Prometheus-style text exposition (and a JSON ``/varz`` view) of metrics.

The renderer targets the Prometheus text format, version 0.0.4 — the
lingua franca every scraper of the era's federation monitoring speaks
(the XRootD/OSDF operators in PAPERS.md live off exactly this surface):

* metric names sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (dots become
  underscores: ``resilience.retries`` → ``resilience_retries``);
* one ``# TYPE`` line per metric, then one sample line per series;
* histograms expand to cumulative ``_bucket{le="..."}`` samples plus
  ``_sum``/``_count`` (and the exactly-tracked ``_min``/``_max`` as
  gauges, which vanilla Prometheus histograms cannot offer);
* label values escaped per the spec (backslash, quote, newline).

Nothing here locks the registry globally: rendering works off each
instrument's atomic :meth:`snapshot`, so a scrape under live traffic sees
internally-consistent series (a histogram's count always equals the sum
of its buckets) even while observations continue.
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import MetricsRegistry

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """A Prometheus-legal metric name (dots and dashes → underscores)."""
    name = _NAME_OK.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _label_block(pairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{sanitize_name(k)}="{escape_label_value(str(v))}"' for k, v in pairs
    )
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text format (trailing newline)."""
    lines: list[str] = []
    for kind, raw_name, series in registry.collect():
        name = sanitize_name(raw_name)
        lines.append(f"# TYPE {name} {kind}")
        for instrument in sorted(series, key=lambda s: s.labels):
            labels = tuple(instrument.labels)
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_label_block(labels)} {_format_value(instrument.snapshot())}")
                continue
            snap = instrument.snapshot()
            cumulative = 0
            for bound, count in zip(snap["bounds"], snap["counts"]):
                cumulative += count
                le = labels + (("le", _format_value(float(bound))),)
                lines.append(f"{name}_bucket{_label_block(le)} {cumulative}")
            le_inf = labels + (("le", "+Inf"),)
            lines.append(f"{name}_bucket{_label_block(le_inf)} {snap['count']}")
            lines.append(f"{name}_sum{_label_block(labels)} {_format_value(snap['total'])}")
            lines.append(f"{name}_count{_label_block(labels)} {snap['count']}")
            if snap["count"]:
                lines.append(f"{name}_min{_label_block(labels)} {_format_value(snap['min'])}")
                lines.append(f"{name}_max{_label_block(labels)} {_format_value(snap['max'])}")
    return "\n".join(lines) + "\n"


def render_varz(registry: MetricsRegistry, **extra) -> dict:
    """JSON-ready ``/varz`` document: the full snapshot plus server info.

    ``extra`` key/values (server name, uptime, recent errors) land under
    ``"server"`` so the metrics namespace stays clean.
    """
    document = {"schema": "repro.obs.varz/1", "metrics": registry.snapshot()}
    if extra:
        document["server"] = dict(extra)
    return document
