"""Counters and histograms with well-defined merge semantics.

The harness runs many exchanges (threads, repeats, schemes) and wants one
aggregate view; services running in worker threads each hold a registry
that the host merges on shutdown.  Merge rules:

* counter + counter — values add;
* histogram + histogram — per-bucket counts add; count/total add;
  min/max combine; **bucket bounds must match** (merging differently
  bucketed histograms silently mixing scales is exactly the measurement
  bug this layer exists to prevent — it raises instead);
* name collisions across kinds (a counter merged onto a histogram) raise.
"""

from __future__ import annotations

import bisect
import math
import threading

#: Default histogram bounds: log-spaced from 1 µs to ~100 s, suitable for
#: the latency ranges the harness observes (seconds as floats).
DEFAULT_BOUNDS = tuple(10.0 ** (e / 2.0) for e in range(-12, 5))


class Counter:
    """A monotonically increasing (well, signed-add) scalar."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def add(self, n=1) -> None:
        with self._lock:
            self.value += n

    def merge(self, other: "Counter") -> None:
        if not isinstance(other, Counter):
            raise TypeError(f"cannot merge {type(other).__name__} into Counter {self.name!r}")
        self.add(other.value)

    def snapshot(self):
        return self.value


class Histogram:
    """Fixed-bound bucketed distribution of observed values.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final bucket
    is the overflow.  Tracks count/total/min/max exactly regardless of
    bucketing.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, bounds=None) -> None:
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted: {self.bounds}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if not isinstance(other, Histogram):
            raise TypeError(f"cannot merge {type(other).__name__} into Histogram {self.name!r}")
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds differ "
                f"({len(self.bounds)} vs {len(other.bounds)} bounds) — refusing to mix scales"
            )
        with self._lock:
            for i, n in enumerate(other.counts):
                self.counts[i] += n
            self.count += other.count
            self.total += other.total
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """Name → instrument map with get-or-create accessors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def histogram(self, name: str, bounds=None) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, bounds))

    def _get_or_create(self, name, kind, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory()
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} already registered as {type(instrument).__name__}"
                )
            return instrument

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (same-name instruments merge)."""
        with other._lock:
            items = list(other._instruments.items())
        for name, instrument in items:
            if isinstance(instrument, Counter):
                self.counter(name).merge(instrument)
            else:
                self.histogram(name, instrument.bounds).merge(instrument)

    def snapshot(self) -> dict:
        """``{"counters": {...}, "histograms": {...}}`` (JSON-ready)."""
        with self._lock:
            items = list(self._instruments.items())
        counters = {}
        histograms = {}
        for name, instrument in sorted(items):
            if isinstance(instrument, Counter):
                counters[name] = instrument.snapshot()
            else:
                histograms[name] = instrument.snapshot()
        return {"counters": counters, "histograms": histograms}
