"""Counters, gauges and histograms with well-defined merge semantics.

The harness runs many exchanges (threads, repeats, schemes) and wants one
aggregate view; services running in worker threads each hold a registry
that the host merges on shutdown.  Merge rules:

* counter + counter — values add;
* gauge + gauge — values add (in-flight counts across shards sum);
* histogram + histogram — per-bucket counts add; count/total add;
  min/max combine; **bucket bounds must match** (merging differently
  bucketed histograms silently mixing scales is exactly the measurement
  bug this layer exists to prevent — it raises instead);
* labelled family + labelled family — per-series merge; **label names
  must match** (same reasoning: two families disagreeing on their label
  set are different metrics wearing one name);
* name collisions across kinds (a counter merged onto a histogram) raise.

Lock ordering
-------------
Instruments are individually locked; a merge involves two of them.  To
stay deadlock-free the rule is: **never hold two instrument locks at
once** — ``merge`` snapshots the source under the source's lock, releases
it, then applies the snapshot under the destination's lock.  A concurrent
``observe``/``add`` on either side lands wholly before or wholly after the
snapshot, so merged state never tears (count/total/buckets always agree).

Labels
------
A *family* is one metric name carrying many series distinguished by label
values (``soap_requests_total{operation,encoding,binding,status}``).
Families guard their cardinality: label *names* are fixed at creation and
the number of distinct label-value combinations is capped (default
:data:`DEFAULT_MAX_SERIES`) — an unbounded label value (a request id, a
timestamp) raises :class:`LabelCardinalityError` instead of silently
eating memory on a live server.
"""

from __future__ import annotations

import bisect
import math
import threading

#: Default histogram bounds: log-spaced from 1 µs to ~100 s, suitable for
#: the latency ranges the harness observes (seconds as floats).
DEFAULT_BOUNDS = tuple(10.0 ** (e / 2.0) for e in range(-12, 5))

#: Ceiling on distinct label-value combinations per family.
DEFAULT_MAX_SERIES = 64


class LabelCardinalityError(ValueError):
    """A family was asked for more distinct label sets than its cap."""


def series_key(name: str, labels) -> str:
    """Flat string identity of one labelled series (snapshot/export key)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing (well, signed-add) scalar."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels=None) -> None:
        self.name = name
        #: ``((label, value), ...)`` for a family series, ``()`` otherwise.
        self.labels = tuple(labels or ())
        self.value = 0
        self._lock = threading.Lock()

    def add(self, n=1) -> None:
        with self._lock:
            self.value += n

    def merge(self, other: "Counter") -> None:
        if not isinstance(other, Counter):
            raise TypeError(f"cannot merge {type(other).__name__} into Counter {self.name!r}")
        with other._lock:  # snapshot source; see module lock-ordering note
            value = other.value
        self.add(value)

    def snapshot(self):
        return self.value


class Gauge:
    """A settable scalar (in-flight requests, open connections).

    Merging gauges *adds* them: the registries being merged are shards of
    one logical server, and "how many are in flight" sums across shards.
    """

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels=None) -> None:
        self.name = name
        self.labels = tuple(labels or ())
        self.value = 0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def add(self, n=1) -> None:
        with self._lock:
            self.value += n

    def inc(self, n=1) -> None:
        self.add(n)

    def dec(self, n=1) -> None:
        self.add(-n)

    def merge(self, other: "Gauge") -> None:
        if not isinstance(other, Gauge):
            raise TypeError(f"cannot merge {type(other).__name__} into Gauge {self.name!r}")
        with other._lock:
            value = other.value
        self.add(value)

    def snapshot(self):
        return self.value


class Histogram:
    """Fixed-bound bucketed distribution of observed values.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final bucket
    is the overflow.  Tracks count/total/min/max exactly regardless of
    bucketing.
    """

    __slots__ = (
        "name",
        "labels",
        "bounds",
        "counts",
        "count",
        "total",
        "min",
        "max",
        "exemplar",
        "_lock",
    )

    def __init__(self, name: str, bounds=None, labels=None) -> None:
        self.name = name
        self.labels = tuple(labels or ())
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted: {self.bounds}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Trace reference for the worst observation so far:
        #: ``{"trace_id": ..., "value": ...}`` or None.  Links the metric
        #: system back to the trace system ("which request was the slow one").
        self.exemplar: dict | None = None
        self._lock = threading.Lock()

    def observe(self, value, exemplar: str | None = None) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if exemplar is not None and value >= self.max:
                self.exemplar = {"trace_id": exemplar, "value": value}

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """The q-quantile (``q`` in [0, 1]) interpolated over the buckets.

        Within the bucket holding the target rank the value is linearly
        interpolated between the bucket's bounds; the open-ended first and
        overflow buckets use the exactly-tracked min/max as their missing
        edge, and the result is clamped to [min, max] — so a one-bucket
        histogram still answers with real observed values, and ``q`` of 0
        or 1 are exact.  Returns ``None`` for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            count = self.count
            counts = list(self.counts)
            lo, hi = self.min, self.max
        if count == 0:
            return None
        if q == 0.0:
            return lo
        if q == 1.0:
            return hi
        target = q * count
        cumulative = 0.0
        for index, n in enumerate(counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                lower = self.bounds[index - 1] if index > 0 else lo
                upper = self.bounds[index] if index < len(self.bounds) else hi
                lower = min(max(lower, lo), hi)
                upper = min(max(upper, lo), hi)
                if upper < lower:
                    upper = lower
                fraction = (target - cumulative) / n
                return lower + (upper - lower) * fraction
            cumulative += n
        return hi  # pragma: no cover - cumulative == count handled above

    def merge(self, other: "Histogram") -> None:
        if not isinstance(other, Histogram):
            raise TypeError(f"cannot merge {type(other).__name__} into Histogram {self.name!r}")
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds differ "
                f"({len(self.bounds)} vs {len(other.bounds)} bounds) — refusing to mix scales"
            )
        # snapshot the source under its own lock so a concurrent observe()
        # cannot tear count/total/buckets; then apply under ours (the two
        # locks are never held together — see the module lock-ordering note)
        with other._lock:
            counts = list(other.counts)
            count = other.count
            total = other.total
            other_min = other.min
            other_max = other.max
            other_exemplar = other.exemplar
        with self._lock:
            for i, n in enumerate(counts):
                self.counts[i] += n
            self.count += count
            self.total += total
            self.min = min(self.min, other_min)
            # the exemplar follows the larger max: it references the
            # worst observation across both series
            if other_max > self.max:
                if other_exemplar is not None:
                    self.exemplar = other_exemplar
            self.max = max(self.max, other_max)

    def snapshot(self) -> dict:
        with self._lock:
            count = self.count
            counts = list(self.counts)
            total = self.total
            lo, hi = self.min, self.max
            exemplar = self.exemplar
        out = {
            "count": count,
            "total": total,
            "mean": total / count if count else 0.0,
            "min": None if count == 0 else lo,
            "max": None if count == 0 else hi,
            "bounds": list(self.bounds),
            "counts": counts,
        }
        if exemplar is not None:
            out["exemplar"] = dict(exemplar)
        return out


# ---------------------------------------------------------------------------
# labelled families


class _Family:
    """One metric name fanned out over label values (cardinality-guarded)."""

    #: Subclasses bind the series type (Counter/Gauge/Histogram).
    instrument_kind: type = Counter

    def __init__(self, name: str, label_names, *, max_series: int = DEFAULT_MAX_SERIES) -> None:
        self.name = name
        self.label_names = tuple(label_names)
        if not self.label_names:
            raise ValueError(f"family {name!r} needs at least one label name")
        if len(set(self.label_names)) != len(self.label_names):
            raise ValueError(f"family {name!r} has duplicate label names {self.label_names}")
        self.max_series = max_series
        self._series: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _make(self, label_pairs):
        raise NotImplementedError

    def labels(self, **values):
        """The series for one label-value set (created on first use)."""
        if set(values) != set(self.label_names):
            raise ValueError(
                f"family {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(values)}"
            )
        key = tuple(str(values[n]) for n in self.label_names)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                if len(self._series) >= self.max_series:
                    raise LabelCardinalityError(
                        f"family {self.name!r} at its cap of {self.max_series} series; "
                        f"refusing new label set {dict(zip(self.label_names, key))} — "
                        "label values must come from a bounded set"
                    )
                series = self._make(tuple(zip(self.label_names, key)))
                self._series[key] = series
            return series

    def merge(self, other: "_Family") -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__} {self.name!r}"
            )
        if other.label_names != self.label_names:
            raise ValueError(
                f"family {self.name!r}: label names differ "
                f"({self.label_names} vs {other.label_names}) — refusing to mix metrics"
            )
        with other._lock:
            items = list(other._series.items())
        for key, series in items:
            with self._lock:
                mine = self._series.get(key)
                if mine is None:
                    # merge may exceed the live-write cap: folding shard
                    # registries must be lossless (the guard polices call
                    # sites creating series, not aggregation)
                    mine = self._series[key] = self._make(tuple(zip(self.label_names, key)))
            mine.merge(series)

    def series(self) -> list:
        with self._lock:
            return list(self._series.values())

    def snapshot_items(self):
        """``(flat series key, snapshot)`` pairs, sorted by key."""
        return sorted(
            (series_key(self.name, s.labels), s.snapshot()) for s in self.series()
        )


class CounterFamily(_Family):
    instrument_kind = Counter

    def _make(self, label_pairs):
        return Counter(self.name, labels=label_pairs)


class GaugeFamily(_Family):
    instrument_kind = Gauge

    def _make(self, label_pairs):
        return Gauge(self.name, labels=label_pairs)


class HistogramFamily(_Family):
    instrument_kind = Histogram

    def __init__(
        self, name, label_names, bounds=None, *, max_series: int = DEFAULT_MAX_SERIES
    ) -> None:
        super().__init__(name, label_names, max_series=max_series)
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS

    def _make(self, label_pairs):
        return Histogram(self.name, bounds=self.bounds, labels=label_pairs)


def _labels_as_names(labels: dict) -> tuple:
    """Stable label-name order for the ``labels={...}`` convenience API."""
    return tuple(sorted(labels))


class MetricsRegistry:
    """Name → instrument/family map with get-or-create accessors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    # -- unlabelled / convenience accessors -----------------------------

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        """The counter ``name`` — one series of a family when ``labels``
        is given (label names are the dict's keys, sorted)."""
        if labels:
            return self.counter_family(name, _labels_as_names(labels)).labels(**labels)
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        if labels:
            return self.gauge_family(name, _labels_as_names(labels)).labels(**labels)
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds=None, labels: dict | None = None) -> Histogram:
        if labels:
            return self.histogram_family(
                name, _labels_as_names(labels), bounds
            ).labels(**labels)
        return self._get_or_create(name, Histogram, lambda: Histogram(name, bounds))

    # -- family accessors ------------------------------------------------

    def counter_family(
        self, name: str, label_names, *, max_series: int = DEFAULT_MAX_SERIES
    ) -> CounterFamily:
        family = self._get_or_create(
            name, CounterFamily, lambda: CounterFamily(name, label_names, max_series=max_series)
        )
        if family.label_names != tuple(label_names):
            raise ValueError(
                f"family {name!r} already registered with labels {family.label_names}"
            )
        return family

    def gauge_family(
        self, name: str, label_names, *, max_series: int = DEFAULT_MAX_SERIES
    ) -> GaugeFamily:
        family = self._get_or_create(
            name, GaugeFamily, lambda: GaugeFamily(name, label_names, max_series=max_series)
        )
        if family.label_names != tuple(label_names):
            raise ValueError(
                f"family {name!r} already registered with labels {family.label_names}"
            )
        return family

    def histogram_family(
        self, name: str, label_names, bounds=None, *, max_series: int = DEFAULT_MAX_SERIES
    ) -> HistogramFamily:
        family = self._get_or_create(
            name,
            HistogramFamily,
            lambda: HistogramFamily(name, label_names, bounds, max_series=max_series),
        )
        if family.label_names != tuple(label_names):
            raise ValueError(
                f"family {name!r} already registered with labels {family.label_names}"
            )
        return family

    # --------------------------------------------------------------------

    def _get_or_create(self, name, kind, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory()
            elif not isinstance(instrument, kind) or type(instrument) is not kind:
                raise ValueError(
                    f"metric {name!r} already registered as {type(instrument).__name__}"
                )
            return instrument

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (same-name instruments merge)."""
        with other._lock:
            items = list(other._instruments.items())
        for name, instrument in items:
            if isinstance(instrument, CounterFamily):
                self.counter_family(
                    name, instrument.label_names, max_series=instrument.max_series
                ).merge(instrument)
            elif isinstance(instrument, GaugeFamily):
                self.gauge_family(
                    name, instrument.label_names, max_series=instrument.max_series
                ).merge(instrument)
            elif isinstance(instrument, HistogramFamily):
                self.histogram_family(
                    name,
                    instrument.label_names,
                    instrument.bounds,
                    max_series=instrument.max_series,
                ).merge(instrument)
            elif isinstance(instrument, Counter):
                self.counter(name).merge(instrument)
            elif isinstance(instrument, Gauge):
                self.gauge(name).merge(instrument)
            else:
                self.histogram(name, instrument.bounds).merge(instrument)

    def collect(self):
        """Structured dump for renderers: ``(kind, name, series list)``.

        ``kind`` is ``"counter" | "gauge" | "histogram"``; each series is
        the live instrument (has ``.labels`` and ``.snapshot()``), so one
        family contributes one entry carrying all its series.
        """
        with self._lock:
            items = sorted(self._instruments.items())
        out = []
        for name, instrument in items:
            if isinstance(instrument, _Family):
                kind = instrument.instrument_kind.__name__.lower()
                out.append((kind, name, instrument.series()))
            else:
                kind = type(instrument).__name__.lower()
                out.append((kind, name, [instrument]))
        return out

    def snapshot(self) -> dict:
        """``{"counters": {...}, "gauges": {...}, "histograms": {...}}``
        (JSON-ready); labelled series appear under flattened
        ``name{label="value",...}`` keys."""
        counters = {}
        gauges = {}
        histograms = {}
        sinks = {"counter": counters, "gauge": gauges, "histogram": histograms}
        for kind, name, series in self.collect():
            sink = sinks[kind]
            for instrument in sorted(series, key=lambda s: s.labels):
                sink[series_key(name, instrument.labels)] = instrument.snapshot()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
