"""Trace-context propagation: the wire formats and inject/extract pairs.

One module owns every on-the-wire representation of a
:class:`~repro.obs.trace.TraceContext` (a lint rule keeps the HTTP
header name confined here, like chunked framing in
``transport/http/messages.py``):

* **HTTP header** ``X-Repro-Trace`` — injected by :mod:`repro.transport.http.client`,
  extracted by both serving cores.
* **SOAP header block** ``{http://repro.example/obs}TraceContext`` — injected by
  :class:`~repro.core.engine.SoapEngine` before signing (the signature
  covers it), extracted by the TCP service host and the intermediary.

Both carry the same string value::

    <trace_id:032x>-<span_id:016x>-<flags:02x>-<origin>

``flags`` bit 0 is the sampling decision; ``span_id`` 0 means "trace
known, no parent span".  ``origin`` is the sender's process identity
(lowercase hex).  Extraction is strict-but-silent: anything malformed,
oversized or ambiguous (duplicate headers) yields ``None`` — the
receiver simply starts a fresh root trace rather than failing the
request.
"""

from __future__ import annotations

import string

from repro.obs.trace import TraceContext, current_context, get_recorder
from repro.xdm.nodes import ElementNode, QName, TextNode

#: The HTTP request header carrying the serialized context.
TRACE_HEADER = "X-Repro-Trace"

#: Namespace + QName of the SOAP header block carrying the same value.
OBS_NAMESPACE = "http://repro.example/obs"
TRACE_BLOCK = QName("TraceContext", OBS_NAMESPACE, "obs")

_FLAG_SAMPLED = 0x01

#: Upper bound on an inbound header value we will even look at.  The
#: canonical form is 32+1+16+1+2+1+origin chars; 128 leaves generous
#: room for longer origins while bounding hostile input.
MAX_VALUE_LENGTH = 128

_HEX = frozenset(string.hexdigits.lower())


def format_context(context: TraceContext) -> str:
    """Serialize ``context`` to the wire string."""
    flags = _FLAG_SAMPLED if context.sampled else 0
    span_id = context.span_id or 0
    return f"{context.trace_id:032x}-{span_id:016x}-{flags:02x}-{context.origin}"


def parse_context(value: str | None) -> TraceContext | None:
    """Parse a wire string; ``None`` for anything not strictly valid."""
    if not value or not isinstance(value, str) or len(value) > MAX_VALUE_LENGTH:
        return None
    parts = value.strip().split("-")
    if len(parts) != 4:
        return None
    trace_hex, span_hex, flags_hex, origin = parts
    if len(trace_hex) != 32 or len(span_hex) != 16 or len(flags_hex) != 2:
        return None
    # origin may be empty (a sampler-minted context that never touched a
    # recorder); when present it must be pure hex
    if origin and not _HEX.issuperset(origin):
        return None
    try:
        trace_id = int(trace_hex, 16)
        span_id = int(span_hex, 16)
        flags = int(flags_hex, 16)
    except ValueError:
        return None
    if trace_id == 0:
        return None
    return TraceContext(
        trace_id,
        span_id or None,
        bool(flags & _FLAG_SAMPLED),
        origin,
    )


# ---------------------------------------------------------------------------
# HTTP header carrier


def inject_headers(headers, context: TraceContext) -> None:
    """Set the trace header on an outbound request (replacing any)."""
    headers.set(TRACE_HEADER, format_context(context))


def extract_headers(headers) -> TraceContext | None:
    """Read the trace header off an inbound request.

    Exactly one well-formed header joins the trace; zero, duplicates
    (ambiguous — an intermediary bug or an attack) or malformed values
    all yield ``None`` so the server starts a fresh root.
    """
    values = headers.get_all(TRACE_HEADER)
    if len(values) != 1:
        return None
    return parse_context(values[0])


# ---------------------------------------------------------------------------
# SOAP header-block carrier


def inject_envelope(envelope, context: TraceContext) -> None:
    """Attach the context as a SOAP header block (replacing any)."""
    envelope.header_blocks = [
        block
        for block in envelope.header_blocks
        if not (
            isinstance(block, ElementNode)
            and block.name.local == TRACE_BLOCK.local
            and block.name.uri == TRACE_BLOCK.uri
        )
    ]
    envelope.add_header(ElementNode(TRACE_BLOCK, children=[TextNode(format_context(context))]))


def extract_envelope(envelope) -> TraceContext | None:
    """Read the context block off an inbound envelope, if present."""
    block = envelope.header(TRACE_BLOCK.local)
    if block is None or block.name.uri != TRACE_BLOCK.uri:
        return None
    return parse_context(block.text_content())


# ---------------------------------------------------------------------------
# outbound decision


def outbound_context(span=None) -> TraceContext | None:
    """The context to inject on an outbound request, or ``None``.

    Prefers ``span`` (the request's own client-side span, so the
    callee's work parents under it); falls back to the thread's current
    context, which also forwards a *negative* sampling decision when
    nothing local is recording.
    """
    if span is not None and span.span_id is not None:
        recorder = get_recorder()
        if recorder.enabled:
            return TraceContext(span.trace_id, span.span_id, True, recorder.origin)
    return current_context()
