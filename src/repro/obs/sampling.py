"""Head-based trace sampling: decide before recording, deterministically.

Always-on tracing of a busy server (or a full figure sweep) is unaffordable
— thousands of span-tree JSON documents per run.  Head sampling makes the
keep/drop call *before* any span is recorded, so a dropped trace costs
nothing beyond the decision itself.

Two properties matter here:

1. **Determinism.**  The decision is a pure function of ``(seed, key)``
   (CRC32, not Python's per-process-salted ``hash``), so a harness rerun
   with the same seed keeps exactly the same exchanges — trace diffs
   across runs compare like with like, and a bug report's "trace
   figure5-soap+gridftp(4)-n87360" can be regenerated at will.
2. **Observability of the sampling itself.**  Every decision is counted
   (:attr:`sampled` / :attr:`dropped`, plus the registry counters callers
   wire through :meth:`count_into`), so a rate that quietly starves the
   trace directory is visible in the same /metrics surface as everything
   else.
"""

from __future__ import annotations

import hashlib
import threading
import zlib

from repro.obs.trace import TraceContext

_SCALE = float(1 << 32)


class HeadSampler:
    """Keep a ``rate`` fraction of traces, chosen by hashing the trace key.

    ``rate`` is clamped to [0, 1]; 1.0 keeps everything (the default
    harness behaviour), 0.0 drops everything.  The same ``(seed, key)``
    always decides the same way, on any machine, in any process.
    """

    def __init__(self, rate: float = 1.0, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = int(seed)
        self.sampled = 0
        self.dropped = 0
        self._lock = threading.Lock()

    def decide(self, key: str) -> bool:
        """Pure decision for ``key`` — no counters touched."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        digest = zlib.crc32(f"{self.seed}:{key}".encode("utf-8"))
        return digest / _SCALE < self.rate

    def should_sample(self, key: str) -> bool:
        """Decide for ``key`` and count the outcome."""
        keep = self.decide(key)
        with self._lock:
            if keep:
                self.sampled += 1
            else:
                self.dropped += 1
        return keep

    def context_for(self, key: str) -> TraceContext:
        """A :class:`TraceContext` carrying the decision for ``key``.

        The trace id is a pure function of ``(seed, key)``, so two
        processes handed the same key independently mint the *same*
        context — and because the context travels with the request, the
        server keeps or drops exactly the traces the client does.
        """
        digest = hashlib.md5(f"{self.seed}:{key}".encode("utf-8")).digest()
        trace_id = int.from_bytes(digest, "big") or 1
        return TraceContext(trace_id, None, self.decide(key), "")

    def count_into(self, metrics) -> None:
        """Mirror the running totals into a registry (idempotent set via
        counters would drift; instead call once per decision site — see
        :func:`repro.harness.measure.traced_run` for the usage pattern)."""
        with self._lock:
            sampled, dropped = self.sampled, self.dropped
        metrics.gauge("obs_traces_sampled").set(sampled)
        metrics.gauge("obs_traces_dropped").set(dropped)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeadSampler(rate={self.rate}, seed={self.seed}, "
            f"sampled={self.sampled}, dropped={self.dropped})"
        )


#: Shared keep-everything sampler (rate 1.0): the no-sampling default.
ALWAYS_SAMPLE = HeadSampler(1.0)
