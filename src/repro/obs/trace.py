"""Spans, recorders and the thread-local trace context.

Design constraints, in order:

1. **Disabled must be free.**  Every instrumented call site in the library
   runs on hot paths the paper benchmarks.  The :data:`NULL_RECORDER`
   answers every operation with a shared singleton and no allocation, so
   ``with obs.span(...)`` costs a couple of plain function calls when no
   one is recording.
2. **Threads are first-class.**  The GridFTP stripe workers, the service
   hosts and the fault-injection replays all run code on worker threads.
   The *current span* is thread-local (each thread nests its own spans);
   the recorder's span list is shared under a lock; a worker adopts a
   parent from another thread by passing ``parent=`` explicitly.
3. **Two time domains.**  Measured spans carry monotonic
   ``perf_counter`` start/end stamps.  Accounting spans (made by
   :meth:`TraceRecorder.charge`) carry a modelled duration in
   ``modelled_seconds`` and zero wall width — the netsim clock uses these
   so modelled wire time and measured CPU time coexist in one tree,
   distinguishable by inspection.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs.metrics import MetricsRegistry

#: Span kinds used across the library.  Free-form strings are accepted;
#: these are the conventional taxonomy (see DESIGN.md).
SPAN_KINDS = ("cpu", "wire", "disk", "logical")


class TraceContext:
    """One trace's cross-process identity: what travels on the wire.

    ``trace_id`` is a 128-bit integer shared by every span of a
    distributed trace; ``span_id`` is the sender's span that caused the
    receiver's work (its root parents under it when the files are
    joined); ``sampled`` carries the head-sampling decision so client and
    server keep or drop the *same* requests; ``origin`` is the sending
    process's identity (:attr:`TraceRecorder.origin`) — per-process span
    ids are sequential, so a remote parent is only unambiguous as the
    pair ``(origin, span_id)``.
    """

    __slots__ = ("trace_id", "span_id", "sampled", "origin")

    def __init__(
        self,
        trace_id: int,
        span_id: int | None = None,
        sampled: bool = True,
        origin: str = "",
    ) -> None:
        self.trace_id = int(trace_id) & ((1 << 128) - 1)
        self.span_id = span_id
        self.sampled = bool(sampled)
        self.origin = origin

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceContext):
            return NotImplemented
        return (
            self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.sampled == other.sampled
            and self.origin == other.origin
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.sampled, self.origin))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext({self.trace_id:032x}, span={self.span_id}, "
            f"sampled={self.sampled}, origin={self.origin!r})"
        )


def _derive_trace_id(origin: str, span_id: int) -> int:
    """Deterministic 128-bit trace id for a local root span.

    Pure function of ``(origin, span_id)`` so a recorder with a pinned
    origin (tests, golden files) mints reproducible ids, while the
    random per-process origin makes ids unique across real processes.
    """
    digest = hashlib.md5(f"{origin}:{span_id}".encode("utf-8")).digest()
    return int.from_bytes(digest, "big")


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span (e.g. one retry attempt)."""

    name: str
    time: float
    attributes: dict = field(default_factory=dict)


class Span:
    """One named time segment.  Mutable until its recorder finishes it."""

    __slots__ = (
        "name",
        "kind",
        "span_id",
        "parent_id",
        "trace_id",
        "thread",
        "start",
        "end",
        "modelled_seconds",
        "attributes",
        "events",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        attributes: dict,
        thread: str = "",
        trace_id: int = 0,
    ) -> None:
        self.name = name
        self.kind = kind
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.thread = thread
        self.start = start
        self.end: float | None = None
        self.modelled_seconds: float | None = None
        self.attributes = attributes
        self.events: list[SpanEvent] = []

    # -- annotation ----------------------------------------------------

    def set(self, key: str, value) -> "Span":
        """Attach/overwrite one attribute."""
        self.attributes[key] = value
        return self

    def add_event(self, name: str, at: float, **attributes) -> None:
        self.events.append(SpanEvent(name, at, attributes))

    # -- time ----------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        """Measured wall duration (0.0 while open or for accounting spans)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def seconds(self) -> float:
        """The span's reportable duration: modelled if charged, else wall."""
        if self.modelled_seconds is not None:
            return self.modelled_seconds
        return self.wall_seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        src = "modelled" if self.modelled_seconds is not None else "measured"
        return f"<Span #{self.span_id} {self.name!r} kind={self.kind} {src} {self.seconds * 1e3:.3f}ms>"


# ---------------------------------------------------------------------------
# the recording recorder


class TraceRecorder:
    """Collects spans, events, counters and histograms for one trace.

    Thread-safe: spans may be opened/closed concurrently from any number
    of threads.  Each thread nests spans on its own stack; cross-thread
    parentage is explicit (``span(..., parent=parent_span)``).
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        service: str = "",
        origin: str | None = None,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._next_id = 1
        self.spans: list[Span] = []
        #: Events recorded while no span was current on the calling thread.
        self.orphan_events: list[SpanEvent] = []
        self.metrics = MetricsRegistry()
        self._local = threading.local()
        #: Human label for the process/role this recorder observes
        #: (e.g. "client", "serve"); lands in the trace file's meta.
        self.service = service
        #: Process identity for cross-file span references.  Random per
        #: recorder by default; pin it for reproducible trace files.
        self.origin = origin if origin is not None else os.urandom(4).hex()

    # -- context plumbing ----------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def _open(
        self,
        name: str,
        kind: str,
        parent,
        attributes: dict,
        context: TraceContext | None = None,
    ) -> Span:
        stack = self._stack()
        trace_id = 0
        if context is not None:
            # Join the caller's trace.  A context from this same process
            # (pool hand-offs) names a real local span we can parent
            # under; a remote one leaves the span a root and records the
            # (origin, span_id) join keys for cross-file assembly.
            parent_id = None
            if context.origin and context.origin == self.origin and context.span_id:
                parent_id = context.span_id
            elif context.span_id:
                attributes.setdefault("trace.remote_origin", context.origin)
                attributes.setdefault("trace.remote_span", context.span_id)
            trace_id = context.trace_id
        elif parent is not None:
            parent_id = getattr(parent, "span_id", None)
            trace_id = getattr(parent, "trace_id", 0) or 0
        else:
            parent_id = stack[-1].span_id if stack else None
            if stack:
                trace_id = stack[-1].trace_id
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            if not trace_id:
                trace_id = _derive_trace_id(self.origin, span_id)
            span = Span(
                name,
                kind,
                span_id,
                parent_id,
                self._clock(),
                attributes,
                thread=threading.current_thread().name,
                trace_id=trace_id,
            )
            self.spans.append(span)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        stack = self._stack()
        # tolerate exotic exits (a generator span finalized on another
        # thread): remove the span wherever it sits instead of corrupting
        # the nesting of unrelated spans
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - defensive
            stack.remove(span)

    # -- public API -----------------------------------------------------

    def span(self, name: str, kind: str = "cpu", parent=None, context=None, **attributes):
        """Open a span; closes (stamps ``end``) when the block exits.

        ``context=`` joins an incoming :class:`TraceContext`: the span
        adopts its trace id (and, for a same-process context, its parent
        span).  A context whose ``sampled`` flag is off suppresses the
        span entirely — the shared null span is returned, so the server
        side of an unsampled request records nothing, matching the
        client's head-sampling decision.
        """
        if context is not None and not context.sampled:
            return _NULL_SPAN
        return self._span_cm(name, kind, parent, context, attributes)

    @contextmanager
    def _span_cm(self, name, kind, parent, context, attributes) -> Iterator[Span]:
        sp = self._open(name, kind, parent, attributes, context)
        try:
            yield sp
        except BaseException as exc:
            sp.attributes.setdefault("error", type(exc).__name__)
            raise
        finally:
            self._close(sp)

    def charge(
        self, name: str, seconds: float, kind: str = "wire", parent=None, **attributes
    ) -> Span:
        """Record an accounting span of modelled duration ``seconds``."""
        sp = self._open(name, kind, parent, attributes)
        sp.modelled_seconds = float(seconds)
        self._close(sp)
        sp.end = sp.start  # zero wall width: the time is charged, not spent
        return sp

    def event(self, name: str, **attributes) -> None:
        """Attach a point event to the calling thread's current span."""
        now = self._clock()
        current = self.current_span()
        if current is not None:
            current.add_event(name, now, **attributes)
        else:
            with self._lock:
                self.orphan_events.append(SpanEvent(name, now, attributes))

    def counter(self, name: str, labels=None):
        return self.metrics.counter(name, labels)

    def gauge(self, name: str, labels=None):
        return self.metrics.gauge(name, labels)

    def histogram(self, name: str, bounds=None, labels=None):
        return self.metrics.histogram(name, bounds, labels)

    def export(self, meta: dict | None = None) -> dict:
        """The trace as a JSON-ready dict (see :mod:`repro.obs.export`)."""
        from repro.obs.export import trace_dict

        return trace_dict(self, meta=meta)


# ---------------------------------------------------------------------------
# the disabled recorder


class _NullSpan:
    """Shared do-nothing span/context manager for the disabled path."""

    __slots__ = ()
    span_id = None
    trace_id = None
    events: tuple = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key, value) -> "_NullSpan":
        return self

    def add_event(self, name, at, **attributes) -> None:
        pass


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram (and family)."""

    __slots__ = ()

    def add(self, n=1) -> None:
        pass

    def inc(self, n=1) -> None:
        pass

    def dec(self, n=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value, exemplar=None) -> None:
        pass

    def labels(self, **values) -> "_NullInstrument":
        return self


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NullRecorder:
    """Recorder whose every operation is a no-op (the default)."""

    enabled = False

    def span(self, name, kind="cpu", parent=None, context=None, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def charge(self, name, seconds, kind="wire", parent=None, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name, **attributes) -> None:
        pass

    def counter(self, name, labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name, labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name, bounds=None, labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def current_span(self) -> None:
        return None


NULL_RECORDER = NullRecorder()

# ---------------------------------------------------------------------------
# the active recorder (process-global; worker threads see it too)

_active: TraceRecorder | NullRecorder = NULL_RECORDER

# Per-thread overrides: a recorder pinned to one thread (two logical
# processes sharing one interpreter, as in the distributed-trace smoke)
# and an ambient inbound TraceContext (a context held where no local
# span is open yet, e.g. between extraction and the first span).
_tls = threading.local()


def get_recorder():
    """The recorder instrumented call sites report to right now."""
    override = getattr(_tls, "recorder", None)
    if override is not None:
        return override
    return _active


def set_recorder(recorder):
    """Install ``recorder`` (None → disable); returns the previous one."""
    global _active
    previous = _active
    _active = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def recording(recorder: TraceRecorder | None = None) -> Iterator[TraceRecorder]:
    """Activate a recorder for the block (a fresh one by default)."""
    recorder = recorder if recorder is not None else TraceRecorder()
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


@contextmanager
def thread_recorder(recorder: TraceRecorder | None) -> Iterator[TraceRecorder | NullRecorder]:
    """Pin ``recorder`` to the *calling thread* for the block.

    Other threads keep seeing the process-global recorder — this is how
    one interpreter hosts two observed roles at once (a traced client
    thread talking to a traced server whose worker threads report to the
    global recorder).
    """
    recorder = recorder if recorder is not None else NULL_RECORDER
    previous = getattr(_tls, "recorder", None)
    _tls.recorder = recorder
    try:
        yield recorder
    finally:
        _tls.recorder = previous


@contextmanager
def use_context(context: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make ``context`` the calling thread's ambient inbound context."""
    previous = getattr(_tls, "context", None)
    _tls.context = context
    try:
        yield context
    finally:
        _tls.context = previous


def current_context() -> TraceContext | None:
    """The context an outbound request should carry right now.

    The active recorder's current span wins (its trace id and span id
    become the callee's parent); otherwise the thread's ambient inbound
    context is forwarded unchanged — which is how an unsampled decision
    still propagates even though nothing local is recording it.
    """
    recorder = get_recorder()
    if recorder.enabled:
        sp = recorder.current_span()
        if sp is not None:
            return TraceContext(sp.trace_id, sp.span_id, True, recorder.origin)
    return getattr(_tls, "context", None)


def current_trace_id() -> str | None:
    """The current span's trace id as 32 hex chars, or None."""
    recorder = get_recorder()
    if recorder.enabled:
        sp = recorder.current_span()
        if sp is not None:
            return f"{sp.trace_id:032x}"
    return None
