"""``repro.serve`` — the serving-under-load runtime.

The paper's evaluation is one client against one server; the ROADMAP's
north star is a production engine surviving heavy concurrent traffic.
This package is the piece that makes "surviving" a designed behaviour
rather than an accident of thread scheduling:

* :class:`~repro.serve.pool.WorkerPool` — bounded workers behind an
  explicit admission queue, constant-time load shedding, graceful drain;
* :class:`~repro.serve.service.SoapServeService` — the SOAP/HTTP host
  rebuilt on the pool: same wire behaviour as
  :class:`~repro.core.service.SoapHttpService`, plus ``503`` +
  ``Retry-After`` past the queue depth, per-worker warm codec sessions,
  and saturation gauges on ``GET /metrics``.

:mod:`repro.loadgen` generates the traffic that exercises this package;
``repro.harness.figure_load`` turns the pair into the throughput–latency
companion result to Figures 4–6.
"""

from repro.serve.pool import (
    AdmissionQueueFull,
    PoolStopped,
    ServeError,
    WorkerPool,
)
from repro.serve.service import ServeConfig, SoapServeService

__all__ = [
    "AdmissionQueueFull",
    "PoolStopped",
    "ServeConfig",
    "ServeError",
    "SoapServeService",
    "WorkerPool",
]
