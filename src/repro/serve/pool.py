"""Bounded worker pool with an explicit admission queue.

The serving runtime's execution discipline lives here, and *only* here:
this module is the one place in :mod:`repro.serve` allowed to spawn
threads (``tools/lint.py`` enforces that), so every unit of server work
flows through one bounded queue and one fixed set of workers.

Semantics:

* **Admission** — :meth:`WorkerPool.submit` enqueues a task or raises
  :class:`AdmissionQueueFull` *immediately* when ``queue_depth`` tasks are
  already waiting.  Shedding is a constant-time decision at the door; a
  saturated server answers "come back later" in microseconds instead of
  accepting work it cannot finish.
* **Execution** — ``workers`` threads drain the queue.  Each worker owns a
  private state object built by ``worker_state_factory`` and passes it to
  every task it runs — this is where warm per-worker
  :class:`~repro.bxsa.session.CodecSession`-backed encodings live, so
  compiled encode/decode plans and interned name tables persist across
  the requests one worker serves without any cross-thread sharing.
* **Drain** — :meth:`stop` rejects new submissions, lets the workers
  finish everything already admitted within ``drain_timeout`` seconds,
  then abandons what remains (waiters get :class:`PoolStopped`, never a
  hang).

Metrics (into the pool's :class:`~repro.obs.MetricsRegistry`, which the
serving runtime shares with its HTTP server so ``GET /metrics`` exports
them): ``serve_queue_depth`` / ``serve_workers_busy`` /
``serve_saturation`` gauges, ``serve_admitted_total`` /
``serve_shed_total`` / ``serve_completed_total{status}`` counters, and
``serve_queue_wait_seconds`` / ``serve_handle_seconds`` histograms.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable

from repro.obs.metrics import MetricsRegistry


class ServeError(Exception):
    """Base class for serving-runtime failures."""


class AdmissionQueueFull(ServeError):
    """The admission queue is at its configured depth; the task was shed.

    ``retry_after`` is the backoff hint (seconds) the caller should
    propagate to the client (the ``Retry-After`` header on a 503).
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class PoolStopped(ServeError):
    """The pool is stopping/stopped and cannot take or finish the task."""


#: Worker poll interval while waiting for work, seconds.  Bounds both the
#: idle wakeup rate and the latency of a drain noticing an empty queue.
_POLL_SECONDS = 0.05


class _Completion:
    """One submitted task's future result (event + slot, no cancellation)."""

    __slots__ = ("_event", "_result", "_error", "_cb_lock", "_callbacks")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None
        self._cb_lock = threading.Lock()
        self._callbacks: list = []

    def _finish(self, result=None, error: BaseException | None = None) -> None:
        self._result = result
        self._error = error
        self._event.set()
        with self._cb_lock:
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - a callback must not kill a worker
                pass

    def add_done_callback(self, fn) -> None:
        """Run ``fn(completion)`` when the task finishes (exactly once).

        Registered after completion, the callback runs immediately on the
        registering thread; otherwise it runs on the worker that finished
        the task.  This is what lets the event-driven server hand work to
        the pool without ever blocking its I/O loop on ``result()``.
        """
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Block for the task's outcome; re-raises what the task raised.

        A ``timeout`` expiring raises :class:`PoolStopped` — by
        construction the pool either runs every admitted task or fails its
        completion during drain, so an expired wait means the caller's
        budget was smaller than the task, not that the result will never
        come.
        """
        if not self._event.wait(timeout):
            raise PoolStopped("timed out waiting for a pooled task's result")
        if self._error is not None:
            raise self._error
        return self._result


class _Item:
    __slots__ = ("task", "completion", "enqueued_at")

    def __init__(self, task, completion: _Completion, enqueued_at: float) -> None:
        self.task = task
        self.completion = completion
        self.enqueued_at = enqueued_at


class WorkerPool:
    """Fixed worker threads behind a bounded admission queue."""

    def __init__(
        self,
        workers: int = 4,
        queue_depth: int = 16,
        *,
        metrics: MetricsRegistry | None = None,
        name: str = "serve",
        worker_state_factory: Callable[[], object] | None = None,
        retry_after: float = 0.05,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.workers = workers
        self.queue_depth = queue_depth
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._name = name
        self._state_factory = worker_state_factory
        self._retry_after = retry_after
        self._queue: queue.Queue[_Item] = queue.Queue(maxsize=queue_depth)
        self._threads: list[threading.Thread] = []
        self._running = False
        self._stopping = False
        self._stopped = False
        self._abandoned = False
        self._busy_lock = threading.Lock()
        self._busy = 0

    # ------------------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn the workers; returns self.

        Like the HTTP servers, a pool is one-shot: a drain may have
        abandoned queued tasks and failed their completions, so a
        restarted pool would silently mix pre- and post-stop state.
        Starting after ``stop()`` raises instead.
        """
        if self._running:
            raise RuntimeError("pool already running")
        if self._stopped:
            raise RuntimeError(
                "pool cannot be restarted after stop(); create a new WorkerPool"
            )
        self._running = True
        self._stopping = False
        self._abandoned = False
        self.metrics.gauge("serve_workers").set(self.workers)
        self.metrics.gauge("serve_queue_capacity").set(self.queue_depth)
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"{self._name}-worker-{i}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        return self

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Reject new work, drain admitted work, then abandon the rest.

        Within ``drain_timeout`` seconds the workers finish the queue and
        exit; past it the remaining queued tasks have their completions
        failed with :class:`PoolStopped` so no waiter hangs.
        """
        if not self._running:
            self._stopped = True  # a stopped-before-start pool is spent too
            return
        self._stopping = True
        self._stopped = True
        deadline = time.monotonic() + drain_timeout
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        if any(thread.is_alive() for thread in self._threads):
            # drain budget exhausted: tell workers to quit after their
            # current task and fail everything still queued
            self._abandoned = True
            self._fail_queued()
            for thread in self._threads:
                thread.join(timeout=_POLL_SECONDS * 4)
        # a submit that raced the stop may have slipped an item in after
        # the workers exited — fail it rather than strand its waiter
        self._fail_queued()
        self._running = False
        self._threads = []
        self._set_depth_gauge()

    def _fail_queued(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            item.completion._finish(error=PoolStopped("pool stopped before the task ran"))
            self.metrics.counter(
                "serve_completed_total", labels={"status": "abandoned"}
            ).add()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def submit(self, task: Callable[[object], object]) -> _Completion:
        """Admit ``task`` (a callable receiving the worker's state).

        Raises :class:`AdmissionQueueFull` when ``queue_depth`` tasks are
        already waiting and :class:`PoolStopped` when the pool is not
        accepting work — both *before* the task consumes any resource.
        """
        if not self._running or self._stopping:
            raise PoolStopped("pool is not accepting work")
        completion = _Completion()
        item = _Item(task, completion, time.perf_counter())
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            self.metrics.counter("serve_shed_total").add()
            raise AdmissionQueueFull(
                f"admission queue full ({self.queue_depth} waiting)",
                retry_after=self._retry_after,
            ) from None
        self.metrics.counter("serve_admitted_total").add()
        self._set_depth_gauge()
        return completion

    @property
    def busy_workers(self) -> int:
        with self._busy_lock:
            return self._busy

    @property
    def queue_size(self) -> int:
        """Tasks waiting for a worker right now (approximate, lock-free)."""
        return self._queue.qsize()

    @property
    def accepting(self) -> bool:
        """Whether :meth:`submit` would even consider admitting a task."""
        return self._running and not self._stopping

    # ------------------------------------------------------------------

    def _set_depth_gauge(self) -> None:
        self.metrics.gauge("serve_queue_depth").set(self._queue.qsize())

    def _set_busy(self, delta: int) -> None:
        with self._busy_lock:
            self._busy += delta
            busy = self._busy
        self.metrics.gauge("serve_workers_busy").set(busy)
        self.metrics.gauge("serve_saturation").set(busy / self.workers)

    def _worker_loop(self) -> None:
        state = self._state_factory() if self._state_factory is not None else None
        m = self.metrics
        while True:
            try:
                item = self._queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                if self._stopping or self._abandoned:
                    return
                continue
            self._set_depth_gauge()
            m.histogram("serve_queue_wait_seconds").observe(
                time.perf_counter() - item.enqueued_at
            )
            self._set_busy(+1)
            start = time.perf_counter()
            try:
                result = item.task(state)
            except BaseException as exc:  # noqa: BLE001 - worker must not die
                item.completion._finish(error=exc)
                m.counter("serve_completed_total", labels={"status": "error"}).add()
            else:
                item.completion._finish(result=result)
                m.counter("serve_completed_total", labels={"status": "ok"}).add()
            finally:
                self._set_busy(-1)
                m.histogram("serve_handle_seconds").observe(time.perf_counter() - start)
            if self._abandoned:
                return
