"""The production SOAP serving runtime: worker pool + admission control.

:class:`SoapHttpService <repro.core.service.SoapHttpService>` executes
every exchange on the connection thread that received it — fine for the
harness, fatal under heavy concurrent traffic, where unbounded in-flight
work means unbounded memory and collapse instead of degradation.
:class:`SoapServeService` keeps the same wire behaviour (content-type
negotiation, RED metrics, the ``/metrics``·``/healthz``·``/varz`` admin
surface on the same port) but runs the SOAP work on a
:class:`~repro.serve.pool.WorkerPool`:

* at most ``config.workers`` exchanges execute at once;
* at most ``config.queue_depth`` more wait in the admission queue;
* anything past that is **shed** with ``503`` + ``Retry-After:
  config.retry_after`` — the hint the client-side resilience layer
  (:func:`repro.transport.resilience.retry_call`) uses to pace its retry;
* each worker holds its own warm encoding policies (for BXSA that means a
  long-lived :class:`~repro.bxsa.session.CodecSession` with compiled
  encode *and* decode plans), so sustained same-shape traffic rides the
  hot path in both directions without sharing codec state across threads;
* :meth:`SoapServeService.stop` drains: the HTTP server finishes
  in-flight requests (the pool is still running while it does), then the
  pool drains its queue, then both are gone.

Saturation telemetry rides the shared registry: ``serve_queue_depth``,
``serve_workers_busy``, ``serve_saturation`` gauges and
``serve_shed_total`` / ``serve_admitted_total`` /
``serve_completed_total{status}`` counters appear on ``GET /metrics``
next to the SOAP RED series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import obs
from repro.core.dispatcher import Dispatcher
from repro.core.policies import EncodingPolicy, encoding_for_content_type
from repro.core.service import _RedRecorder, run_soap_http_exchange
from repro.obs import propagation
from repro.obs.metrics import MetricsRegistry
from repro.serve.pool import AdmissionQueueFull, PoolStopped, WorkerPool
from repro.transport.base import Listener
from repro.transport.http.messages import HttpRequest, HttpResponse, busy_response
from repro.transport.http.server import DEFAULT_MAX_CONNECTIONS, HttpServer


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving runtime (all bounds explicit)."""

    #: Worker threads executing SOAP exchanges.
    workers: int = 4
    #: Admission queue depth: exchanges allowed to wait for a worker.
    queue_depth: int = 16
    #: ``Retry-After`` hint sent with every shed response, seconds.
    retry_after: float = 0.05
    #: Budget for draining admitted work on stop, seconds.
    drain_timeout: float = 5.0
    #: Ceiling on one exchange's wait for its pooled result, seconds.
    result_timeout: float = 30.0
    #: Concurrent connection-thread cap for the underlying HTTP server.
    max_connections: int | None = DEFAULT_MAX_CONNECTIONS
    #: Serving core: ``"threaded"`` (one thread per connection) or
    #: ``"aio"`` (one selector loop for all connections; needs a
    #: socket-backed listener).  The pool discipline is identical.
    core: str = "threaded"
    #: Readiness threshold: ``GET /readyz`` answers 503 once the admission
    #: queue is at least this fraction full, so a load balancer probing
    #: readiness stops routing here *before* shedding starts.  Liveness
    #: (``/healthz``) is unaffected.
    ready_queue_fraction: float = 0.75


class _WorkerCodecs:
    """Per-worker encoding policies, created lazily and held warm.

    One instance lives in exactly one worker thread, so the policies it
    holds — including session-backed BXSA codecs with compiled encode and
    decode plans — are reused across that worker's requests with no
    locking.
    """

    __slots__ = ("_policies",)

    def __init__(self) -> None:
        self._policies: dict[str, EncodingPolicy] = {}

    def resolve(self, content_type: str) -> EncodingPolicy:
        policy = self._policies.get(content_type)
        if policy is None:
            policy = encoding_for_content_type(content_type)
            self._policies[content_type] = policy
        return policy


class SoapServeService:
    """SOAP over HTTP behind a bounded worker pool with load shedding."""

    def __init__(
        self,
        listener: Listener,
        dispatcher: Dispatcher,
        *,
        config: ServeConfig | None = None,
        security=None,
        target: str = "/soap",
        name: str = "soap-serve",
        metrics: MetricsRegistry | None = None,
        admin: bool = True,
    ) -> None:
        self._listener = listener
        self._dispatcher = dispatcher
        self._security = security
        self._target = target
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._red = _RedRecorder(self.metrics, dispatcher, "http")
        self.pool = WorkerPool(
            self.config.workers,
            self.config.queue_depth,
            metrics=self.metrics,
            name=name,
            worker_state_factory=_WorkerCodecs,
            retry_after=self.config.retry_after,
        )
        # one registry across pool + HTTP server: GET /metrics on this
        # port scrapes saturation, RED and HTTP series together
        if self.config.core == "threaded":
            self._server = HttpServer(
                listener,
                self._handle,
                name=name,
                metrics=self.metrics,
                admin=admin,
                max_connections=self.config.max_connections,
                readiness=self._readiness,
            )
        elif self.config.core == "aio":
            # deferred import: the aio module needs real sockets and is
            # only pulled in when an embedder asks for the selector core
            from repro.transport.aio import AsyncHttpServer

            self._server = AsyncHttpServer(
                listener,
                self._handle,
                name=name,
                metrics=self.metrics,
                admin=admin,
                max_connections=self.config.max_connections,
                pool=self.pool,
                pool_handler=self._pooled_exchange,
                inline_router=self._route_inline,
                on_shed=self._record_shed,
                readiness=self._readiness,
            )
        else:
            raise ValueError(
                f"unknown serving core {self.config.core!r}"
                " (expected 'threaded' or 'aio')"
            )

    # ------------------------------------------------------------------

    @property
    def address(self):
        """The listener's bound address — valid before :meth:`start`.

        ``TcpListener`` binds and listens in its constructor, so an
        embedder may publish this address (and peers may connect) before
        the serving loop runs: no sleep-polling for ephemeral ports.
        Listeners without an address (memory pipes) return ``None``.
        """
        return getattr(self._listener, "address", None)

    def _readiness(self) -> tuple[bool, dict]:
        """Readiness probe for ``GET /readyz`` on both serving cores.

        Not-ready once the admission queue crosses
        ``config.ready_queue_fraction`` of its capacity (or the pool
        stops accepting) — a balancer probing this stops routing here
        before requests start getting shed.
        """
        capacity = self.pool.queue_depth
        depth = self.pool.queue_size
        threshold = max(1, int(capacity * self.config.ready_queue_fraction))
        ready = self.pool.accepting and depth < threshold
        return ready, {
            "queue_depth": depth,
            "queue_capacity": capacity,
            "ready_threshold": threshold,
            "workers_busy": self.pool.busy_workers,
            "retry_after": self.config.retry_after,
        }

    def start(self) -> "SoapServeService":
        self.pool.start()
        self._server.start()
        return self

    def stop(self) -> None:
        """Graceful drain: HTTP first (pool still serving), then the pool."""
        self._server.stop(self.config.drain_timeout)
        self.pool.stop(self.config.drain_timeout)

    def __enter__(self) -> "SoapServeService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _handle(self, request: HttpRequest) -> HttpResponse:
        if request.target != self._target:
            return HttpResponse(404, body=b"no such endpoint")
        if request.method != "POST":
            return HttpResponse(405, body=b"SOAP endpoints accept POST only")
        start = time.perf_counter()
        # hand the conn thread's trace position to the worker: the pooled
        # exchange runs on another thread but parents under this request's
        # serve span (same process, so the context adopts a local parent)
        ctx = obs.current_context()
        try:
            completion = self.pool.submit(
                lambda codecs: self._exchange_in_worker(request, codecs, ctx)
            )
        except (AdmissionQueueFull, PoolStopped) as exc:
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is None:
                retry_after = self.config.retry_after
            self._red.record("?", "?", "shed", time.perf_counter() - start)
            return busy_response(
                retry_after, b"server overloaded: admission queue full"
            )
        response, operation, encoding_label, status = completion.result(
            self.config.result_timeout
        )
        # the RED latency includes queue wait: it is what the client saw
        self._red.record(operation, encoding_label, status, time.perf_counter() - start)
        return response

    def _exchange_in_worker(self, request: HttpRequest, codecs: _WorkerCodecs, ctx):
        """One exchange on a pool worker, joined to the conn thread's trace."""
        with obs.span("serve.exchange", kind="logical", context=ctx), obs.use_context(ctx):
            return run_soap_http_exchange(
                request, self._dispatcher, self._red, codecs.resolve, self._security
            )

    # ------------------------------------------------------------------
    # aio-core hooks: same routing/RED semantics, no blocking on the loop

    def _route_inline(self, request: HttpRequest) -> HttpResponse | None:
        """Answer routing misses on the loop; SOAP work goes to the pool."""
        if request.target != self._target:
            return HttpResponse(404, body=b"no such endpoint")
        if request.method != "POST":
            return HttpResponse(405, body=b"SOAP endpoints accept POST only")
        return None

    def _pooled_exchange(
        self, request: HttpRequest, codecs: _WorkerCodecs, enqueued_at: float
    ) -> HttpResponse:
        """Run one SOAP exchange on a worker (aio core's pool handler).

        The aio dispatch path bypasses ``HttpAppCore._respond`` for pooled
        requests, so the server-side root span (joined to the wire
        context, when one arrived intact) is opened here instead.
        """
        ctx = propagation.extract_headers(request.headers)
        with obs.span(
            "http.serve",
            kind="logical",
            context=ctx,
            method=request.method,
            target=request.target,
        ) as sp, obs.use_context(ctx):
            response, operation, encoding_label, status = run_soap_http_exchange(
                request, self._dispatcher, self._red, codecs.resolve, self._security
            )
            sp.set("status", response.status)
            # latency includes queue wait, matching the threaded path
            self._red.record(
                operation, encoding_label, status, time.perf_counter() - enqueued_at
            )
        return response

    def _record_shed(self, _request: HttpRequest) -> None:
        self._red.record("?", "?", "shed", 0.0)
