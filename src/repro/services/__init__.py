"""Example SOAP services used by the evaluation and the examples.

* :mod:`~repro.services.verification` — the paper's test service: the
  server verifies every value of the dataset and replies with the result,
  in both the unified (data-in-message) and separated (URL-in-message)
  styles;
* :mod:`~repro.services.echo` — the minimal service the quickstart uses;
* :mod:`~repro.services.eventing` — WS-Eventing-lite: publish/subscribe
  with XPath-lite filters over one-way SOAP messages (Figure 3's layer).
"""

from repro.services.echo import echo_dispatcher
from repro.services.eventing import EventSource, NotificationSink, Subscription
from repro.services.verification import (
    VerificationResult,
    build_verification_dispatcher,
    make_reference_request,
    make_unified_request,
    parse_verification_response,
)

__all__ = [
    "EventSource",
    "NotificationSink",
    "Subscription",
    "VerificationResult",
    "build_verification_dispatcher",
    "echo_dispatcher",
    "make_reference_request",
    "make_unified_request",
    "parse_verification_response",
]
