"""The minimal echo service (quickstart example, engine smoke tests)."""

from __future__ import annotations

from repro.core.dispatcher import Dispatcher
from repro.core.envelope import SoapEnvelope
from repro.xdm.builder import element


def echo_dispatcher() -> Dispatcher:
    """A dispatcher with one operation: Echo → EchoResponse (same children)."""
    dispatcher = Dispatcher()

    @dispatcher.operation("Echo")
    def echo(request: SoapEnvelope):
        return element("EchoResponse", *request.body_root.children)

    return dispatcher
