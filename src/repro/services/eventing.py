"""WS-Eventing-lite: publish/subscribe over the generic engine.

Figure 3 of the paper stacks WS-Eventing directly on the SOAP layer,
"ignorant of the underlying encoding and transport layers".  This module is
a compact rendition of that box:

* an :class:`EventSource` service accepts ``Subscribe`` / ``Unsubscribe``
  operations (delivery address + optional XPath-lite filter) and pushes
  each published event to every matching subscriber as a *one-way* SOAP
  message — the non-request-response MEP §2 mentions;
* a :class:`NotificationSink` listens for those one-way messages and hands
  the event bodies to a callback.

Both directions run on the same engine/policy machinery as everything
else, so a subscriber may ask for XML delivery while the source's own
clients speak BXSA — and filters are evaluated on bXDM with
:mod:`repro.xdm.xpath`, i.e. against the logical structure, never the
wire bytes.
"""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass
from typing import Callable

from repro.core.dispatcher import Dispatcher
from repro.core.engine import SoapEngine
from repro.core.envelope import SoapEnvelope
from repro.core.fault import CLIENT_FAULT, SoapFault
from repro.core.policies import EncodingPolicy, XMLEncoding, encoding_for_content_type
from repro.transport.base import Channel, Listener, TransportError
from repro.transport.tcp_binding import TcpClientBinding, TcpServerBinding
from repro.xdm.builder import element, leaf
from repro.xdm.nodes import ElementNode, Node
from repro.xdm.path import children_named
from repro.xdm.xpath import XPathError, evaluate, parse_path


@dataclass
class Subscription:
    """One active subscription."""

    subscription_id: str
    address: str  #: connector key of the subscriber's notification sink
    xpath_filter: str | None  #: deliver only events matching this path
    content_type: str  #: encoding the subscriber asked to receive


class EventSource:
    """The subscription manager + publisher half.

    Parameters
    ----------
    connect:
        ``(address) -> Channel`` used to reach subscribers' sinks.
    dispatcher:
        Optional existing dispatcher to add the eventing operations to
        (a source can share a service with ordinary operations).
    """

    def __init__(
        self,
        connect: Callable[[str], Channel],
        dispatcher: Dispatcher | None = None,
    ) -> None:
        self._connect = connect
        self._subscriptions: dict[str, Subscription] = {}
        self._lock = threading.Lock()
        self.dispatcher = dispatcher if dispatcher is not None else Dispatcher()
        self.dispatcher.register("Subscribe", self._on_subscribe)
        self.dispatcher.register("Unsubscribe", self._on_unsubscribe)
        #: Count of delivery failures (dead sinks), for monitoring.
        self.delivery_failures = 0

    # ------------------------------------------------------------------
    # subscription operations (server side)

    def _on_subscribe(self, request: SoapEnvelope):
        body = request.body_root
        address_nodes = children_named(body, "address")
        if not address_nodes:
            raise SoapFault(CLIENT_FAULT, "Subscribe requires <address>")
        address = str(address_nodes[0].value)
        filter_nodes = children_named(body, "filter")
        xpath_filter = str(filter_nodes[0].value) if filter_nodes else None
        if xpath_filter:
            try:
                parse_path(xpath_filter)
            except XPathError as exc:
                raise SoapFault(CLIENT_FAULT, f"bad filter: {exc}") from exc
        encoding_nodes = children_named(body, "encoding")
        content_type = (
            str(encoding_nodes[0].value) if encoding_nodes else XMLEncoding.content_type
        )
        try:
            encoding_for_content_type(content_type)
        except ValueError as exc:
            raise SoapFault(CLIENT_FAULT, str(exc)) from exc

        subscription = Subscription(uuid.uuid4().hex, address, xpath_filter or None, content_type)
        with self._lock:
            self._subscriptions[subscription.subscription_id] = subscription
        return element(
            "SubscribeResponse",
            leaf("subscriptionId", subscription.subscription_id, "string"),
        )

    def _on_unsubscribe(self, request: SoapEnvelope):
        id_nodes = children_named(request.body_root, "subscriptionId")
        if not id_nodes:
            raise SoapFault(CLIENT_FAULT, "Unsubscribe requires <subscriptionId>")
        subscription_id = str(id_nodes[0].value)
        with self._lock:
            removed = self._subscriptions.pop(subscription_id, None)
        if removed is None:
            raise SoapFault(CLIENT_FAULT, f"unknown subscription {subscription_id!r}")
        return element("UnsubscribeResponse")

    # ------------------------------------------------------------------
    # publishing

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def publish(self, event: Node) -> int:
        """Push one event element to every matching subscriber.

        Returns the number of deliveries attempted.  Filters are evaluated
        against a wrapper element so paths address the event by its own
        name (e.g. ``reading[@station="3"]``).
        """
        probe = element("published", event)
        with self._lock:
            targets = list(self._subscriptions.values())
        delivered = 0
        for subscription in targets:
            if subscription.xpath_filter:
                try:
                    if not evaluate(probe, subscription.xpath_filter):
                        continue
                except XPathError:
                    continue  # validated at subscribe; defensive
            if self._deliver(subscription, event):
                delivered += 1
        return delivered

    def _deliver(self, subscription: Subscription, event: Node) -> bool:
        envelope = SoapEnvelope.wrap(
            element(
                "Notify",
                leaf("subscriptionId", subscription.subscription_id, "string"),
                event,
            )
        )
        try:
            channel = self._connect(subscription.address)
        except TransportError:
            self.delivery_failures += 1
            return False
        try:
            encoding = encoding_for_content_type(subscription.content_type)
            engine = SoapEngine(encoding, TcpClientBinding(channel))
            engine.send(envelope)  # one-way: no response expected
            return True
        except TransportError:
            self.delivery_failures += 1
            return False
        finally:
            channel.close()


class NotificationSink:
    """Subscriber half: receives one-way Notify messages on a listener."""

    def __init__(
        self,
        listener: Listener,
        on_event: Callable[[str, ElementNode], None],
        *,
        encoding: EncodingPolicy | None = None,
        name: str = "event-sink",
    ) -> None:
        self._listener = listener
        self._on_event = on_event
        self._encoding = encoding if encoding is not None else XMLEncoding()
        self._name = name
        self._thread: threading.Thread | None = None
        self._running = False

    def start(self) -> "NotificationSink":
        self._running = True
        self._thread = threading.Thread(target=self._loop, name=self._name, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        self._listener.close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "NotificationSink":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _loop(self) -> None:
        while self._running:
            try:
                channel = self._listener.accept()
            except TransportError:
                return
            threading.Thread(
                target=self._receive_one,
                args=(channel,),
                name=f"{self._name}-rx",
                daemon=True,
            ).start()

    def _receive_one(self, channel) -> None:
        try:
            engine = SoapEngine(self._encoding, TcpServerBinding(channel))
            envelope, _content_type = engine.receive()
            body = envelope.body_root
            if body.name.local != "Notify":
                return  # not a notification; drop (one-way: nobody to fault)
            subscription_id = str(children_named(body, "subscriptionId")[0].value)
            event = next(
                child
                for child in body.elements()
                if child.name.local != "subscriptionId"
            )
            self._on_event(subscription_id, event)
        except (TransportError, SoapFault, StopIteration):
            pass  # a malformed one-way message has no error channel
        finally:
            channel.close()
