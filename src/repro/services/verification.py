"""The paper's verification service (§6), both solution styles.

Unified solution (the paper, 1.): "The client constructs the binary data in
the bXDM model, then sends both the request and the binary data in one SOAP
request message to the server. [...] Once the server receives the message,
it deserializes it into the bXDM model, verifies each value in the model,
and sends the verification result back."

Separated solution (the paper, 2.): "the client sends the request in a
general SOAP request message, whose content is just the URL pointing to the
netCDF file, to the server, which in turn downloads the netCDF file, reads
and verifies the file and finally sends the verification result back."

Faithful detail: the separated path spools the downloaded bytes to a real
temporary file and reads it back through the netCDF reader, because "the
netCDF library does not support reading the data directly from memory" —
that extra disk round trip is part of what Figures 4-5 measure.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.dispatcher import Dispatcher
from repro.core.envelope import SoapEnvelope
from repro.core.fault import CLIENT_FAULT, SoapFault
from repro.netcdf.reader import read_dataset
from repro.workloads.lead import LeadDataset
from repro.xdm.builder import element, leaf
from repro.xdm.nodes import ElementNode
from repro.xdm.path import children_named


@dataclass(frozen=True)
class VerificationResult:
    """The record the server sends back."""

    count: int
    valid: int
    index_ok: bool
    ok: bool
    checksum: float

    def to_element(self) -> ElementNode:
        return element(
            "VerifyResponse",
            leaf("count", self.count, "int"),
            leaf("valid", self.valid, "int"),
            leaf("indexOk", self.index_ok, "boolean"),
            leaf("ok", self.ok, "boolean"),
            leaf("checksum", self.checksum, "double"),
        )

    @classmethod
    def from_record(cls, record: dict) -> "VerificationResult":
        return cls(
            count=record["count"],
            valid=record["valid"],
            index_ok=record["index_ok"],
            ok=record["ok"],
            checksum=record["checksum"],
        )


def parse_verification_response(node: ElementNode) -> VerificationResult:
    """Rebuild the result from a response body element."""

    def one(name):
        return children_named(node, name)[0].value

    return VerificationResult(
        count=one("count"),
        valid=one("valid"),
        index_ok=one("indexOk"),
        ok=one("ok"),
        checksum=one("checksum"),
    )


# ---------------------------------------------------------------------------
# request construction (client side)


def make_unified_request(dataset: LeadDataset) -> SoapEnvelope:
    """<VerifyData><d>…arrays…</d></VerifyData> — data inside the message."""
    return SoapEnvelope.wrap(element("VerifyData", dataset.to_bxdm()))


def make_reference_request(url: str, n_streams: int = 1) -> SoapEnvelope:
    """<VerifyDataByReference><url>…</url></…> — the separated scheme."""
    return SoapEnvelope.wrap(
        element(
            "VerifyDataByReference",
            leaf("url", url, "string"),
            leaf("streams", n_streams, "int"),
        )
    )


# ---------------------------------------------------------------------------
# server side


def build_verification_dispatcher(
    fetch_url: Callable[[str], bytes] | None = None,
) -> Dispatcher:
    """The service dispatcher.

    ``fetch_url`` resolves separated-scheme URLs (see
    :class:`~repro.datachannel.UrlResolver`); without it the
    by-reference operation faults.
    """
    dispatcher = Dispatcher()

    @dispatcher.operation("VerifyData")
    def verify_unified(request: SoapEnvelope):
        payload = children_named(request.body_root, "d")
        if not payload:
            raise SoapFault(CLIENT_FAULT, "VerifyData requires a <d> dataset element")
        dataset = LeadDataset.from_bxdm(payload[0])
        record = dataset.verify()
        return VerificationResult.from_record(record).to_element()

    @dispatcher.operation("VerifyDataByReference")
    def verify_by_reference(request: SoapEnvelope):
        if fetch_url is None:
            raise SoapFault(
                "soap:Server", "this deployment has no data channel configured"
            )
        url_nodes = children_named(request.body_root, "url")
        if not url_nodes:
            raise SoapFault(CLIENT_FAULT, "VerifyDataByReference requires <url>")
        url = str(url_nodes[0].value)
        blob = fetch_url(url)
        dataset = _read_netcdf_via_tempfile(blob)
        record = dataset.verify()
        return VerificationResult.from_record(record).to_element()

    return dispatcher


def _read_netcdf_via_tempfile(blob: bytes) -> LeadDataset:
    """Land the download in a real file and read it back (see module doc)."""
    fd, path = tempfile.mkstemp(suffix=".nc", prefix="repro-fetch-")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        ds = read_dataset(path)
    finally:
        os.unlink(path)
    try:
        index = np.asarray(ds.variables["index"].data, dtype="i4")
        values = np.asarray(ds.variables["values"].data, dtype="f8")
    except KeyError as exc:
        raise SoapFault(
            CLIENT_FAULT, f"netCDF file lacks the expected variable: {exc}"
        ) from exc
    return LeadDataset(index, values)
