"""Transport layer: channels, listeners and SOAP transport bindings.

This package is the "Transportation Layer" of the paper's Figure 3.  It
provides:

* byte-stream **channels** over real TCP sockets (:mod:`~repro.transport.sockets`),
  in-process pipes (:mod:`~repro.transport.memory`), and byte-counting
  wrappers used by the experiment harness
  (:class:`~repro.transport.instrument.InstrumentedChannel`);
* the **TCP binding** — SOAP messages length-prefixed straight onto a
  stream, the paper's ``TCPBinding`` ("just dump the serialization directly
  to a TCP connection");
* a from-scratch **HTTP/1.1** stack (:mod:`repro.transport.http`) and the
  ``HttpBinding`` that POSTs SOAP messages over it.

Bindings implement the four valid expressions of the paper's binding
concept (§5.3): ``send_request`` / ``receive_response`` on the client side,
``receive_request`` / ``send_response`` on the server side — here at the
byte level, carrying a content-type tag so either encoding can ride either
binding.
"""

from repro.transport.base import Channel, Listener, TransportClosed, TransportError
from repro.transport.instrument import ChannelStats, InstrumentedChannel
from repro.transport.memory import MemoryNetwork, memory_pipe
from repro.transport.resilience import (
    NO_RETRY,
    Deadline,
    DeadlineChannel,
    DeadlineExceeded,
    ResiliencePolicy,
    RetryBudgetExhausted,
    RetryPolicy,
    as_deadline,
    retry_call,
)
from repro.transport.sockets import SocketChannel, TcpListener, connect_tcp
from repro.transport.tcp_binding import (
    TcpClientBinding,
    TcpServerBinding,
    read_message,
    write_message,
)

__all__ = [
    "Channel",
    "ChannelStats",
    "Deadline",
    "DeadlineChannel",
    "DeadlineExceeded",
    "InstrumentedChannel",
    "Listener",
    "MemoryNetwork",
    "NO_RETRY",
    "ResiliencePolicy",
    "RetryBudgetExhausted",
    "RetryPolicy",
    "as_deadline",
    "retry_call",
    "SocketChannel",
    "TcpClientBinding",
    "TcpListener",
    "TcpServerBinding",
    "TransportClosed",
    "TransportError",
    "connect_tcp",
    "memory_pipe",
    "read_message",
    "write_message",
]
