"""Event-driven HTTP/1.1 serving core: one selector loop, thousands of
keep-alive connections.

The threaded :class:`~repro.transport.http.server.HttpServer` spends one
thread per connection; past a few hundred mostly-idle keep-alive
connections the interpreter pays for stacks and context switches that do
no work.  This module replaces *only* the I/O discipline:

* **Event loop for I/O** — a single daemon thread owns a
  :mod:`selectors` loop that accepts non-blockingly, frames HTTP/1.1
  requests incrementally (shared grammar:
  :func:`~repro.transport.http.messages.parse_request_head` +
  :func:`~repro.transport.http.messages.declared_body_length`), and
  writes responses with partial-write continuation.  An idle keep-alive
  connection costs one registered file descriptor and a small buffer —
  not a thread.
* **Pool for CPU** — a complete request is handed to the existing
  bounded :class:`~repro.serve.pool.WorkerPool`; its admission queue is
  still the *only* place work is shed (plus the connection cap at
  accept).  Workers notify the loop through a completion callback and a
  wakeup socketpair; the loop thread never blocks on a result.

:class:`AsyncHttpServer` is drop-in API-compatible with ``HttpServer``:
same handler signature, same ``/metrics``·``/healthz``·``/varz`` admin
surface (it subclasses the shared
:class:`~repro.transport.http.server.HttpAppCore`), same 503 +
``Retry-After`` shedding, same graceful drain on ``stop()``, same metric
family names.  It additionally accepts a ``pool`` so CPU-bound handlers
run off-loop.

The module also hosts :func:`drive_connections`, the selector-based
load client that holds thousands of concurrent keep-alive connections
from a single thread — the measuring half of Figure L's connection
ladder.  ``tools/lint.py`` confines ``selectors`` usage to this module,
the same way it confines thread spawning to the pool.
"""

from __future__ import annotations

import errno
import selectors
import socket
import threading
import time
from collections import deque
from typing import Callable

from repro.obs.metrics import MetricsRegistry
from repro.serve.pool import AdmissionQueueFull, PoolStopped, WorkerPool
from repro.transport.base import TransportError
from repro.transport.http.messages import (
    HEADER_END,
    ChunkedDecoder,
    HttpError,
    HttpRequest,
    HttpResponse,
    _parse_headers,
    body_framing,
    busy_response,
    declared_body_length,
    encode_chunk,
    last_chunk,
    parse_request_head,
)
from repro.transport.http.server import (
    DEFAULT_MAX_CONNECTIONS,
    REJECT_RETRY_AFTER,
    ADMIN_TARGETS,
    HttpAppCore,
)

#: Ceiling on a request head (start line + headers); matches the 1 MiB
#: ``recv_until`` cap of the blocking server's BufferedChannel.
MAX_HEAD_BYTES = 1 << 20

#: Pause reading a connection whose input buffer holds this much
#: unprocessed pipelined data while a request is already in flight.
MAX_PIPELINE_BYTES = 1 << 20

_ACCEPT = "accept"
_WAKEUP = "wakeup"


class _Conn:
    """Per-connection state owned exclusively by the loop thread."""

    __slots__ = (
        "sock",
        "fd",
        "inbuf",
        "outbuf",
        "events",
        "registered",
        "busy",
        "pending",
        "need",
        "close_after_flush",
        "peer_eof",
        "closed",
        "chunker",
        "chunk_parts",
        "pending_head",
        "body_iter",
        "body_trailers",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.events = 0
        self.registered = False
        self.busy = False  # a pooled request is in flight
        self.pending: tuple[HttpRequest, float] | None = None
        self.need = 0  # bytes required to complete the current body
        self.close_after_flush = False
        self.peer_eof = False
        self.closed = False
        # mid-flight chunked request body (head parsed, body incomplete)
        self.chunker: ChunkedDecoder | None = None
        self.chunk_parts: list | None = None
        self.pending_head: tuple | None = None
        # streamed response being written: pull-on-drain body producer
        self.body_iter = None
        self.body_trailers = None


class AsyncHttpServer(HttpAppCore):
    """Serve ``handler`` over a selector loop instead of per-conn threads.

    Requires a socket-backed listener (one exposing ``raw_socket``, e.g.
    :class:`~repro.transport.sockets.TcpListener`) — in-memory pipes have
    no file descriptor to select on.

    Without a ``pool`` every request (admin or handler) is answered
    inline on the loop thread — fine for admin sidecars and trivial
    handlers.  With a ``pool``:

    * admin targets and requests ``inline_router`` claims are still
      answered inline (they are cheap and must work even when the pool
      is saturated);
    * everything else is submitted as ``pool_handler(request, state,
      enqueued_at)`` (``state`` is the worker's private state object);
      admission rejection becomes the standard 503 + ``Retry-After`` and
      ``on_shed(request)`` lets the embedder account it (e.g. RED
      metrics).
    """

    def __init__(
        self,
        listener,
        handler: Callable[[HttpRequest], HttpResponse],
        *,
        name: str = "aio-server",
        metrics: MetricsRegistry | None = None,
        admin: bool = True,
        drain_timeout: float = 5.0,
        max_connections: int | None = DEFAULT_MAX_CONNECTIONS,
        pool: WorkerPool | None = None,
        pool_handler: Callable[[HttpRequest, object, float], HttpResponse] | None = None,
        inline_router: Callable[[HttpRequest], HttpResponse | None] | None = None,
        on_shed: Callable[[HttpRequest], None] | None = None,
        readiness: Callable[[], tuple[bool, dict]] | None = None,
    ) -> None:
        raw = getattr(listener, "raw_socket", None)
        if raw is None:
            if isinstance(listener, socket.socket):
                raw = listener
            else:
                raise TransportError(
                    "AsyncHttpServer needs a socket-backed listener exposing "
                    "raw_socket (e.g. TcpListener); in-memory pipes have no "
                    "file descriptor to select on"
                )
        if pool is not None and pool_handler is None:
            raise ValueError("pool_handler is required when a pool is given")
        if max_connections is not None and max_connections < 1:
            raise ValueError("max_connections must be >= 1 (or None for no cap)")
        self._listener = listener
        self._lsock: socket.socket = raw
        self._handler = handler
        self._name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._admin = admin
        self._readiness = readiness
        self._drain_timeout = drain_timeout
        self._max_connections = max_connections
        self._pool = pool
        self._pool_handler = pool_handler
        self._inline_router = inline_router
        self._on_shed = on_shed
        self._sel: selectors.BaseSelector | None = None
        self._thread: threading.Thread | None = None
        self._conns: dict[int, _Conn] = {}
        self._running = False
        self._stopped = False
        self._started_at: float | None = None
        # completion hand-off: worker threads append here and poke the
        # wakeup socket; only the loop thread pops
        self._done: deque = deque()
        self._waker_r: socket.socket | None = None
        self._waker_w: socket.socket | None = None
        self._stop_requested = False
        self._draining = False
        self._drain_deadline = 0.0
        self._force_close = False
        self._pool_in_flight = 0
        self._reject_payload = busy_response(
            REJECT_RETRY_AFTER,
            b"connection limit reached, retry later",
            close=True,
        ).to_bytes()
        self.recent_errors: deque = deque(maxlen=32)

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "AsyncHttpServer":
        """Start the selector loop in a daemon thread; returns self.

        One-shot, like :class:`HttpServer`: ``stop()`` closes the
        listener, so a restart raises instead of limping on stale state.
        """
        if self._running:
            raise RuntimeError("server already running")
        if self._stopped:
            raise RuntimeError(
                "server cannot be restarted: stop() closed its listener; "
                "create a new AsyncHttpServer on a fresh listener instead"
            )
        self._running = True
        self._started_at = time.monotonic()
        self._lsock.setblocking(False)
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._lsock, selectors.EVENT_READ, _ACCEPT)
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._waker_w.setblocking(False)
        self._sel.register(self._waker_r, selectors.EVENT_READ, _WAKEUP)
        self._thread = threading.Thread(target=self._run, name=self._name, daemon=True)
        self._thread.start()
        return self

    def stop(self, drain_timeout: float | None = None) -> None:
        """Stop accepting, drain in-flight requests, close every connection.

        The loop closes the listener, lets requests already handed to the
        pool finish (writing their responses) within the drain budget,
        closes idle connections immediately, and force-closes whatever
        remains when the budget expires.
        """
        if not self._running:
            self._stopped = True
            return
        self._running = False
        self._stopped = True
        budget = drain_timeout if drain_timeout is not None else self._drain_timeout
        self._drain_deadline = time.monotonic() + budget
        self._stop_requested = True
        self._wake()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=budget + 2.0)
            if thread.is_alive():  # pragma: no cover - defensive
                self._force_close = True
                self._wake()
                thread.join(timeout=2.0)
        self._thread = None

    def __enter__(self) -> "AsyncHttpServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # the loop

    def _wake(self) -> None:
        waker = self._waker_w
        if waker is None:
            return
        try:
            waker.send(b"\x01")
        except (BlockingIOError, OSError):
            pass  # a full pipe already guarantees a pending wakeup

    def _run(self) -> None:
        sel = self._sel
        assert sel is not None
        # loop health on /metrics: how long one iteration of event
        # processing runs without touching the selector (scheduling delay
        # any ready connection eats), and how much work each wakeup found
        loop_lag = self.metrics.gauge("aio_loop_lag_seconds")
        ready_depth = self.metrics.gauge("aio_ready_queue_depth")
        busy_start = time.perf_counter()
        try:
            while True:
                self._drain_completions()
                if self._stop_requested and not self._draining:
                    self._begin_drain()
                if self._force_close:
                    return
                if self._draining:
                    if not self._conns and self._pool_in_flight == 0:
                        return
                    remaining = self._drain_deadline - time.monotonic()
                    if remaining <= 0:
                        return
                    timeout = min(0.05, remaining)
                else:
                    timeout = 0.5
                loop_lag.set(time.perf_counter() - busy_start)
                events = sel.select(timeout)
                busy_start = time.perf_counter()
                ready_depth.set(len(events) + len(self._done))
                for key, mask in events:
                    data = key.data
                    if data is _ACCEPT:
                        self._on_accept()
                    elif data is _WAKEUP:
                        self._drain_wakeup()
                    else:
                        conn = data
                        if conn.closed:
                            continue
                        if mask & selectors.EVENT_READ:
                            self._on_readable(conn)
                        if mask & selectors.EVENT_WRITE and not conn.closed:
                            self._flush(conn)
        finally:
            self._teardown()

    def _begin_drain(self) -> None:
        self._draining = True
        sel = self._sel
        try:
            sel.unregister(self._lsock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            self._listener.close()
        except (TransportError, OSError):
            pass
        # idle connections owe nothing; close them now
        for conn in list(self._conns.values()):
            if not conn.busy and not conn.outbuf and conn.body_iter is None:
                self._close_conn(conn)

    def _teardown(self) -> None:
        for conn in list(self._conns.values()):
            self._close_conn(conn)
        sel = self._sel
        if sel is not None:
            try:
                sel.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for waker in (self._waker_r, self._waker_w):
            if waker is not None:
                try:
                    waker.close()
                except OSError:  # pragma: no cover - defensive
                    pass
        self._waker_r = self._waker_w = None

    def _drain_wakeup(self) -> None:
        waker = self._waker_r
        if waker is None:
            return
        while True:
            try:
                if not waker.recv(4096):
                    return
            except (BlockingIOError, InterruptedError):
                return
            except OSError:  # pragma: no cover - defensive
                return

    # ------------------------------------------------------------------
    # accept / read / write

    def _on_accept(self) -> None:
        while True:
            try:
                sock, _peer = self._lsock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed
            if self._draining:
                sock.close()
                continue
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass  # not a TCP socket (e.g. AF_UNIX); fine
            if (
                self._max_connections is not None
                and len(self._conns) >= self._max_connections
            ):
                self._reject(sock)
                continue
            conn = _Conn(sock)
            self._conns[conn.fd] = conn
            self.metrics.gauge("http_connections_open").inc()
            self.metrics.counter("http_connections_total").add()
            self._sel.register(sock, selectors.EVENT_READ, conn)
            conn.registered = True
            conn.events = selectors.EVENT_READ

    def _reject(self, sock: socket.socket) -> None:
        """503 + Retry-After from the loop itself — same contract as the
        threaded accept loop's cap rejection."""
        self.metrics.counter("http_connections_rejected_total").add()
        try:
            sock.send(self._reject_payload)
        except OSError:
            pass  # the peer is gone; nothing owed to it
        try:
            sock.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def _on_readable(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            conn.peer_eof = True
            if not conn.busy and not conn.outbuf and conn.body_iter is None:
                self._close_conn(conn)
            else:
                self._update_interest(conn)
            return
        conn.inbuf += data
        self._advance(conn)

    def _advance(self, conn: _Conn) -> None:
        """Parse as many complete requests out of ``inbuf`` as the
        one-in-flight discipline allows, dispatching each.

        A streamed response still being written (``body_iter``) blocks
        dispatch the same way ``busy`` does — a pipelined response
        serialized into ``outbuf`` mid-stream would interleave with the
        chunks being pulled.
        """
        while not conn.busy and not conn.closed and conn.body_iter is None:
            if self._draining:
                if not conn.outbuf:
                    self._close_conn(conn)
                    return
                break
            if conn.chunker is not None:
                if not self._advance_chunked(conn):
                    break
                continue
            idx = conn.inbuf.find(HEADER_END)
            if idx < 0:
                if len(conn.inbuf) > MAX_HEAD_BYTES:
                    self._abort(conn, HttpError("request head exceeds 1 MiB"))
                    return
                break
            try:
                method, target, version, headers = parse_request_head(
                    bytes(conn.inbuf[:idx])
                )
                mode, length = body_framing(headers)
            except HttpError as exc:
                self._abort(conn, exc)
                return
            if mode == "chunked":
                # head consumed; the body is framed incrementally by the
                # one ChunkedDecoder (messages.py owns the grammar)
                del conn.inbuf[: idx + len(HEADER_END)]
                conn.need = 0
                conn.chunker = ChunkedDecoder()
                conn.chunk_parts = []
                conn.pending_head = (method, target, version, headers)
                continue
            total = idx + len(HEADER_END) + length
            if len(conn.inbuf) < total:
                conn.need = total  # keep reading even past the pipeline cap
                break
            conn.need = 0
            body = bytes(conn.inbuf[idx + len(HEADER_END) : total])
            del conn.inbuf[:total]
            request = HttpRequest(method, target, headers, body, version)
            self._dispatch(conn, request)
        self._update_interest(conn)

    def _advance_chunked(self, conn: _Conn) -> bool:
        """Feed buffered bytes into the in-flight chunked body.

        Returns True when the request completed and was dispatched,
        False when more bytes are needed (or the connection died).
        """
        data = bytes(conn.inbuf)
        conn.inbuf.clear()
        try:
            conn.chunk_parts += conn.chunker.feed(data)
        except HttpError as exc:
            self._abort(conn, exc)
            return False
        if not conn.chunker.done:
            return False
        conn.inbuf += conn.chunker.residue  # pipelined next request
        method, target, version, headers = conn.pending_head
        request = HttpRequest(
            method, target, headers, b"".join(conn.chunk_parts), version
        )
        request.trailers = conn.chunker.trailers
        conn.chunker = None
        conn.chunk_parts = None
        conn.pending_head = None
        self._dispatch(conn, request)
        return True

    def _abort(self, conn: _Conn, exc: HttpError) -> None:
        """Unserviceable framing: answer ``exc.status`` (400 malformed,
        501 unsupported transfer coding) and close once it is flushed."""
        conn.inbuf.clear()
        conn.need = 0
        conn.chunker = None
        conn.chunk_parts = None
        conn.pending_head = None
        response = HttpResponse(exc.status, body=str(exc).encode())
        response.headers.set("Connection", "close")
        conn.close_after_flush = True
        conn.outbuf += response.to_bytes()
        self._flush(conn)

    def _flush(self, conn: _Conn) -> None:
        while True:
            if not conn.outbuf and conn.body_iter is not None:
                self._pull_body(conn)
                if conn.closed:
                    return
            if not conn.outbuf:
                break
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(conn)
                return
            if sent <= 0:  # pragma: no cover - defensive
                break
            del conn.outbuf[:sent]
        if not conn.outbuf and conn.body_iter is None and (
            conn.close_after_flush or (conn.peer_eof and not conn.busy)
        ):
            self._close_conn(conn)
            return
        self._update_interest(conn)

    def _pull_body(self, conn: _Conn) -> None:
        """Refill ``outbuf`` from the streamed response body.

        Pull-on-drain: the producer is asked for its next piece only when
        the already-serialized bytes have left (or at least entered the
        socket buffer), so a slow client holds back the producer instead
        of ballooning ``outbuf`` with the whole message.
        """
        try:
            while not conn.outbuf:
                piece = next(conn.body_iter, None)
                if piece is None:
                    conn.outbuf += last_chunk(conn.body_trailers)
                    conn.body_iter = None
                    conn.body_trailers = None
                    return
                conn.outbuf += encode_chunk(piece)
        except Exception as exc:  # noqa: BLE001 - producer failed mid-body;
            # the head is on the wire, so no error status can be sent — the
            # truncated chunked body marks the message bad for the peer
            self.metrics.counter(
                "http_handler_errors_total", labels={"type": type(exc).__name__}
            ).add()
            self._close_conn(conn)

    def _update_interest(self, conn: _Conn) -> None:
        if conn.closed:
            return
        desired = 0
        if not conn.peer_eof and (
            len(conn.inbuf) < MAX_PIPELINE_BYTES or len(conn.inbuf) < conn.need
        ):
            desired |= selectors.EVENT_READ
        if conn.outbuf or conn.body_iter is not None:
            desired |= selectors.EVENT_WRITE
        if desired == conn.events and conn.registered == bool(desired):
            return
        sel = self._sel
        try:
            if conn.registered and not desired:
                sel.unregister(conn.sock)
                conn.registered = False
            elif conn.registered:
                sel.modify(conn.sock, desired, conn)
            elif desired:
                sel.register(conn.sock, desired, conn)
                conn.registered = True
        except (KeyError, ValueError, OSError):  # pragma: no cover - defensive
            self._close_conn(conn)
            return
        conn.events = desired

    def _close_conn(self, conn: _Conn) -> None:
        if conn.closed:
            return
        conn.closed = True
        if conn.registered:
            try:
                self._sel.unregister(conn.sock)
            except (KeyError, ValueError, OSError):  # pragma: no cover
                pass
            conn.registered = False
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if self._conns.pop(conn.fd, None) is not None:
            self.metrics.gauge("http_connections_open").dec()

    # ------------------------------------------------------------------
    # dispatch

    def _dispatch(self, conn: _Conn, request: HttpRequest) -> None:
        pool = self._pool
        if pool is None or (self._admin and request.target in ADMIN_TARGETS):
            self._enqueue_response(conn, request, self._respond(request))
            return
        if self._inline_router is not None:
            try:
                inline = self._inline_router(request)
            except Exception as exc:  # noqa: BLE001 - server must not die
                self._record_handler_error(request, exc)
                inline = HttpResponse(500, body=b"internal server error")
            if inline is not None:
                self._finalize_request_metrics(request, inline, 0.0)
                self._enqueue_response(conn, request, inline)
                return
        in_flight = self.metrics.gauge("http_requests_in_flight")
        in_flight.inc()
        enqueued_at = time.perf_counter()
        handler = self._pool_handler
        try:
            completion = pool.submit(
                lambda state, _r=request, _t=enqueued_at: handler(_r, state, _t)
            )
        except (AdmissionQueueFull, PoolStopped) as exc:
            in_flight.dec()
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is None:
                retry_after = REJECT_RETRY_AFTER
            response = busy_response(
                retry_after, b"server overloaded: admission queue full"
            )
            if self._on_shed is not None:
                try:
                    self._on_shed(request)
                except Exception:  # noqa: BLE001 - accounting must not kill I/O
                    pass
            self._finalize_request_metrics(
                request, response, time.perf_counter() - enqueued_at
            )
            self._enqueue_response(conn, request, response)
            return
        conn.busy = True
        conn.pending = (request, enqueued_at)
        self._pool_in_flight += 1
        completion.add_done_callback(
            lambda c, _conn=conn: self._on_completion(_conn, c)
        )

    def _on_completion(self, conn: _Conn, completion) -> None:
        """Worker-thread side of the hand-off: queue and poke the loop."""
        self._done.append((conn, completion))
        self._wake()

    def _drain_completions(self) -> None:
        while True:
            try:
                conn, completion = self._done.popleft()
            except IndexError:
                return
            self._pool_in_flight -= 1
            request, enqueued_at = conn.pending if conn.pending else (None, 0.0)
            conn.pending = None
            try:
                response = completion.result(0)
            except HttpError as exc:
                response = HttpResponse(exc.status, body=str(exc).encode())
            except PoolStopped:
                response = busy_response(
                    REJECT_RETRY_AFTER, b"server is draining", close=True
                )
            except Exception as exc:  # noqa: BLE001 - server must not die
                if request is not None:
                    self._record_handler_error(request, exc)
                response = HttpResponse(500, body=b"internal server error")
            self.metrics.gauge("http_requests_in_flight").dec()
            if request is not None:
                self._finalize_request_metrics(
                    request, response, time.perf_counter() - enqueued_at
                )
            conn.busy = False
            if conn.closed:
                continue
            if request is None:  # pragma: no cover - defensive
                self._close_conn(conn)
                continue
            self._enqueue_response(conn, request, response)
            if not conn.closed and not conn.busy:
                self._advance(conn)  # a pipelined request may be buffered

    def _enqueue_response(
        self, conn: _Conn, request: HttpRequest, response: HttpResponse
    ) -> None:
        keep = (
            request.keep_alive
            and not self._draining
            and (response.headers.get("Connection") or "").lower() != "close"
        )
        response.headers.set("Connection", "keep-alive" if keep else "close")
        if not keep:
            conn.close_after_flush = True
        if response.stream is not None:
            # head now, body pulled chunk-by-chunk as the socket drains —
            # the client sees first bytes before the producer finishes
            conn.outbuf += response.head_bytes()
            conn.body_iter = iter(response.stream)
            conn.body_trailers = response.trailers
        else:
            conn.outbuf += response.to_bytes()
        self._flush(conn)

    @property
    def open_connections(self) -> int:
        return len(self._conns)


# ----------------------------------------------------------------------
# the measuring half: a selector-based many-connection load client


class LadderResult:
    """Outcome of one :func:`drive_connections` rung."""

    __slots__ = (
        "connections",
        "established",
        "offered",
        "completed",
        "shed",
        "failed",
        "duration_seconds",
        "latencies",
    )

    def __init__(self, connections: int) -> None:
        self.connections = connections
        self.established = 0
        self.offered = 0
        self.completed = 0
        self.shed = 0
        self.failed = 0
        self.duration_seconds = 0.0
        #: completed-request latencies, seconds (unsampled)
        self.latencies: list[float] = []

    @property
    def goodput_rps(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.completed / self.duration_seconds

    def latency_quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[idx]

    def summary(self) -> dict:
        return {
            "connections": self.connections,
            "established": self.established,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "duration_seconds": round(self.duration_seconds, 4),
            "goodput_rps": round(self.goodput_rps, 2),
            "p50_ms": round(self.latency_quantile(0.50) * 1e3, 3),
            "p99_ms": round(self.latency_quantile(0.99) * 1e3, 3),
        }


class _ClientConn:
    __slots__ = (
        "sock",
        "state",  # connecting | idle | sending | awaiting | done
        "inbuf",
        "out",
        "remaining",
        "sent_at",
        "next_due",
        "need",
        "need_status",
        "registered_events",
    )

    def __init__(self, remaining: int) -> None:
        self.sock: socket.socket | None = None
        self.state = "connecting"
        self.inbuf = bytearray()
        self.out = bytearray()
        self.remaining = remaining
        self.sent_at = 0.0
        self.next_due = 0.0
        self.need = -1  # total response bytes once the head is parsed
        self.need_status = 0
        self.registered_events = 0


def drive_connections(
    address: tuple[str, int],
    request_bytes: bytes,
    *,
    connections: int,
    requests_per_connection: int = 1,
    rate: float | None = None,
    connect_burst: int = 512,
    timeout: float = 120.0,
) -> LadderResult:
    """Hold ``connections`` concurrent keep-alive connections from one
    thread and drive ``requests_per_connection`` over each.

    All connections are established *before* the request clock starts —
    the rung measures serving N live connections, not connection churn.
    ``rate`` (requests/second across all connections, round-robin
    schedule) paces an open-ish loop; ``None`` runs closed-loop (each
    connection sends its next request as soon as the previous response
    lands).  A 503 counts as ``shed``; transport errors and non-2xx
    statuses count as ``failed``; a server-closed connection fails its
    remaining quota (no reconnects — the rung holds a fixed population).
    """
    sel = selectors.DefaultSelector()
    conns = [_ClientConn(requests_per_connection) for _ in range(connections)]
    result = LadderResult(connections)
    result.offered = connections * requests_per_connection
    deadline = time.monotonic() + timeout

    def _client_interest(conn: _ClientConn, events: int) -> None:
        if events == conn.registered_events:
            return
        if conn.registered_events and not events:
            sel.unregister(conn.sock)
        elif conn.registered_events:
            sel.modify(conn.sock, events, conn)
        elif events:
            sel.register(conn.sock, events, conn)
        conn.registered_events = events

    def _finish_conn(conn: _ClientConn, *, failed_remaining: bool) -> None:
        if conn.state == "done":
            return
        if failed_remaining:
            pending = conn.remaining + (1 if conn.state in ("sending", "awaiting") else 0)
            result.failed += pending
        conn.state = "done"
        conn.remaining = 0
        if conn.sock is not None:
            _client_interest(conn, 0)
            try:
                conn.sock.close()
            except OSError:
                pass
            conn.sock = None

    # -- phase 1: establish every connection (bounded connect burst) ----
    pending = list(range(connections))
    connecting: set[int] = set()
    established = 0
    resolved = 0
    while resolved < connections and time.monotonic() < deadline:
        while pending and len(connecting) < connect_burst:
            i = pending.pop()
            conn = conns[i]
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn.sock = sock
            rc = sock.connect_ex(address)
            if rc in (0, errno.EINPROGRESS, errno.EWOULDBLOCK):
                connecting.add(i)
                sel.register(sock, selectors.EVENT_WRITE, (i, "connecting"))
                conn.registered_events = selectors.EVENT_WRITE
            else:
                _finish_conn(conn, failed_remaining=True)
                resolved += 1
        if not connecting:
            break
        for key, _mask in sel.select(0.5):
            data = key.data
            if not (isinstance(data, tuple) and data[1] == "connecting"):
                continue  # pragma: no cover - defensive
            i = data[0]
            conn = conns[i]
            connecting.discard(i)
            resolved += 1
            err = conn.sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
            if err != 0:
                _finish_conn(conn, failed_remaining=True)
                continue
            established += 1
            conn.state = "idle"
            sel.modify(conn.sock, selectors.EVENT_READ, conn)
            conn.registered_events = selectors.EVENT_READ
    for i in list(connecting) + pending:  # connect budget exhausted
        _finish_conn(conns[i], failed_remaining=True)
    result.established = established

    # -- phase 2: the measured window ----------------------------------
    start = time.perf_counter()
    base = time.monotonic()
    live = [c for c in conns if c.state == "idle"]
    if rate is not None and rate > 0:
        # round-robin schedule: request j of connection i is due at
        # (i + j*C) / rate — a deterministic even spread, no RNG
        for i, conn in enumerate(live):
            conn.next_due = base + i / rate
    else:
        for conn in live:
            conn.next_due = base

    interval = len(live) / rate if (rate is not None and rate > 0 and live) else 0.0

    def _begin_request(conn: _ClientConn) -> None:
        conn.state = "sending"
        conn.remaining -= 1
        conn.sent_at = time.perf_counter()
        conn.out += request_bytes
        _client_send(conn)

    def _client_send(conn: _ClientConn) -> None:
        while conn.out:
            try:
                sent = conn.sock.send(conn.out)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                _finish_conn(conn, failed_remaining=True)
                return
            if sent <= 0:  # pragma: no cover - defensive
                break
            del conn.out[:sent]
        if conn.out:
            _client_interest(conn, selectors.EVENT_READ | selectors.EVENT_WRITE)
        else:
            if conn.state == "sending":
                conn.state = "awaiting"
            _client_interest(conn, selectors.EVENT_READ)

    def _client_read(conn: _ClientConn) -> None:
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            _finish_conn(conn, failed_remaining=True)
            return
        if not data:
            _finish_conn(conn, failed_remaining=True)
            return
        conn.inbuf += data
        while conn.state == "awaiting":
            if conn.need < 0:
                idx = conn.inbuf.find(HEADER_END)
                if idx < 0:
                    return
                head = bytes(conn.inbuf[:idx])
                status_line, _, header_block = head.partition(b"\r\n")
                parts = status_line.split(b" ", 2)
                try:
                    status = int(parts[1])
                    headers = _parse_headers(header_block)
                    length = declared_body_length(headers)
                except (IndexError, ValueError, HttpError):
                    _finish_conn(conn, failed_remaining=True)
                    return
                conn.need = idx + len(HEADER_END) + length
                conn.need_status = status
            if len(conn.inbuf) < conn.need:
                return
            status = conn.need_status
            del conn.inbuf[: conn.need]
            conn.need = -1
            latency = time.perf_counter() - conn.sent_at
            if 200 <= status < 300:
                result.completed += 1
                result.latencies.append(latency)
            elif status == 503:
                result.shed += 1
            else:
                result.failed += 1
            if conn.remaining <= 0:
                _finish_conn(conn, failed_remaining=False)
                return
            conn.state = "idle"
            if interval:
                conn.next_due += interval
            return

    active = established
    while time.monotonic() < deadline:
        now = time.monotonic()
        active = 0
        due_wait = 0.5
        for conn in live:
            if conn.state == "done":
                continue
            active += 1
            if conn.state == "idle":
                if now >= conn.next_due:
                    _begin_request(conn)
                else:
                    due_wait = min(due_wait, conn.next_due - now)
        if active == 0:
            break
        for key, mask in sel.select(min(due_wait, 0.5)):
            conn = key.data
            if isinstance(conn, tuple):  # pragma: no cover - defensive
                continue
            if conn.state == "done":
                continue
            if mask & selectors.EVENT_WRITE:
                _client_send(conn)
            if mask & selectors.EVENT_READ and conn.state != "done":
                _client_read(conn)
    result.duration_seconds = time.perf_counter() - start
    for conn in live:  # timeout: whatever is unfinished failed
        _finish_conn(conn, failed_remaining=True)
    sel.close()
    return result
