"""SOAP with Attachments: the third way the paper mentions but skips.

§1 and §6 (footnote 1): "alternatively the data in the base64 format is
pushed to the application side within the same channel of control but as an
attachment via the various attachment facilities (e.g., WS-Attachment)....
We skip the tests of the attachment solution, since it is not widely
adopted by the scientific applications and furthermore in terms of
performance it should be close to SOAP with HTTP data channel solution."

This module implements that skipped solution — a SwA-style multipart
package carrying one SOAP envelope part plus N raw binary parts, referenced
from the message by content id (``cid:`` URLs) — so the harness can *test*
the paper's untested performance assertion (see
:mod:`repro.harness.extension_attachments`).

The package format is MIME-multipart-shaped but minimal: a fixed boundary
protocol with explicit per-part headers (Content-ID, Content-Type,
Content-Length).  Using Content-Length instead of boundary scanning keeps
binary parts free of escaping concerns, like MTOM's XOP packaging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.transport.base import TransportError

_BOUNDARY = b"--repro-swa-part\r\n"
_HEADER_END = b"\r\n\r\n"
_PACKAGE_END = b"--repro-swa-end--\r\n"

#: Content type announcing a multipart package on a binding.
SWA_CONTENT_TYPE = "multipart/related"


class AttachmentError(TransportError):
    """Malformed multipart package."""


@dataclass
class Attachment:
    """One binary part of a package."""

    content_id: str
    data: bytes
    content_type: str = "application/octet-stream"

    @property
    def href(self) -> str:
        """The ``cid:`` reference to place in the SOAP message."""
        return f"cid:{self.content_id}"


@dataclass
class SwaPackage:
    """A SOAP envelope payload plus its attachments."""

    envelope_payload: bytes
    envelope_content_type: str
    attachments: list[Attachment] = field(default_factory=list)

    def attachment(self, href_or_id: str) -> Attachment:
        """Look up a part by ``cid:...`` href or bare content id."""
        content_id = href_or_id[4:] if href_or_id.startswith("cid:") else href_or_id
        for part in self.attachments:
            if part.content_id == content_id:
                return part
        raise AttachmentError(f"no attachment with content id {content_id!r}")

    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the whole package."""
        chunks: list[bytes] = []
        chunks.append(_BOUNDARY)
        chunks.append(
            f"Content-ID: <soap-envelope>\r\n"
            f"Content-Type: {self.envelope_content_type}\r\n"
            f"Content-Length: {len(self.envelope_payload)}".encode("ascii")
        )
        chunks.append(_HEADER_END)
        chunks.append(self.envelope_payload)
        chunks.append(b"\r\n")
        for part in self.attachments:
            if "<" in part.content_id or ">" in part.content_id or "\r" in part.content_id:
                raise AttachmentError(f"illegal content id {part.content_id!r}")
            chunks.append(_BOUNDARY)
            chunks.append(
                f"Content-ID: <{part.content_id}>\r\n"
                f"Content-Type: {part.content_type}\r\n"
                f"Content-Length: {len(part.data)}".encode("ascii")
            )
            chunks.append(_HEADER_END)
            chunks.append(part.data)
            chunks.append(b"\r\n")
        chunks.append(_PACKAGE_END)
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SwaPackage":
        """Parse a package; the first part must be the SOAP envelope."""
        pos = 0
        parts: list[tuple[str, str, bytes]] = []
        view = memoryview(blob)
        while True:
            if blob.startswith(_PACKAGE_END, pos):
                break
            if not blob.startswith(_BOUNDARY, pos):
                raise AttachmentError(f"expected part boundary at offset {pos}")
            pos += len(_BOUNDARY)
            header_end = blob.find(_HEADER_END, pos)
            if header_end < 0:
                raise AttachmentError("unterminated part headers")
            headers = _parse_part_headers(blob[pos:header_end])
            pos = header_end + len(_HEADER_END)
            try:
                length = int(headers["content-length"])
            except (KeyError, ValueError):
                raise AttachmentError("part lacks a valid Content-Length") from None
            if pos + length + 2 > len(blob):
                raise AttachmentError("truncated part payload")
            payload = bytes(view[pos : pos + length])
            pos += length
            if blob[pos : pos + 2] != b"\r\n":
                raise AttachmentError("part payload not terminated by CRLF")
            pos += 2
            content_id = headers.get("content-id", "").strip("<>")
            parts.append((content_id, headers.get("content-type", ""), payload))
        if not parts:
            raise AttachmentError("package has no parts")
        first_id, first_type, first_payload = parts[0]
        if first_id != "soap-envelope":
            raise AttachmentError("first part must be the SOAP envelope")
        return cls(
            envelope_payload=first_payload,
            envelope_content_type=first_type,
            attachments=[
                Attachment(content_id, payload, content_type)
                for content_id, content_type, payload in parts[1:]
            ],
        )


def _parse_part_headers(raw: bytes) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in raw.split(b"\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(b":")
        if not sep:
            raise AttachmentError(f"malformed part header {line[:40]!r}")
        headers[name.decode("latin-1").strip().lower()] = value.decode("latin-1").strip()
    return headers
