"""Channel and listener abstractions.

A :class:`Channel` is a reliable, ordered duplex byte stream — the least
common denominator of TCP sockets and in-memory pipes.  Everything above
(HTTP, the TCP SOAP binding, GridFTP data streams) is written against this
protocol, which is what lets the whole stack run identically over real
sockets, in-process pipes, or instrumented/simulated links.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


class TransportError(Exception):
    """Base class for transport-layer failures."""


class TransportClosed(TransportError):
    """The peer closed the channel (or it was closed locally)."""


@runtime_checkable
class Channel(Protocol):
    """A reliable duplex byte stream."""

    def send_all(self, data: bytes) -> None:
        """Send every byte of ``data`` (blocking)."""
        ...

    def recv(self, max_bytes: int = 65536) -> bytes:
        """Receive up to ``max_bytes``; empty bytes means orderly EOF."""
        ...

    def close(self) -> None:
        """Close both directions; idempotent."""
        ...


@runtime_checkable
class Listener(Protocol):
    """Accepts inbound channel connections."""

    def accept(self) -> Channel:
        """Block until a peer connects; returns the server-side channel."""
        ...

    def close(self) -> None: ...


def recv_exactly(channel: Channel, nbytes: int) -> bytes:
    """Receive exactly ``nbytes`` from a channel or raise TransportClosed.

    The workhorse of every framed protocol in this project.
    """
    if nbytes == 0:
        return b""
    chunks: list[bytes] = []
    remaining = nbytes
    while remaining > 0:
        chunk = channel.recv(remaining)
        if not chunk:
            raise TransportClosed(
                f"peer closed mid-message ({nbytes - remaining}/{nbytes} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class BufferedChannel:
    """A channel wrapper with an internal read buffer.

    Lets protocols that mix delimiter-framed sections with length-framed
    bodies (HTTP) read in large chunks without losing bytes read past a
    delimiter.  Writing passes straight through.
    """

    def __init__(self, channel: Channel) -> None:
        self._channel = channel
        self._buf = bytearray()

    # -- write side --------------------------------------------------

    def send_all(self, data: bytes) -> None:
        self._channel.send_all(data)

    def close(self) -> None:
        self._channel.close()

    # -- read side ---------------------------------------------------

    def recv(self, max_bytes: int = 65536) -> bytes:
        if self._buf:
            out = bytes(self._buf[:max_bytes])
            del self._buf[: len(out)]
            return out
        return self._channel.recv(max_bytes)

    def recv_exactly(self, nbytes: int) -> bytes:
        return recv_exactly(self, nbytes)

    def unrecv(self, data: bytes) -> None:
        """Push bytes back to the *front* of the read buffer.

        For parsers that must over-read to find a message boundary (the
        chunked-body decoder): whatever followed the boundary is returned
        here and comes back first on the next read.
        """
        if data:
            self._buf[:0] = data

    def recv_until(self, delimiter: bytes, max_bytes: int = 1 << 20) -> bytes:
        """Read until ``delimiter``; returns data *including* it.

        Bytes received past the delimiter stay buffered for later reads.
        """
        search_from = 0
        while True:
            idx = self._buf.find(delimiter, max(0, search_from - len(delimiter) + 1))
            if idx >= 0:
                end = idx + len(delimiter)
                out = bytes(self._buf[:end])
                del self._buf[:end]
                return out
            if len(self._buf) > max_bytes:
                raise TransportError(f"delimiter not found within {max_bytes} bytes")
            search_from = len(self._buf)
            chunk = self._channel.recv(65536)
            if not chunk:
                raise TransportClosed("peer closed before delimiter")
            self._buf.extend(chunk)

    def at_eof_probe(self) -> bool:
        """Non-destructive-ish EOF probe: true when a read returns EOF now.

        Only safe between messages (any buffered bytes mean not-EOF; a
        successful read is kept in the buffer).
        """
        if self._buf:
            return False
        chunk = self._channel.recv(65536)
        if not chunk:
            return True
        self._buf.extend(chunk)
        return False
