"""A from-scratch HTTP/1.1 subset: message codec, client, server, binding.

Implements exactly what the paper's evaluation needs from Apache/libcurl:
request/response framing with ``Content-Length`` bodies, persistent
connections (``Connection: keep-alive``/``close``), status codes, and
``GET``/``POST``/``HEAD``.  No chunked transfer encoding, no TLS, no
proxies — none of which the reproduced experiments exercise.
"""

from repro.transport.http.messages import (
    HttpError,
    HttpRequest,
    HttpResponse,
    read_request,
    read_response,
)
from repro.transport.http.client import HttpClient
from repro.transport.http.server import HttpServer
from repro.transport.http.binding import HttpClientBinding, SOAP_XML_TYPE, SOAP_BXSA_TYPE

__all__ = [
    "HttpClient",
    "HttpClientBinding",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "SOAP_BXSA_TYPE",
    "SOAP_XML_TYPE",
    "read_request",
    "read_response",
]
