"""A from-scratch HTTP/1.1 subset: message codec, client, server, binding.

Implements what the paper's evaluation needs from Apache/libcurl:
request/response framing with ``Content-Length`` or chunked
``Transfer-Encoding`` bodies (including streamed bodies pulled from a
producer — the large-message pipeline), persistent connections
(``Connection: keep-alive``/``close``), status codes, and
``GET``/``POST``/``HEAD``.  No TLS, no proxies — neither of which the
reproduced experiments exercise.
"""

from repro.transport.http.messages import (
    ChunkedDecoder,
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpUnsupportedTransferEncoding,
    body_framing,
    drain_stream,
    read_request,
    read_response,
)
from repro.transport.http.client import HttpClient
from repro.transport.http.server import HttpServer
from repro.transport.http.binding import HttpClientBinding, SOAP_XML_TYPE, SOAP_BXSA_TYPE

__all__ = [
    "ChunkedDecoder",
    "HttpClient",
    "HttpClientBinding",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "HttpUnsupportedTransferEncoding",
    "SOAP_BXSA_TYPE",
    "SOAP_XML_TYPE",
    "body_framing",
    "drain_stream",
    "read_request",
    "read_response",
]
