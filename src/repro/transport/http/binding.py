"""The HTTP SOAP binding: envelopes POSTed over HTTP/1.1.

Client side implements the binding concept's ``send_request`` /
``receive_response`` pair over an :class:`~repro.transport.http.client.HttpClient`;
the server side is an :class:`HttpRequest` handler produced by the SOAP
service host (HTTP servers are request-driven, so the server half of the
binding concept is inverted into a callback there).
"""

from __future__ import annotations

from repro.transport.base import TransportError
from repro.transport.http.client import HttpClient
from repro.transport.http.messages import HttpResponse
from repro.transport.resilience import ServerBusy, parse_retry_after

#: Content types for the two encodings riding HTTP (the XML one matches the
#: SOAP 1.1 convention; the BXSA one is this project's).
SOAP_XML_TYPE = "text/xml"
SOAP_BXSA_TYPE = "application/bxsa"


class HttpClientBinding:
    """Client half of the binding concept over HTTP POST.

    ``idempotent`` marks the SOAP operations sent through this binding as
    safe to replay: it unlocks the HTTP client's reconnect-and-resend
    recovery for the POSTs that carry them (a POST is otherwise never
    retried — see :mod:`repro.transport.http.client`).
    """

    name = "http"

    def __init__(
        self,
        client: HttpClient,
        target: str = "/soap",
        *,
        soap_action: str = "",
        idempotent: bool = False,
    ) -> None:
        self._client = client
        self._target = target
        self._soap_action = soap_action
        self._idempotent = idempotent
        self._pending: HttpResponse | None = None

    def send_request(self, payload: bytes, content_type: str, *, deadline=None) -> int:
        headers = {"Content-Type": content_type, "SOAPAction": f'"{self._soap_action}"'}
        self._pending = self._client.post(
            self._target,
            payload,
            headers=headers,
            idempotent=self._idempotent or None,
            deadline=deadline,
        )
        return len(payload)

    def receive_response(self, *, deadline=None) -> tuple[bytes, str]:
        if self._pending is None:
            raise TransportError("receive_response before send_request")
        response, self._pending = self._pending, None
        content_type = response.headers.get("Content-Type") or SOAP_XML_TYPE
        if response.status == 503:
            # the server shed this request; surface its Retry-After hint
            # so a resilience retry loop can pace itself to the server
            raise ServerBusy(
                f"HTTP 503: {response.body[:200]!r}",
                retry_after=parse_retry_after(response.headers.get("Retry-After")),
            )
        if not response.ok and response.status != 500:
            # 500 carries SOAP faults per the SOAP/HTTP binding; anything
            # else is a transport-level failure.
            raise TransportError(f"HTTP {response.status}: {response.body[:200]!r}")
        return response.body, content_type.split(";")[0].strip()

    def close(self) -> None:
        self._client.close()
