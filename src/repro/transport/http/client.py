"""Minimal HTTP/1.1 client with persistent connections.

Plays the role libcurl plays in the paper's separated scheme: the
verification server uses it to pull netCDF files off the data channel, and
the SOAP ``HttpBinding`` uses it to POST envelopes.
"""

from __future__ import annotations

from typing import Callable

from repro.transport.base import BufferedChannel, Channel, TransportError
from repro.transport.http.messages import HttpRequest, HttpResponse, read_response


class HttpClient:
    """One logical connection to one HTTP server.

    ``connect`` is a zero-argument factory returning a fresh
    :class:`~repro.transport.base.Channel`; the client reconnects lazily
    when the server closed the previous connection.
    """

    def __init__(self, connect: Callable[[], Channel], host: str = "localhost") -> None:
        self._connect = connect
        self._host = host
        self._channel: BufferedChannel | None = None

    # ------------------------------------------------------------------

    def request(
        self,
        method: str,
        target: str,
        *,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        """Send one request, read one response (retrying once on a stale
        persistent connection)."""
        req = HttpRequest(method, target)
        req.headers.set("Host", self._host)
        for name, value in (headers or {}).items():
            req.headers.set(name, value)
        req.body = body

        attempts = 2 if self._channel is not None else 1
        for attempt in range(attempts):
            channel = self._ensure_channel()
            try:
                channel.send_all(req.to_bytes())
                response = read_response(channel)
                break
            except TransportError:
                self._drop_channel()
                if attempt == attempts - 1:
                    raise
        else:  # pragma: no cover - loop always breaks or raises
            raise TransportError("unreachable")

        if (response.headers.get("Connection") or "").lower() == "close":
            self._drop_channel()
        return response

    def get(self, target: str, **kwargs) -> HttpResponse:
        return self.request("GET", target, **kwargs)

    def post(self, target: str, body: bytes, **kwargs) -> HttpResponse:
        return self.request("POST", target, body=body, **kwargs)

    def close(self) -> None:
        self._drop_channel()

    # ------------------------------------------------------------------

    def _ensure_channel(self) -> BufferedChannel:
        if self._channel is None:
            self._channel = BufferedChannel(self._connect())
        return self._channel

    def _drop_channel(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None
