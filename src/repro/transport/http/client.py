"""Minimal HTTP/1.1 client with persistent connections.

Plays the role libcurl plays in the paper's separated scheme: the
verification server uses it to pull netCDF files off the data channel, and
the SOAP ``HttpBinding`` uses it to POST envelopes.

Failure semantics (the part the seed got wrong): a request is re-sent
after a :class:`~repro.transport.base.TransportError` only when **both**
hold — the request is idempotent (by method, or explicitly marked per
call), and *no response bytes were consumed* before the failure.  Once any
response byte has been read the server has demonstrably processed the
request, and replaying a non-idempotent POST would apply it twice.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable

from repro import obs
from repro.obs import propagation
from repro.transport.base import BufferedChannel, Channel, TransportError
from repro.transport.http.messages import (
    HttpRequest,
    HttpResponse,
    _Headers,
    read_response,
)
from repro.transport.instrument import ChannelStats, InstrumentedChannel
from repro.transport.resilience import (
    Deadline,
    DeadlineChannel,
    RetryPolicy,
    as_deadline,
    retry_call,
)

#: Methods that are idempotent by definition (RFC 9110 §9.2.2); POST and
#: PATCH requests retry only when the caller marks the call idempotent.
IDEMPOTENT_METHODS = frozenset({"GET", "HEAD", "PUT", "DELETE", "OPTIONS", "TRACE"})

#: Default policy: one reconnect-and-resend, no backoff — the classic
#: stale-persistent-connection recovery, now gated on idempotency.
DEFAULT_HTTP_RETRY = RetryPolicy(max_attempts=2, base_backoff=0.0, jitter=0.0)


class HttpClient:
    """One logical connection to one HTTP server.

    ``connect`` is a zero-argument factory returning a fresh
    :class:`~repro.transport.base.Channel`; the client reconnects lazily
    when the server closed the previous connection.  ``retry`` shapes the
    reconnect-and-resend behaviour for calls that are allowed to retry.
    """

    def __init__(
        self,
        connect: Callable[[], Channel],
        host: str = "localhost",
        *,
        retry: RetryPolicy | None = None,
        retry_rng: random.Random | None = None,
    ) -> None:
        self._connect = connect
        self._host = host
        self._retry = retry if retry is not None else DEFAULT_HTTP_RETRY
        self._rng = retry_rng if retry_rng is not None else random.Random()
        self._channel: BufferedChannel | None = None
        self._shim: DeadlineChannel | None = None
        self._stats: ChannelStats | None = None

    # ------------------------------------------------------------------

    def request(
        self,
        method: str,
        target: str,
        *,
        body: bytes | Iterable[bytes] = b"",
        headers: dict[str, str] | None = None,
        trailers: dict[str, str] | None = None,
        idempotent: bool | None = None,
        deadline: float | Deadline | None = None,
        retry: RetryPolicy | None = None,
        stream_response: bool = False,
    ) -> HttpResponse:
        """Send one request, read one response, under the retry policy.

        ``idempotent`` defaults by method (:data:`IDEMPOTENT_METHODS`);
        pass ``True`` to mark an individually-safe POST (e.g. a SOAP
        operation known to be read-only) as replayable.  ``deadline``
        bounds the whole call — connect, retries and backoff included.

        ``body`` may be an *iterable* of byte pieces: it is sent chunked,
        pulled as the socket accepts bytes, so a producer larger than
        memory never materializes (``trailers`` ride after the last
        chunk).  A partially-consumed body iterable can never be re-sent,
        so such a request stops retrying the moment the first piece is
        pulled, regardless of idempotency.

        With ``stream_response`` the response body is not buffered:
        ``response.stream`` yields pieces off the wire (exhaust it — or
        :func:`~repro.transport.http.messages.drain_stream` it — before
        the next request on this client).
        """
        if idempotent is None:
            idempotent = method.upper() in IDEMPOTENT_METHODS
        policy = retry if retry is not None else self._retry
        dl = as_deadline(deadline)

        with obs.span("http.request", kind="cpu", method=method, target=target) as sp:
            req = HttpRequest(method, target)
            req.headers.set("Host", self._host)
            for name, value in (headers or {}).items():
                req.headers.set(name, value)
            # propagate the trace context (this request span — or the
            # ambient inbound context when nothing local records) so the
            # server's root span joins the caller's trace
            ctx = propagation.outbound_context(sp)
            if ctx is not None:
                propagation.inject_headers(req.headers, ctx)

            consumed = {"response_bytes": False, "body_pulled": False}
            streamed_body = not isinstance(body, (bytes, bytearray, memoryview))
            if streamed_body:
                source = iter(body)

                def pulled() -> Iterable[bytes]:
                    for piece in source:
                        consumed["body_pulled"] = True
                        yield piece

                req.stream = pulled()
                if trailers:
                    req.trailers = _Headers(list(trailers.items()))
                wire = None
                wire_bytes = 0
            else:
                req.body = bytes(body)
                wire = req.to_bytes()
                wire_bytes = len(wire)
            sp.set("bytes", wire_bytes)

            def attempt(_n: int) -> HttpResponse:
                channel = self._ensure_channel()
                assert self._shim is not None and self._stats is not None
                self._shim.deadline = dl
                try:
                    if wire is not None:
                        channel.send_all(wire)
                    else:
                        for piece in req.iter_wire():
                            channel.send_all(piece)
                    mark = self._stats.bytes_received
                    try:
                        return read_response(channel, stream_body=stream_response)
                    except TransportError:
                        if self._stats.bytes_received > mark:
                            consumed["response_bytes"] = True
                        raise
                except TransportError:
                    self._drop_channel()
                    raise
                finally:
                    if self._shim is not None and not stream_response:
                        self._shim.deadline = None

            def may_retry(_exc: BaseException, _attempt: int) -> bool:
                return (
                    idempotent
                    and not consumed["response_bytes"]
                    and not consumed["body_pulled"]
                )

            response = retry_call(
                attempt, policy, deadline=dl, may_retry=may_retry, rng=self._rng
            )
            sp.set("status", response.status)

        if (response.headers.get("Connection") or "").lower() == "close":
            if response.stream is not None:
                # let the caller read the streamed body off this channel
                # first; the next request reconnects
                response.stream = self._closing_stream(response)
            else:
                self._drop_channel()
        return response

    def _closing_stream(self, response: HttpResponse):
        inner = response.stream
        try:
            for piece in inner:
                yield piece
        finally:
            self._drop_channel()

    def get(self, target: str, **kwargs) -> HttpResponse:
        return self.request("GET", target, **kwargs)

    def post(self, target: str, body: bytes, **kwargs) -> HttpResponse:
        return self.request("POST", target, body=body, **kwargs)

    def close(self) -> None:
        self._drop_channel()

    # ------------------------------------------------------------------

    def _ensure_channel(self) -> BufferedChannel:
        if self._channel is None:
            instrumented = InstrumentedChannel(self._connect())
            self._stats = instrumented.stats
            self._shim = DeadlineChannel(instrumented)
            self._channel = BufferedChannel(self._shim)
        return self._channel

    def _drop_channel(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None
            self._shim = None
            self._stats = None
