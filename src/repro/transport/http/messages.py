"""HTTP/1.1 message framing: parse and serialize requests/responses.

Headers are treated case-insensitively and stored with their original
casing.  Bodies are delimited by ``Content-Length`` or by chunked
``Transfer-Encoding`` (:func:`body_framing` decides which); any other
transfer coding is answered ``501 Not Implemented``
(:class:`HttpUnsupportedTransferEncoding`).  A message without either has
an empty body, except a response to a connection that will close, which
may be length-by-EOF.

Chunked framing — both directions — lives *only* here
(``tools/lint.py`` pins that): :class:`ChunkedDecoder` is the single
incremental parser, :func:`encode_chunk`/:func:`last_chunk` the single
serializer.  A message whose ``stream`` attribute is set serializes as a
chunked body pulled lazily from that iterable (:meth:`HttpRequest.iter_wire`),
which is what lets a server start writing a response before the body is
fully produced — the transport half of the streaming pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.transport.base import BufferedChannel, TransportClosed, TransportError

CRLF = b"\r\n"
HEADER_END = b"\r\n\r\n"

#: Reason phrases for the statuses this stack emits.
REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


def busy_response(retry_after: float, body: bytes, *, close: bool = False) -> "HttpResponse":
    """A 503 load-shed response carrying a ``Retry-After`` hint in seconds.

    The hint is emitted in decimal-seconds form (this stack's clients parse
    fractions; integer values render without a point, staying RFC-shaped
    for everyone else).  ``close=True`` additionally marks the connection
    for teardown — the shape the connection-cap rejection path needs.
    """
    response = HttpResponse(503, body=body)
    response.headers.set("Retry-After", format(retry_after, "g"))
    if close:
        response.headers.set("Connection", "close")
    return response


class HttpError(TransportError):
    """Malformed HTTP traffic.

    ``status`` is the code a server should answer with before tearing the
    connection down (the body boundary is unknown after a framing error,
    so the connection can never be reused).
    """

    status = 400


class HttpUnsupportedTransferEncoding(HttpError):
    """A transfer coding this stack does not implement.

    Only a sole, final ``chunked`` is supported; anything else — ``gzip``,
    a chained ``gzip, chunked``, an unknown token — is answered ``501 Not
    Implemented`` per RFC 9112 §6.1 rather than killing the connection
    with a bare reset.
    """

    status = 501


class _Headers:
    """Ordered, case-insensitive header multimap (single-valued in practice)."""

    def __init__(self, items: list[tuple[str, str]] | None = None) -> None:
        self._items: list[tuple[str, str]] = list(items or [])

    def get(self, name: str, default: str | None = None) -> str | None:
        lname = name.lower()
        for key, value in self._items:
            if key.lower() == lname:
                return value
        return default

    def get_all(self, name: str) -> list[str]:
        """Every value carried under ``name`` (a repeated header keeps all)."""
        lname = name.lower()
        return [value for key, value in self._items if key.lower() == lname]

    def set(self, name: str, value: str) -> None:
        lname = name.lower()
        for i, (key, _v) in enumerate(self._items):
            if key.lower() == lname:
                self._items[i] = (name, value)
                return
        self._items.append((name, value))

    def items(self):
        return list(self._items)

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Headers({self._items!r})"


class _Message:
    """Serialization shared by requests and responses.

    A message carries its body one of two ways:

    * ``body`` — fully buffered bytes, framed by ``Content-Length``;
    * ``stream`` — an iterable of byte pieces, framed chunked.  Set by a
      producer that cannot (or will not) buffer — the sink-driven BXSA
      writer, a streaming handler — or by the streaming readers, where it
      yields decoded body pieces straight off the channel.

    ``trailers``, when set on a streamed message, are written after the
    last chunk; the streaming readers fill the same attribute with the
    trailer section they parsed.
    """

    def _head_lines(self) -> list[bytes]:  # pragma: no cover - overridden
        raise NotImplementedError

    def head_bytes(self) -> bytes:
        """Start line + headers + blank line, with body framing decided.

        Sets ``Transfer-Encoding: chunked`` (and drops any stale
        ``Content-Length``) when the body is a stream, ``Content-Length``
        otherwise — the serializer never emits the smuggling combination
        it rejects on parse.
        """
        if self.stream is not None:
            self.headers._items = [
                (k, v) for k, v in self.headers._items
                if k.lower() != "content-length"
            ]
            self.headers.set("Transfer-Encoding", "chunked")
        else:
            self.headers.set("Content-Length", str(len(self.body)))
        lines = self._head_lines()
        lines += [f"{k}: {v}".encode("latin-1") for k, v in self.headers.items()]
        return CRLF.join(lines) + HEADER_END

    def iter_wire(self) -> Iterator[bytes]:
        """The message as wire pieces, pulling a streamed body lazily.

        The head is yielded first, so a consumer writing piece-by-piece
        gets first-byte transmission before the body producer has run —
        the whole point of the streamed form.  One-shot when ``stream``
        is set (the iterable is consumed).
        """
        yield self.head_bytes()
        if self.stream is None:
            if self.body:
                yield self.body
            return
        for piece in self.stream:
            if len(piece):
                # size line, payload, CRLF as separate pieces: never
                # concatenate a payload-sized buffer just to frame it —
                # for large streamed bodies that copy IS the peak memory
                yield (b"%x" % len(piece)) + CRLF
                yield piece
                yield CRLF
        yield last_chunk(self.trailers)

    def to_bytes(self) -> bytes:
        """The full message as one byte string (consumes a streamed body)."""
        return b"".join(self.iter_wire())


@dataclass
class HttpRequest(_Message):
    """An HTTP request; body either buffered or streamed (see :class:`_Message`)."""

    method: str
    target: str
    headers: _Headers = field(default_factory=_Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"
    stream: Iterable[bytes] | None = None
    trailers: _Headers | None = None

    def _head_lines(self) -> list[bytes]:
        return [f"{self.method} {self.target} {self.version}".encode("ascii")]

    @property
    def keep_alive(self) -> bool:
        conn = (self.headers.get("Connection") or "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"


@dataclass
class HttpResponse(_Message):
    """An HTTP response; body either buffered or streamed (see :class:`_Message`)."""

    status: int
    headers: _Headers = field(default_factory=_Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"
    reason: str = ""
    stream: Iterable[bytes] | None = None
    trailers: _Headers | None = None

    def _head_lines(self) -> list[bytes]:
        reason = self.reason or REASONS.get(self.status, "Unknown")
        return [f"{self.version} {self.status} {reason}".encode("ascii")]

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def drain_stream(message: HttpRequest | HttpResponse) -> None:
    """Exhaust a message's streamed body, discarding the pieces.

    Framing hygiene: a reader that hands out a body stream leaves the
    underlying channel positioned mid-message until the stream is
    consumed.  Servers call this after answering (the handler may not
    have read the whole request body); clients before reusing a
    connection whose response stream they abandoned.
    """
    if message.stream is not None:
        for _ in message.stream:
            pass


def _parse_headers(block: bytes) -> _Headers:
    headers = _Headers()
    for raw_line in block.split(CRLF):
        if not raw_line:
            continue
        if raw_line[0:1] in (b" ", b"\t"):
            raise HttpError("obsolete header folding is not supported")
        name, sep, value = raw_line.partition(b":")
        if not sep or not name:
            raise HttpError(f"malformed header line {raw_line[:60]!r}")
        headers._items.append(
            (str(name, "latin-1").strip(), str(value, "latin-1").strip())
        )
    return headers


def body_framing(headers: _Headers) -> tuple[str, int]:
    """How the headers delimit the body: ``("chunked", 0)`` or ``("length", n)``.

    Rejections are deliberate, not gaps:

    * ``Transfer-Encoding`` together with ``Content-Length`` is the
      classic request-smuggling shape (two parsers frame the stream
      differently) — 400;
    * any coding chain other than a sole ``chunked`` — 501
      (:class:`HttpUnsupportedTransferEncoding`), because silently
      treating an encoded body as identity bytes corrupts it;
    * repeated ``Content-Length`` with differing values — 400.  Repeats
      that agree are collapsed (RFC 9110 §8.6 allows recombining them).
    """
    te_values = headers.get_all("Transfer-Encoding")
    if te_values:
        if headers.get_all("Content-Length"):
            raise HttpError(
                "Transfer-Encoding with Content-Length is rejected "
                "(request-smuggling shape)"
            )
        codings = [
            c.strip().lower()
            for value in te_values
            for c in value.split(",")
            if c.strip()
        ]
        if codings == ["chunked"]:
            return "chunked", 0
        raise HttpUnsupportedTransferEncoding(
            f"unsupported Transfer-Encoding {', '.join(codings)!r} "
            "(only a single chunked coding is implemented)"
        )
    raw_values = headers.get_all("Content-Length")
    if not raw_values:
        return "length", 0
    distinct = {value.strip() for value in raw_values}
    if len(distinct) > 1:
        raise HttpError(
            f"conflicting Content-Length headers {sorted(distinct)!r}"
        )
    raw_length = distinct.pop()
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpError(f"bad Content-Length {raw_length!r}") from None
    if length < 0:
        raise HttpError(f"negative Content-Length {length}")
    return "length", length


def declared_body_length(headers: _Headers) -> int:
    """The fixed body length the headers declare (0 when absent).

    The length-framed subset of :func:`body_framing`, kept for callers
    that cannot handle a chunked body (the ladder load client parses
    responses from this stack's servers, which are length-framed); a
    chunked message raises here.
    """
    mode, length = body_framing(headers)
    if mode == "chunked":
        raise HttpError("chunked body has no declared length")
    return length


# ----------------------------------------------------------------------
# chunked transfer coding — the only encoder/decoder in the codebase


#: Ceiling on one chunk-size line (hex size + optional extensions).
MAX_CHUNK_LINE = 256

#: Ceiling on the trailer section of a chunked body.
MAX_TRAILER_BYTES = 16 * 1024


def encode_chunk(data: bytes | bytearray | memoryview) -> bytes:
    """One data chunk: hex size, CRLF, payload, CRLF.

    Empty input returns ``b""`` — a zero-size chunk on the wire would
    terminate the body, so producers may pass through empty pieces
    without guarding.
    """
    n = len(data)
    if n == 0:
        return b""
    return (b"%x" % n) + CRLF + bytes(data) + CRLF


def last_chunk(trailers: _Headers | None = None) -> bytes:
    """The terminal zero chunk, carrying the trailer section if any."""
    out = b"0" + CRLF
    if trailers is not None:
        for name, value in trailers.items():
            out += f"{name}: {value}".encode("latin-1") + CRLF
    return out + CRLF


class ChunkedDecoder:
    """Incremental chunked-coding parser (RFC 9112 §7.1): push bytes in,
    get body pieces out.

    Feeds need not align with any chunk boundary — a size line, a
    payload, the trailer section may all arrive split across feeds
    (exactly the shape the event-driven server's read loop produces).
    Once :attr:`done` is set, bytes past the end of the body are *not*
    consumed: they belong to the next pipelined message and are handed
    back via :attr:`residue`.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._state = "size"  # size | data | data-end | trailers | done
        self._remaining = 0
        self._trailer_block = bytearray()
        #: Parsed trailer section, once :attr:`done` (None before).
        self.trailers: _Headers | None = None
        #: Bytes fed past the end of the body (valid once :attr:`done`).
        self.residue = b""
        self.done = False

    def feed(self, data: bytes | bytearray | memoryview) -> list[bytes]:
        """Consume ``data``, returning the body pieces it completed."""
        if self.done:
            raise HttpError("chunked body already complete")
        buf = self._buf
        buf += data
        pieces: list[bytes] = []
        pos = 0
        n = len(buf)
        while not self.done:
            if self._state == "data":
                take = min(self._remaining, n - pos)
                if take == 0:
                    break
                pieces.append(bytes(buf[pos : pos + take]))
                pos += take
                self._remaining -= take
                if self._remaining == 0:
                    self._state = "data-end"
                continue
            if self._state == "data-end":
                if n - pos < 2:
                    break
                if buf[pos : pos + 2] != CRLF:
                    raise HttpError("chunk data not terminated by CRLF")
                pos += 2
                self._state = "size"
                continue
            if self._state == "size":
                idx = buf.find(CRLF, pos)
                if idx < 0:
                    if n - pos > MAX_CHUNK_LINE:
                        raise HttpError("chunk-size line exceeds limit")
                    break
                line = bytes(buf[pos:idx])
                pos = idx + 2
                size_field = line.split(b";", 1)[0].strip()
                try:
                    size = int(size_field, 16)
                except ValueError:
                    raise HttpError(
                        f"bad chunk size {size_field[:32]!r}"
                    ) from None
                if size == 0:
                    self._state = "trailers"
                else:
                    self._remaining = size
                    self._state = "data"
                continue
            # trailers: field lines up to an empty line
            idx = buf.find(CRLF, pos)
            if idx < 0:
                if n - pos + len(self._trailer_block) > MAX_TRAILER_BYTES:
                    raise HttpError("chunked trailer section exceeds limit")
                break
            line = bytes(buf[pos:idx])
            pos = idx + 2
            if line:
                if len(self._trailer_block) + len(line) > MAX_TRAILER_BYTES:
                    raise HttpError("chunked trailer section exceeds limit")
                self._trailer_block += line + CRLF
                continue
            self.trailers = _parse_headers(bytes(self._trailer_block))
            self.residue = bytes(buf[pos:])
            self._buf = bytearray()
            self.done = True
            return pieces
        del buf[:pos]
        return pieces


def read_chunked_body(channel: BufferedChannel) -> tuple[bytes, _Headers]:
    """Read one whole chunked body off a channel: (body, trailers).

    Bytes past the body (a pipelined next message) are pushed back into
    the channel's buffer.
    """
    decoder = ChunkedDecoder()
    pieces: list[bytes] = []
    while not decoder.done:
        data = channel.recv(65536)
        if not data:
            raise TransportClosed("peer closed mid-chunked-body")
        pieces += decoder.feed(data)
    if decoder.residue:
        channel.unrecv(decoder.residue)
    return b"".join(pieces), decoder.trailers


def _iter_body(
    channel: BufferedChannel, mode: str, length: int, owner: HttpRequest | HttpResponse
) -> Iterator[bytes]:
    """Yield body pieces straight off the channel (the streaming read path).

    Exactly one whole body is consumed; for a chunked body the parsed
    trailers land on ``owner.trailers`` after the last piece.  The
    generator owns the channel until exhausted — see :func:`drain_stream`.
    """
    if mode == "chunked":
        decoder = ChunkedDecoder()
        while not decoder.done:
            data = channel.recv(65536)
            if not data:
                raise TransportClosed("peer closed mid-chunked-body")
            for piece in decoder.feed(data):
                yield piece
        if decoder.residue:
            channel.unrecv(decoder.residue)
        owner.trailers = decoder.trailers
        return
    remaining = length
    while remaining > 0:
        data = channel.recv(min(remaining, 65536))
        if not data:
            raise TransportClosed(
                f"peer closed mid-body ({length - remaining}/{length} bytes received)"
            )
        remaining -= len(data)
        yield data


def _read_body(channel: BufferedChannel, headers: _Headers) -> tuple[bytes, _Headers | None]:
    mode, length = body_framing(headers)
    if mode == "chunked":
        return read_chunked_body(channel)
    return channel.recv_exactly(length), None


def parse_request_head(head: bytes) -> tuple[str, str, str, _Headers]:
    """Parse a request head (no trailing ``HEADER_END``) into its parts.

    Shared by the blocking :func:`read_request` and the incremental
    framer in :mod:`repro.transport.aio` so both servers accept exactly
    the same request grammar.  Returns ``(method, target, version,
    headers)``.
    """
    start_line, _, header_block = head.partition(CRLF)
    parts = start_line.split(b" ")
    if len(parts) != 3:
        raise HttpError(f"malformed request line {start_line[:60]!r}")
    method, target, version = (str(p, "latin-1") for p in parts)
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(f"unsupported HTTP version {version!r}")
    return method, target, version, _parse_headers(header_block)


def read_request(channel: BufferedChannel, *, stream_body: bool = False) -> HttpRequest:
    """Parse one request off a buffered channel.

    With ``stream_body`` a non-empty body is *not* buffered: the request
    comes back with ``stream`` set to a generator yielding body pieces
    off the channel as they arrive (chunked or length-framed alike) —
    the consumer must exhaust it (or :func:`drain_stream` it) before the
    channel is used again.
    """
    head = channel.recv_until(HEADER_END)
    method, target, version, headers = parse_request_head(head[: -len(HEADER_END)])
    if stream_body:
        mode, length = body_framing(headers)
        request = HttpRequest(method, target, headers, b"", version)
        if mode == "chunked" or length > 0:
            request.stream = _iter_body(channel, mode, length, request)
        return request
    body, trailers = _read_body(channel, headers)
    request = HttpRequest(method, target, headers, body, version)
    request.trailers = trailers
    return request


def read_response(channel: BufferedChannel, *, stream_body: bool = False) -> HttpResponse:
    """Parse one response off a buffered channel (``stream_body`` as above)."""
    head = channel.recv_until(HEADER_END)
    start_line, _, header_block = head[: -len(HEADER_END)].partition(CRLF)
    parts = start_line.split(b" ", 2)
    if len(parts) < 2:
        raise HttpError(f"malformed status line {start_line[:60]!r}")
    version = str(parts[0], "latin-1")
    try:
        status = int(parts[1])
    except ValueError:
        raise HttpError(f"bad status code {parts[1]!r}") from None
    reason = str(parts[2], "latin-1") if len(parts) == 3 else ""
    headers = _parse_headers(header_block)
    if stream_body:
        mode, length = body_framing(headers)
        response = HttpResponse(status, headers, b"", version, reason)
        if mode == "chunked" or length > 0:
            response.stream = _iter_body(channel, mode, length, response)
        return response
    body, trailers = _read_body(channel, headers)
    response = HttpResponse(status, headers, body, version, reason)
    response.trailers = trailers
    return response
