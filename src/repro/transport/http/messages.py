"""HTTP/1.1 message framing: parse and serialize requests/responses.

Headers are treated case-insensitively and stored with their original
casing.  Bodies are delimited by ``Content-Length`` only (the subset the
evaluation needs); a request/response without it has an empty body, except
a response to a connection that will close, which may be length-by-EOF.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.transport.base import BufferedChannel, TransportError

CRLF = b"\r\n"
HEADER_END = b"\r\n\r\n"

#: Reason phrases for the statuses this stack emits.
REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def busy_response(retry_after: float, body: bytes, *, close: bool = False) -> "HttpResponse":
    """A 503 load-shed response carrying a ``Retry-After`` hint in seconds.

    The hint is emitted in decimal-seconds form (this stack's clients parse
    fractions; integer values render without a point, staying RFC-shaped
    for everyone else).  ``close=True`` additionally marks the connection
    for teardown — the shape the connection-cap rejection path needs.
    """
    response = HttpResponse(503, body=body)
    response.headers.set("Retry-After", format(retry_after, "g"))
    if close:
        response.headers.set("Connection", "close")
    return response


class HttpError(TransportError):
    """Malformed HTTP traffic."""


class _Headers:
    """Ordered, case-insensitive header multimap (single-valued in practice)."""

    def __init__(self, items: list[tuple[str, str]] | None = None) -> None:
        self._items: list[tuple[str, str]] = list(items or [])

    def get(self, name: str, default: str | None = None) -> str | None:
        lname = name.lower()
        for key, value in self._items:
            if key.lower() == lname:
                return value
        return default

    def get_all(self, name: str) -> list[str]:
        """Every value carried under ``name`` (a repeated header keeps all)."""
        lname = name.lower()
        return [value for key, value in self._items if key.lower() == lname]

    def set(self, name: str, value: str) -> None:
        lname = name.lower()
        for i, (key, _v) in enumerate(self._items):
            if key.lower() == lname:
                self._items[i] = (name, value)
                return
        self._items.append((name, value))

    def items(self):
        return list(self._items)

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Headers({self._items!r})"


@dataclass
class HttpRequest:
    """An HTTP request with a fully-buffered body."""

    method: str
    target: str
    headers: _Headers = field(default_factory=_Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def to_bytes(self) -> bytes:
        self.headers.set("Content-Length", str(len(self.body)))
        lines = [f"{self.method} {self.target} {self.version}".encode("ascii")]
        lines += [f"{k}: {v}".encode("latin-1") for k, v in self.headers.items()]
        return CRLF.join(lines) + HEADER_END + self.body

    @property
    def keep_alive(self) -> bool:
        conn = (self.headers.get("Connection") or "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"


@dataclass
class HttpResponse:
    """An HTTP response with a fully-buffered body."""

    status: int
    headers: _Headers = field(default_factory=_Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"
    reason: str = ""

    def to_bytes(self) -> bytes:
        reason = self.reason or REASONS.get(self.status, "Unknown")
        self.headers.set("Content-Length", str(len(self.body)))
        lines = [f"{self.version} {self.status} {reason}".encode("ascii")]
        lines += [f"{k}: {v}".encode("latin-1") for k, v in self.headers.items()]
        return CRLF.join(lines) + HEADER_END + self.body

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def _parse_headers(block: bytes) -> _Headers:
    headers = _Headers()
    for raw_line in block.split(CRLF):
        if not raw_line:
            continue
        if raw_line[0:1] in (b" ", b"\t"):
            raise HttpError("obsolete header folding is not supported")
        name, sep, value = raw_line.partition(b":")
        if not sep or not name:
            raise HttpError(f"malformed header line {raw_line[:60]!r}")
        headers._items.append(
            (str(name, "latin-1").strip(), str(value, "latin-1").strip())
        )
    return headers


def declared_body_length(headers: _Headers) -> int:
    """The body length the headers declare (0 when absent).

    A repeated ``Content-Length`` with *differing* values is the classic
    request-smuggling shape — two parsers picking different values frame
    the stream differently — so it is rejected outright.  Repeats that
    agree are collapsed (RFC 9110 §8.6 allows recombining them).
    """
    if (headers.get("Transfer-Encoding") or "").lower() == "chunked":
        raise HttpError("chunked transfer encoding is not supported")
    raw_values = headers.get_all("Content-Length")
    if not raw_values:
        return 0
    distinct = {value.strip() for value in raw_values}
    if len(distinct) > 1:
        raise HttpError(
            f"conflicting Content-Length headers {sorted(distinct)!r}"
        )
    raw_length = distinct.pop()
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpError(f"bad Content-Length {raw_length!r}") from None
    if length < 0:
        raise HttpError(f"negative Content-Length {length}")
    return length


def _read_body(channel: BufferedChannel, headers: _Headers) -> bytes:
    return channel.recv_exactly(declared_body_length(headers))


def parse_request_head(head: bytes) -> tuple[str, str, str, _Headers]:
    """Parse a request head (no trailing ``HEADER_END``) into its parts.

    Shared by the blocking :func:`read_request` and the incremental
    framer in :mod:`repro.transport.aio` so both servers accept exactly
    the same request grammar.  Returns ``(method, target, version,
    headers)``.
    """
    start_line, _, header_block = head.partition(CRLF)
    parts = start_line.split(b" ")
    if len(parts) != 3:
        raise HttpError(f"malformed request line {start_line[:60]!r}")
    method, target, version = (str(p, "latin-1") for p in parts)
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(f"unsupported HTTP version {version!r}")
    return method, target, version, _parse_headers(header_block)


def read_request(channel: BufferedChannel) -> HttpRequest:
    """Parse one request off a buffered channel."""
    head = channel.recv_until(HEADER_END)
    method, target, version, headers = parse_request_head(head[: -len(HEADER_END)])
    body = _read_body(channel, headers)
    return HttpRequest(method, target, headers, body, version)


def read_response(channel: BufferedChannel) -> HttpResponse:
    """Parse one response off a buffered channel."""
    head = channel.recv_until(HEADER_END)
    start_line, _, header_block = head[: -len(HEADER_END)].partition(CRLF)
    parts = start_line.split(b" ", 2)
    if len(parts) < 2:
        raise HttpError(f"malformed status line {start_line[:60]!r}")
    version = str(parts[0], "latin-1")
    try:
        status = int(parts[1])
    except ValueError:
        raise HttpError(f"bad status code {parts[1]!r}") from None
    reason = str(parts[2], "latin-1") if len(parts) == 3 else ""
    headers = _parse_headers(header_block)
    body = _read_body(channel, headers)
    return HttpResponse(status, headers, body, version, reason)
