"""Threaded HTTP/1.1 server over any listener, with a live admin surface.

One thread accepts; one thread per connection serves requests until the
client stops keeping the connection alive.  The handler is a plain callable
``HttpRequest -> HttpResponse`` — the SOAP dispatcher, the netCDF file
server and the examples all plug in here.

Every server carries a :class:`~repro.obs.MetricsRegistry` (pass one in to
share it with the application handler, e.g. the SOAP service hosts) and,
unless ``admin=False``, answers three reserved GET endpoints alongside the
handler:

* ``/metrics`` — the registry in Prometheus text format;
* ``/healthz`` — liveness JSON (status, uptime, in-flight/connection
  gauges);
* ``/varz``    — the full metrics snapshot as JSON plus server info,
  including the most recent handler errors (whose detail is deliberately
  *not* sent to clients — a 500 body says only ``internal server error``).

Concurrency is bounded: at most ``max_connections`` connection threads
exist at once (default :data:`DEFAULT_MAX_CONNECTIONS`); a connection
past the cap is answered ``503`` + ``Retry-After`` from the accept loop
and closed — never a silent drop, never an unbounded thread spawn.

Shutdown drains: ``stop()`` closes the listener, asks connection threads
to finish their in-flight request, force-closes lingering channels after
the drain budget (``drain_timeout``, overridable per ``stop()`` call) and
joins the threads, so a stopped server leaves no request half-written.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Callable

from repro import obs
from repro.obs import propagation
from repro.obs.exposition import render_prometheus, render_varz
from repro.obs.metrics import MetricsRegistry
from repro.transport.base import BufferedChannel, Listener, TransportError
from repro.transport.http.messages import (
    HttpError,
    HttpRequest,
    HttpResponse,
    busy_response,
    drain_stream,
    read_request,
)

#: Reserved admin targets (GET only); everything else goes to the handler.
#: ``/healthz`` is liveness (200 while the process serves at all);
#: ``/readyz`` is readiness (503 when the embedder's readiness probe —
#: e.g. worker-pool admission-queue occupancy — says "stop routing
#: here"), the signal load balancers gate on.
ADMIN_TARGETS = ("/metrics", "/healthz", "/readyz", "/varz")

#: Default ceiling on concurrent connection threads.  The seed spawned one
#: thread per connection without bound — a connection flood grew threads
#: until the interpreter fell over.  Past the cap a new connection gets a
#: clean ``503`` + ``Retry-After`` and is closed, never a silent drop.
DEFAULT_MAX_CONNECTIONS = 256

#: Retry-After hint on capped-out connection rejections, seconds.
REJECT_RETRY_AFTER = 1.0


class HttpAppCore:
    """Request execution, metrics and the admin surface — shared machinery.

    Both HTTP servers (this module's threaded :class:`HttpServer` and the
    event-driven :class:`~repro.transport.aio.AsyncHttpServer`) present
    the same application behaviour: the handler contract, exception→status
    mapping, the ``/metrics``·``/healthz``·``/varz`` surface, and the
    request metric families.  That behaviour lives here so the two
    serving cores cannot drift apart.

    Subclasses provide ``self._name``, ``self.metrics``, ``self._admin``,
    ``self._handler``, ``self._started_at`` and ``self.recent_errors``.
    They may also set ``self._readiness`` — a callable returning
    ``(ready, detail_dict)`` — to drive ``GET /readyz``; without one the
    server is always ready (liveness and readiness coincide).
    """

    _name: str
    metrics: MetricsRegistry
    _admin: bool
    _started_at: float | None
    recent_errors: deque
    #: Optional readiness probe: ``() -> (ready, detail)``.
    _readiness: Callable[[], tuple[bool, dict]] | None = None

    def _respond(self, request: HttpRequest) -> HttpResponse:
        m = self.metrics
        in_flight = m.gauge("http_requests_in_flight")
        in_flight.inc()
        start = time.perf_counter()
        # join the caller's trace when the request carries a valid
        # context; malformed/duplicate headers mean a fresh root, never
        # an error response
        ctx = propagation.extract_headers(request.headers)
        try:
            with obs.span(
                "http.serve",
                kind="logical",
                context=ctx,
                method=request.method,
                target=request.target,
            ) as sp, obs.use_context(ctx):
                if self._admin and request.target in ADMIN_TARGETS:
                    target = self._admin_response
                else:
                    target = self._handler
                try:
                    response = target(request)
                except HttpError as exc:
                    response = HttpResponse(exc.status, body=str(exc).encode())
                except Exception as exc:  # noqa: BLE001 - server must not die
                    # the client gets a generic body: internals (exception
                    # type, message, paths) are server-side information
                    self._record_handler_error(request, exc)
                    response = HttpResponse(500, body=b"internal server error")
                sp.set("status", response.status)
            return response
        finally:
            in_flight.dec()
            self._finalize_request_metrics(
                request, response, time.perf_counter() - start
            )

    def _finalize_request_metrics(
        self, request: HttpRequest, response: HttpResponse, elapsed: float
    ) -> None:
        """Count one answered request into the shared HTTP families."""
        self.metrics.counter(
            "http_requests_total",
            labels={
                "method": request.method,
                "status": f"{response.status // 100}xx",
            },
        ).add()
        self.metrics.histogram(
            "http_request_seconds", labels={"method": request.method}
        ).observe(elapsed)

    def _record_handler_error(self, request: HttpRequest, exc: Exception) -> None:
        self.metrics.counter(
            "http_handler_errors_total", labels={"type": type(exc).__name__}
        ).add()
        detail = {
            "target": request.target,
            "method": request.method,
            "error": type(exc).__name__,
            "detail": str(exc),
        }
        self.recent_errors.append(detail)
        # the detail also lands in the active trace (when one is recording)
        obs.event("http.handler_error", **detail)

    # ------------------------------------------------------------------
    # admin surface

    def _admin_response(self, request: HttpRequest) -> HttpResponse:
        if request.method != "GET":
            return HttpResponse(405, body=b"admin endpoints accept GET only")
        if request.target == "/metrics":
            body = render_prometheus(self.metrics).encode("utf-8")
            response = HttpResponse(200, body=body)
            response.headers.set("Content-Type", "text/plain; version=0.0.4")
            return response
        if request.target == "/healthz":
            payload = {
                "status": "ok",
                "server": self._name,
                "uptime_seconds": self.uptime_seconds,
                "connections_open": self.metrics.gauge("http_connections_open").snapshot(),
                "requests_in_flight": self.metrics.gauge("http_requests_in_flight").snapshot(),
            }
            response = HttpResponse(200, body=json.dumps(payload).encode("utf-8"))
            response.headers.set("Content-Type", "application/json")
            return response
        if request.target == "/readyz":
            ready, detail = True, {}
            if self._readiness is not None:
                try:
                    ready, detail = self._readiness()
                except Exception as exc:  # noqa: BLE001 - a broken probe is "not ready"
                    ready, detail = False, {"probe_error": type(exc).__name__}
            payload = {
                "status": "ready" if ready else "saturated",
                "server": self._name,
                "uptime_seconds": self.uptime_seconds,
            }
            payload.update(detail)
            response = HttpResponse(
                200 if ready else 503,
                body=json.dumps(payload, default=str).encode("utf-8"),
            )
            response.headers.set("Content-Type", "application/json")
            if not ready:
                retry_after = detail.get("retry_after")
                if retry_after is not None:
                    response.headers.set("Retry-After", f"{float(retry_after):.3f}")
            return response
        # /varz
        payload = render_varz(
            self.metrics,
            name=self._name,
            uptime_seconds=self.uptime_seconds,
            recent_errors=list(self.recent_errors),
        )
        response = HttpResponse(200, body=json.dumps(payload, default=str).encode("utf-8"))
        response.headers.set("Content-Type", "application/json")
        return response

    @property
    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at


class HttpServer(HttpAppCore):
    """Serve ``handler`` over every connection accepted from ``listener``."""

    def __init__(
        self,
        listener: Listener,
        handler: Callable[[HttpRequest], HttpResponse],
        *,
        name: str = "http-server",
        metrics: MetricsRegistry | None = None,
        admin: bool = True,
        drain_timeout: float = 5.0,
        max_connections: int | None = DEFAULT_MAX_CONNECTIONS,
        stream_bodies: bool = False,
        readiness: Callable[[], tuple[bool, dict]] | None = None,
    ) -> None:
        self._listener = listener
        self._handler = handler
        self._name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._admin = admin
        self._readiness = readiness
        self._drain_timeout = drain_timeout
        #: With ``stream_bodies`` request bodies are not buffered: the
        #: handler receives ``request.stream`` yielding pieces off the
        #: wire as the client sends them — required to process a message
        #: larger than memory.  The connection thread drains whatever the
        #: handler leaves unread, preserving keep-alive framing.
        self._stream_bodies = stream_bodies
        if max_connections is not None and max_connections < 1:
            raise ValueError("max_connections must be >= 1 (or None for no cap)")
        self._max_connections = max_connections
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._stopped = False
        self._started_at: float | None = None
        # connection bookkeeping: threads are joined on stop(); channels
        # are force-closed if the drain timeout expires first
        self._conn_lock = threading.Lock()
        self._conn_threads: list[threading.Thread] = []
        self._conn_channels: dict[int, BufferedChannel] = {}
        #: Most recent handler failures (server-side detail only).
        self.recent_errors: deque[dict] = deque(maxlen=32)

    # ------------------------------------------------------------------

    def start(self) -> "HttpServer":
        """Start the accept loop in a daemon thread; returns self.

        A server is one-shot: ``stop()`` closes the listener, so a
        stopped server could never accept again and a restart would
        silently reuse stale connection bookkeeping.  Starting after a
        stop raises instead of limping.
        """
        if self._running:
            raise RuntimeError("server already running")
        if self._stopped:
            raise RuntimeError(
                "server cannot be restarted: stop() closed its listener; "
                "create a new HttpServer on a fresh listener instead"
            )
        self._running = True
        self._started_at = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=self._name, daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self, drain_timeout: float | None = None) -> None:
        """Stop accepting, drain connections, join their threads.

        ``drain_timeout`` overrides the constructor's drain budget for
        this stop — embedders (and tests) shutting down under load can
        bound how long they will wait for in-flight requests before the
        lingering channels are force-closed.
        """
        self._running = False
        self._stopped = True
        self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        budget = drain_timeout if drain_timeout is not None else self._drain_timeout
        deadline = time.monotonic() + budget
        with self._conn_lock:
            threads = list(self._conn_threads)
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        # past the drain budget: force-close what is still open so blocked
        # reads fail and their threads exit (daemonic either way, but a
        # clean join keeps tests and embedders deterministic)
        with self._conn_lock:
            lingering = list(self._conn_channels.values())
        for channel in lingering:
            try:
                channel.close()
            except TransportError:  # pragma: no cover - defensive
                pass
        # closed channels fail the blocked reads almost immediately, so a
        # single shared budget suffices — never a per-thread wait, which
        # would make stop() O(connections) under load
        final_deadline = time.monotonic() + 1.0
        for thread in threads:
            if thread.is_alive():
                thread.join(timeout=max(0.0, final_deadline - time.monotonic()))

    def __enter__(self) -> "HttpServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                channel = self._listener.accept()
            except TransportError:
                return  # listener closed
            buffered = BufferedChannel(channel)
            with self._conn_lock:
                # prune finished threads so a long-lived server's list
                # does not grow with every connection it ever served
                self._conn_threads = [t for t in self._conn_threads if t.is_alive()]
                at_cap = (
                    self._max_connections is not None
                    and len(self._conn_channels) >= self._max_connections
                )
                if not at_cap:
                    thread = threading.Thread(
                        target=self._serve_connection,
                        args=(buffered,),
                        name=f"{self._name}-conn",
                        daemon=True,
                    )
                    self._conn_threads.append(thread)
                    self._conn_channels[id(buffered)] = buffered
            if at_cap:
                self._reject_connection(buffered)
                continue
            try:
                thread.start()
            except Exception:  # noqa: BLE001 - thread spawn can fail under
                # resource pressure; the channel must not keep its slot
                with self._conn_lock:
                    self._conn_channels.pop(id(buffered), None)
                    if thread in self._conn_threads:
                        self._conn_threads.remove(thread)
                self.metrics.counter("http_connections_rejected_total").add()
                try:
                    buffered.close()
                except TransportError:
                    pass

    def _reject_connection(self, channel: BufferedChannel) -> None:
        """Turn away a connection past the cap: 503 + Retry-After, close.

        The rejection is written from the accept loop itself — no thread
        is spawned for a connection we will not serve.
        """
        self.metrics.counter("http_connections_rejected_total").add()
        response = busy_response(
            REJECT_RETRY_AFTER,
            b"connection limit reached, retry later",
            close=True,
        )
        try:
            channel.send_all(response.to_bytes())
        except TransportError:
            pass  # the peer is gone; nothing owed to it
        finally:
            try:
                channel.close()
            except TransportError:  # pragma: no cover - defensive
                pass

    def _serve_connection(self, channel: BufferedChannel) -> None:
        m = self.metrics
        open_gauge = m.gauge("http_connections_open")
        open_gauge.inc()
        m.counter("http_connections_total").add()
        try:
            while True:
                try:
                    request = read_request(channel, stream_body=self._stream_bodies)
                except HttpError as exc:
                    # framing the server understands enough to refuse —
                    # an unsupported Transfer-Encoding earns its 501 (and
                    # bad framing its 400) before the connection closes,
                    # instead of a silent reset the client cannot act on
                    response = HttpResponse(exc.status, body=str(exc).encode())
                    response.headers.set("Connection", "close")
                    try:
                        channel.send_all(response.to_bytes())
                    except TransportError:
                        pass
                    return  # body boundary unknown: never reuse
                except TransportError:
                    return  # client went away between requests
                response = self._respond(request)
                keep = request.keep_alive
                response.headers.set("Connection", "keep-alive" if keep else "close")
                try:
                    # piece-by-piece: a streamed response's first bytes go
                    # out before its producer has generated the rest
                    for piece in response.iter_wire():
                        channel.send_all(piece)
                    # a streaming handler may not have read the whole
                    # request body; the rest must leave the channel before
                    # the next request head can be framed
                    drain_stream(request)
                except TransportError:
                    return  # client went away mid-response
                except Exception as exc:  # noqa: BLE001 - a streaming body
                    # producer failing mid-write cannot be turned into an
                    # error status (the head is on the wire); the truncated
                    # chunked body tells the peer the message is bad
                    self._record_handler_error(request, exc)
                    return
                if not keep:
                    return
        finally:
            open_gauge.dec()
            with self._conn_lock:
                self._conn_channels.pop(id(channel), None)
            try:
                channel.close()
            except TransportError:
                pass  # peer already torn down; cleanup is complete

def make_admin_server(
    listener: Listener, metrics: MetricsRegistry, *, name: str = "admin"
) -> HttpServer:
    """A server that answers *only* the admin endpoints.

    For hosts whose traffic does not ride HTTP (the SOAP/TCP service, the
    GridFTP server) but that still want a ``/metrics``·``/healthz``
    sidecar exposing their registry.
    """

    def not_found(_request: HttpRequest) -> HttpResponse:
        return HttpResponse(404, body=b"admin surface only: /metrics /healthz /varz")

    return HttpServer(listener, not_found, name=name, metrics=metrics, admin=True)
