"""Threaded HTTP/1.1 server over any listener.

One thread accepts; one thread per connection serves requests until the
client stops keeping the connection alive.  The handler is a plain callable
``HttpRequest -> HttpResponse`` — the SOAP dispatcher, the netCDF file
server and the examples all plug in here.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.transport.base import BufferedChannel, Listener, TransportError
from repro.transport.http.messages import HttpError, HttpRequest, HttpResponse, read_request


class HttpServer:
    """Serve ``handler`` over every connection accepted from ``listener``."""

    def __init__(
        self,
        listener: Listener,
        handler: Callable[[HttpRequest], HttpResponse],
        *,
        name: str = "http-server",
    ) -> None:
        self._listener = listener
        self._handler = handler
        self._name = name
        self._accept_thread: threading.Thread | None = None
        self._running = False

    # ------------------------------------------------------------------

    def start(self) -> "HttpServer":
        """Start the accept loop in a daemon thread; returns self."""
        if self._running:
            raise RuntimeError("server already running")
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=self._name, daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting; existing connections finish their current request."""
        self._running = False
        self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "HttpServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                channel = self._listener.accept()
            except TransportError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_connection,
                args=(BufferedChannel(channel),),
                name=f"{self._name}-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, channel: BufferedChannel) -> None:
        try:
            while True:
                try:
                    request = read_request(channel)
                except TransportError:
                    return  # client went away between requests
                try:
                    response = self._handler(request)
                except HttpError as exc:
                    response = HttpResponse(400, body=str(exc).encode())
                except Exception as exc:  # noqa: BLE001 - server must not die
                    response = HttpResponse(500, body=f"{type(exc).__name__}: {exc}".encode())
                keep = request.keep_alive
                response.headers.set("Connection", "keep-alive" if keep else "close")
                channel.send_all(response.to_bytes())
                if not keep:
                    return
        finally:
            channel.close()
