"""Byte-accounting channel wrapper for the experiment harness.

The harness separates *measured CPU time* from *modelled wire time*: code
runs for real over in-memory pipes, while the network cost of every byte is
computed afterwards from the traffic profile this wrapper records.  A
:class:`ChannelStats` therefore captures exactly what the netsim TCP model
needs — how many bytes went each way and in how many application-level
bursts (each burst ≥ one round of packets ⇒ at least one RTT of pipelining
structure).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ChannelStats:
    """Traffic totals recorded by :class:`InstrumentedChannel`."""

    bytes_sent: int = 0
    bytes_received: int = 0
    sends: int = 0  #: number of send_all calls (application message bursts)
    #: Number of contiguous runs of data-returning recv calls.  One logical
    #: response read in many 64 KiB chunks is one application-level burst,
    #: not one per chunk — the per-burst RTT structure in the TCP model
    #: depends on this (a run ends when the application sends again).
    receives: int = 0

    def merge(self, other: "ChannelStats") -> None:
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.sends += other.sends
        self.receives += other.receives

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received


class InstrumentedChannel:
    """Wrap any channel, counting bytes in both directions."""

    def __init__(self, channel, stats: ChannelStats | None = None) -> None:
        self._channel = channel
        self.stats = stats if stats is not None else ChannelStats()
        self._in_recv_run = False

    def send_all(self, data: bytes) -> None:
        self._channel.send_all(data)
        self._in_recv_run = False
        self.stats.bytes_sent += len(data)
        self.stats.sends += 1

    def recv(self, max_bytes: int = 65536) -> bytes:
        chunk = self._channel.recv(max_bytes)
        if chunk:
            self.stats.bytes_received += len(chunk)
            if not self._in_recv_run:
                self.stats.receives += 1
                self._in_recv_run = True
        return chunk

    def close(self) -> None:
        self._channel.close()
