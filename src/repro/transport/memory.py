"""In-process transport: thread-safe byte pipes and a named network.

``memory_pipe()`` hands back two connected channel endpoints backed by
bounded-latency queues; :class:`MemoryNetwork` adds listen/connect semantics
by name so a client thread and a server thread can rendezvous exactly like
they would over sockets — but with zero OS involvement, which keeps the
experiment harness' CPU measurements clean of kernel noise.
"""

from __future__ import annotations

import queue
import threading

from repro.transport.base import TransportClosed, TransportError

_EOF = None  # sentinel on the chunk queue


class _PipeEnd:
    """One endpoint of a duplex in-memory pipe."""

    def __init__(self, send_q: queue.SimpleQueue, recv_q: queue.SimpleQueue) -> None:
        self._send_q = send_q
        self._recv_q = recv_q
        self._recv_buf = bytearray()
        self._send_closed = False
        self._recv_eof = False
        self._lock = threading.Lock()

    def send_all(self, data: bytes) -> None:
        with self._lock:
            if self._send_closed:
                raise TransportClosed("channel is closed")
        if data:
            self._send_q.put(bytes(data))

    def recv(self, max_bytes: int = 65536) -> bytes:
        if self._recv_buf:
            out = bytes(self._recv_buf[:max_bytes])
            del self._recv_buf[: len(out)]
            return out
        if self._recv_eof:
            return b""
        chunk = self._recv_q.get()
        if chunk is _EOF:
            self._recv_eof = True
            return b""
        if len(chunk) <= max_bytes:
            return chunk
        self._recv_buf.extend(chunk[max_bytes:])
        return chunk[:max_bytes]

    def close(self) -> None:
        with self._lock:
            if self._send_closed:
                return
            self._send_closed = True
        self._send_q.put(_EOF)
        # also wake a reader blocked on *this* end (socket shutdown
        # semantics): without it, closing an idle connection leaves its
        # reader thread asleep forever and a draining server waits on it
        self._recv_q.put(_EOF)


def memory_pipe() -> tuple[_PipeEnd, _PipeEnd]:
    """Create a connected duplex pipe; returns (end_a, end_b)."""
    q_ab: queue.SimpleQueue = queue.SimpleQueue()
    q_ba: queue.SimpleQueue = queue.SimpleQueue()
    return _PipeEnd(q_ab, q_ba), _PipeEnd(q_ba, q_ab)


class _MemoryListener:
    def __init__(self, network: "MemoryNetwork", name: str) -> None:
        self._network = network
        self._name = name
        self._pending: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False

    def accept(self):
        end = self._pending.get()
        if end is None:
            raise TransportClosed(f"listener {self._name!r} closed")
        return end

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._network._unregister(self._name)
            # fail connections still waiting in the backlog: their peers
            # would otherwise block forever on a response from a server
            # that will never accept them
            while True:
                try:
                    end = self._pending.get_nowait()
                except queue.Empty:
                    break
                if end is not None:
                    end.close()
            self._pending.put(None)

    def _enqueue(self, end) -> None:
        if self._closed:
            raise TransportError(f"listener {self._name!r} is closed")
        self._pending.put(end)


class MemoryNetwork:
    """A named in-process "network": listen/connect rendezvous by string key.

    One instance per test or experiment keeps endpoints isolated; there is
    deliberately no global default network.
    """

    def __init__(self) -> None:
        self._listeners: dict[str, _MemoryListener] = {}
        self._lock = threading.Lock()

    def listen(self, name: str) -> _MemoryListener:
        with self._lock:
            if name in self._listeners:
                raise TransportError(f"address {name!r} already in use")
            listener = _MemoryListener(self, name)
            self._listeners[name] = listener
            return listener

    def connect(self, name: str) -> _PipeEnd:
        with self._lock:
            listener = self._listeners.get(name)
        if listener is None:
            raise TransportError(f"connection refused: no listener at {name!r}")
        client_end, server_end = memory_pipe()
        listener._enqueue(server_end)
        return client_end

    def _unregister(self, name: str) -> None:
        with self._lock:
            self._listeners.pop(name, None)
