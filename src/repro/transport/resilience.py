"""Retry, timeout and deadline policies for transport operations.

Nothing in the seed stack had a deadline: a stalled peer hung the caller
forever, and the only retry logic (the HTTP client's stale-connection
resend) could duplicate non-idempotent SOAP invocations.  This module is
the one place those policies live:

* :class:`Deadline` — an absolute must-finish-by point, threaded from
  :meth:`SoapEngine.call <repro.core.engine.SoapEngine.call>` through the
  bindings down to individual channel reads;
* :class:`DeadlineChannel` — a channel wrapper enforcing a deadline at
  every operation boundary (channels here cannot be interrupted mid-read,
  so the check runs before and after each blocking call — enough to bound
  finite stalls and multi-read framed messages);
* :class:`RetryPolicy` — attempt budget plus exponential backoff with
  jitter;
* :func:`retry_call` — the generic retry loop, with a ``may_retry`` hook
  where idempotency rules live (a caller that has consumed response bytes
  for a non-idempotent request must veto the retry).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.transport.base import Channel, TransportError


class DeadlineExceeded(TransportError):
    """A per-call deadline expired before the operation finished."""


class ServerBusy(TransportError):
    """The server shed this request (HTTP 503 or equivalent overload signal).

    ``retry_after`` carries the server's backoff hint in seconds (parsed
    from a ``Retry-After`` header when one was sent, else ``None``).  The
    retry loop honours the hint: when an exception being retried exposes a
    ``retry_after`` attribute, that delay replaces the policy's computed
    exponential backoff — the server knows its own drain rate better than
    the client's guess does.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def parse_retry_after(value: str | None) -> float | None:
    """Parse the seconds form of a ``Retry-After`` header value.

    Accepts integer or decimal seconds; the HTTP-date form and garbage
    both return ``None`` (no hint) rather than failing the response.
    """
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


class RetryBudgetExhausted(TransportError):
    """Every attempt a :class:`RetryPolicy` allowed has failed.

    The last underlying failure is chained as ``__cause__`` and kept on
    :attr:`last_error`; :attr:`attempts` records how many were made.
    """

    def __init__(self, message: str, attempts: int, last_error: BaseException) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class Deadline:
    """An absolute point in time a call must finish by."""

    __slots__ = ("_at", "_clock")

    def __init__(self, at: float, clock: Callable[[], float] = time.monotonic) -> None:
        self._at = at
        self._clock = clock

    @classmethod
    def after(cls, seconds: float, clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(clock() + seconds, clock)

    @classmethod
    def never(cls) -> "Deadline":
        return cls(math.inf)

    def remaining(self) -> float:
        """Seconds left; negative once expired, ``inf`` for never."""
        return self._at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` when the deadline has passed."""
        if self.expired:
            raise DeadlineExceeded(f"deadline exceeded during {what}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


def as_deadline(value) -> Deadline | None:
    """Normalize the public ``deadline=`` parameter.

    Accepts ``None`` (no deadline), a number of seconds from now, or a
    :class:`Deadline` (passed through so one budget can span several
    operations).
    """
    if value is None or isinstance(value, Deadline):
        return value
    return Deadline.after(float(value))


class DeadlineChannel:
    """Channel wrapper enforcing a (mutable) deadline per operation.

    The :attr:`deadline` slot is rebindable so one wrapper can sit
    permanently in a connection's channel stack while each call installs
    its own budget (and clears it afterwards).
    """

    def __init__(self, channel: Channel, deadline: Deadline | None = None) -> None:
        self._channel = channel
        self.deadline = deadline

    def send_all(self, data: bytes) -> None:
        if self.deadline is not None:
            self.deadline.check("send")
        self._channel.send_all(data)
        if self.deadline is not None:
            self.deadline.check("send")

    def recv(self, max_bytes: int = 65536) -> bytes:
        if self.deadline is not None:
            self.deadline.check("receive")
        chunk = self._channel.recv(max_bytes)
        if self.deadline is not None:
            self.deadline.check("receive")
        return chunk

    def close(self) -> None:
        self._channel.close()


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and backoff shape for one class of operation."""

    #: Total attempts including the first (1 = no retries).
    max_attempts: int = 3
    #: Backoff before the second attempt, seconds.
    base_backoff: float = 0.005
    #: Multiplier applied per further attempt (exponential backoff).
    backoff_multiplier: float = 2.0
    #: Ceiling on any single backoff, seconds.
    max_backoff: float = 0.25
    #: Random spread as a fraction of the computed backoff (full jitter
    #: band ``[1-jitter, 1+jitter]``); deterministic under a seeded rng.
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff times must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff to sleep after failed ``attempt`` (1-based)."""
        raw = min(
            self.max_backoff,
            self.base_backoff * self.backoff_multiplier ** (attempt - 1),
        )
        if self.jitter and raw:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)


#: Exactly one attempt — the policy of code that manages its own retries.
NO_RETRY = RetryPolicy(max_attempts=1, base_backoff=0.0)


def retry_call(
    fn: Callable[[int], object],
    policy: RetryPolicy | None = None,
    *,
    deadline: Deadline | None = None,
    retryable: Callable[[BaseException], bool] | None = None,
    may_retry: Callable[[BaseException, int], bool] | None = None,
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
    metrics=None,
) -> object:
    """Run ``fn(attempt)`` under a retry budget and optional deadline.

    ``fn`` receives the 1-based attempt number.  A raised exception is
    retried when *all* of these hold:

    * ``retryable(exc)`` (default: any :class:`TransportError` that is not
      a :class:`DeadlineExceeded` — a blown deadline is terminal);
    * attempts remain in the budget;
    * the deadline (when given) still has room for the backoff;
    * ``may_retry(exc, attempt)`` consents (the idempotency hook).

    Exhausting the budget after more than one attempt raises
    :class:`RetryBudgetExhausted` chaining the last failure; a first-attempt
    failure that may not be retried propagates unwrapped.

    When the exception being retried exposes a ``retry_after`` attribute
    (see :class:`ServerBusy`), that hint replaces the policy's computed
    backoff for the pause before the next attempt — jitter and the
    exponential schedule are server-overridden, the deadline check is not.

    ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) additionally counts
    ``resilience_retries_total{error}`` per retry and
    ``resilience_exhausted_total{error}`` per spent budget — labelled,
    process-lifetime counters, where the ``obs`` ones live and die with
    the active trace recorder.
    """
    policy = policy if policy is not None else RetryPolicy()
    rng = rng if rng is not None else random.Random()
    if retryable is None:
        retryable = lambda exc: isinstance(exc, TransportError)  # noqa: E731
    for attempt in range(1, policy.max_attempts + 1):
        try:
            # each try gets its own child span so a traced request shows
            # where each attempt's time went; the retry.attempt/exhausted
            # events stay on the enclosing span (emitted after this one
            # closed), which is what the analysis tooling keys on
            with obs.span("resilience.attempt", kind="logical", attempt=attempt):
                return fn(attempt)
        except DeadlineExceeded:
            raise
        except Exception as exc:
            if not retryable(exc):
                raise
            if may_retry is not None and not may_retry(exc, attempt):
                raise
            if attempt >= policy.max_attempts:
                obs.event(
                    "retry.exhausted", attempts=attempt, error=type(exc).__name__
                )
                if metrics is not None:
                    metrics.counter(
                        "resilience_exhausted_total",
                        labels={"error": type(exc).__name__},
                    ).add()
                if attempt == 1:
                    raise
                raise RetryBudgetExhausted(
                    f"operation failed after {attempt} attempts: {exc}", attempt, exc
                ) from exc
            pause = policy.backoff_for(attempt, rng)
            # a server-supplied Retry-After hint wins over the computed
            # exponential backoff: the shedding side knows its drain rate
            hint = getattr(exc, "retry_after", None)
            if hint is not None:
                pause = max(0.0, float(hint))
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= pause:
                    raise DeadlineExceeded(
                        f"deadline would expire during backoff after attempt {attempt}"
                    ) from exc
            # the retry is happening: record the failed attempt and the
            # backoff it cost on the enclosing span
            obs.event(
                "retry.attempt",
                attempt=attempt,
                error=type(exc).__name__,
                backoff=pause,
            )
            obs.counter("resilience.retries").add()
            if metrics is not None:
                metrics.counter(
                    "resilience_retries_total", labels={"error": type(exc).__name__}
                ).add()
            if pause:
                sleep(pause)
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class ResiliencePolicy:
    """Bundle of retry + deadline + idempotency for one SOAP client/engine.

    Handing this to :class:`~repro.core.engine.SoapEngine` turns transport
    failures into bounded retries and, when the budget is spent, a
    ``soap:Server`` fault — graceful degradation instead of a raw
    transport exception.
    """

    retry: RetryPolicy = RetryPolicy()
    #: Default per-call budget in seconds (None = no deadline).
    deadline: float | None = None
    #: Whether this engine's calls may be replayed after a transport
    #: failure.  Non-idempotent calls are never retried by the engine.
    idempotent: bool = False
