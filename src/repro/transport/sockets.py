"""Real TCP socket channels (loopback or LAN).

The examples run the full stack over these; the benchmark harness prefers
:mod:`~repro.transport.memory` pipes to keep kernel noise out of timings.
"""

from __future__ import annotations

import socket

from repro.transport.base import TransportClosed, TransportError


class SocketChannel:
    """Channel over a connected TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._closed = False

    def send_all(self, data: bytes) -> None:
        if self._closed:
            raise TransportClosed("socket channel is closed")
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise TransportClosed(f"send failed: {exc}") from exc

    def recv(self, max_bytes: int = 65536) -> bytes:
        if self._closed:
            return b""
        try:
            return self._sock.recv(max_bytes)
        except OSError as exc:
            raise TransportClosed(f"recv failed: {exc}") from exc

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    @property
    def peer(self) -> tuple[str, int]:
        return self._sock.getpeername()


class TcpListener:
    """Listening socket yielding :class:`SocketChannel` per connection.

    Bind to port 0 to let the OS pick a free port (see :attr:`port`).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 16) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._sock.bind((host, port))
        except OSError as exc:
            self._sock.close()
            raise TransportError(f"cannot bind {host}:{port}: {exc}") from exc
        self._sock.listen(backlog)
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        return self._sock.getsockname()

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def raw_socket(self) -> socket.socket:
        """The listening socket itself.

        The event-driven server (:mod:`repro.transport.aio`) registers
        this with its selector and accepts non-blockingly, instead of
        parking a thread in :meth:`accept`.
        """
        return self._sock

    def accept(self) -> SocketChannel:
        try:
            conn, _peer = self._sock.accept()
        except OSError as exc:
            raise TransportClosed(f"listener closed: {exc}") from exc
        return SocketChannel(conn)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()


def connect_tcp(host: str, port: int, timeout: float | None = 10.0) -> SocketChannel:
    """Connect to a TCP endpoint and wrap it as a channel."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
    except OSError as exc:
        raise TransportError(f"cannot connect to {host}:{port}: {exc}") from exc
    return SocketChannel(sock)
