"""The TCP SOAP binding: length-prefixed messages straight on a stream.

§5.3 of the paper: "the TCP binding will just dump the serialization
directly to a TCP connection".  To make the stream self-describing enough
for the generic engine, each message carries a tiny fixed header::

    magic   2 bytes  0xB5 0x0A  ("BSOA")
    ctype   1 byte   length of the content-type tag
    ctag    n bytes  ASCII content-type (e.g. "application/bxsa")
    length  4 bytes  big-endian payload byte count
    payload

The content-type tag is how a server engine knows which encoding policy to
decode with — the wire-level counterpart of HTTP's ``Content-Type`` header,
kept deliberately minimal (the whole point of this binding is that framing
overhead is a handful of bytes, not an HTTP transaction).
"""

from __future__ import annotations

import struct

from repro import obs
from repro.transport.base import Channel, TransportError, recv_exactly
from repro.transport.resilience import DeadlineChannel, as_deadline

_MAGIC = b"\xb5\x0a"
_MAX_CONTENT_TYPE = 255
#: Refuse absurd sizes rather than allocate on hostile input.
MAX_MESSAGE_BYTES = 1 << 31


def write_message(channel: Channel, payload: bytes, content_type: str) -> int:
    """Frame and send one message; returns bytes put on the wire."""
    ctag = content_type.encode("ascii")
    if not 0 < len(ctag) <= _MAX_CONTENT_TYPE:
        raise TransportError(f"content type {content_type!r} not encodable")
    header = _MAGIC + bytes((len(ctag),)) + ctag + struct.pack(">I", len(payload))
    with obs.span("tcp.write", kind="cpu", bytes=len(header) + len(payload)):
        channel.send_all(header + payload)
    return len(header) + len(payload)


def read_message(channel: Channel) -> tuple[bytes, str]:
    """Read one framed message; returns (payload, content_type)."""
    with obs.span("tcp.read", kind="cpu") as sp:
        magic = recv_exactly(channel, 2)
        if magic != _MAGIC:
            raise TransportError(f"bad magic {magic!r} on TCP binding stream")
        (ctype_len,) = recv_exactly(channel, 1)
        ctag = recv_exactly(channel, ctype_len)
        (length,) = struct.unpack(">I", recv_exactly(channel, 4))
        if length > MAX_MESSAGE_BYTES:
            raise TransportError(f"message of {length} bytes exceeds limit")
        payload = recv_exactly(channel, length)
        sp.set("bytes", len(payload))
        try:
            return payload, str(ctag, "ascii")
        except UnicodeDecodeError as exc:
            raise TransportError(f"invalid content-type tag: {exc}") from exc


class TcpClientBinding:
    """Client half of the binding concept: send_request / receive_response.

    Both operations accept an optional ``deadline`` (seconds or a
    :class:`~repro.transport.resilience.Deadline`), enforced at every
    channel read/write of the framed message.
    """

    name = "tcp"

    def __init__(self, channel: Channel) -> None:
        self._channel = channel
        self._shim = DeadlineChannel(channel)

    def send_request(self, payload: bytes, content_type: str, *, deadline=None) -> int:
        return write_message(self._bounded(deadline), payload, content_type)

    def receive_response(self, *, deadline=None) -> tuple[bytes, str]:
        return read_message(self._bounded(deadline))

    def _bounded(self, deadline) -> Channel:
        dl = as_deadline(deadline)
        if dl is None:
            return self._channel
        self._shim.deadline = dl
        return self._shim

    def close(self) -> None:
        self._channel.close()


class TcpServerBinding:
    """Server half of the binding concept: receive_request / send_response."""

    name = "tcp"

    def __init__(self, channel: Channel) -> None:
        self._channel = channel

    def receive_request(self) -> tuple[bytes, str]:
        return read_message(self._channel)

    def send_response(self, payload: bytes, content_type: str) -> int:
        return write_message(self._channel, payload, content_type)

    def close(self) -> None:
        self._channel.close()
