"""Workload generators for the evaluation.

* :mod:`~repro.workloads.lead` — the paper's benchmark dataset: a LEAD-like
  atmospheric sample reduced to an int32 index array plus a float64 value
  array of equal length (the "model size");
* :mod:`~repro.workloads.sensors` — the small-but-frequent message regime
  the introduction motivates with wide-scale wireless sensor networks;
* :mod:`~repro.workloads.datamining` — the large-binary-transfer regime
  motivated with distributed data mining.
"""

from repro.workloads.lead import LeadDataset, lead_dataset
from repro.workloads.sensors import SensorReading, sensor_stream
from repro.workloads.datamining import feature_block

__all__ = [
    "LeadDataset",
    "SensorReading",
    "feature_block",
    "lead_dataset",
    "sensor_stream",
]
