"""Data-mining workload: large binary feature blocks.

The paper's introduction cites distributed data mining (Open DMIX /
SOAP+ in related work) as the large-transfer regime: "a large binary data
set usually must be transmitted".  A feature block is a dense float64
matrix shipped as one flattened ArrayElement plus its shape, the pattern a
distributed learner uses to move partitions between workers.
"""

from __future__ import annotations

import numpy as np

from repro.xdm.builder import array, element, leaf
from repro.xdm.nodes import ElementNode


def feature_block(n_rows: int, n_features: int, seed: int = 0) -> np.ndarray:
    """A dense feature matrix (rows × features), deterministic."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n_rows, n_features))


def block_to_bxdm(block: np.ndarray, block_id: int = 0) -> ElementNode:
    """Ship a matrix as shape leaves + one flattened packed array."""
    if block.ndim != 2:
        raise ValueError(f"feature blocks are 2-D, got shape {block.shape}")
    return element(
        "block",
        leaf("id", int(block_id), "int"),
        leaf("rows", int(block.shape[0]), "int"),
        leaf("features", int(block.shape[1]), "int"),
        array("data", np.ascontiguousarray(block).reshape(-1), item_name="x"),
    )


def block_from_bxdm(node: ElementNode) -> tuple[int, np.ndarray]:
    """Rebuild (block_id, matrix) from the wire form."""
    from repro.xdm.path import children_named

    block_id = children_named(node, "id")[0].value
    rows = children_named(node, "rows")[0].value
    features = children_named(node, "features")[0].value
    flat = np.asarray(children_named(node, "data")[0].values, dtype="f8")
    if flat.size != rows * features:
        raise ValueError(f"data length {flat.size} does not match {rows}x{features}")
    return block_id, flat.reshape(rows, features)
