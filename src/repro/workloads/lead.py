"""The paper's benchmark dataset (§6): a LEAD-like atmospheric sample.

"The binary data model we are using in the experiments was derived from a
sample file used for LEAD project, and consists of atmospheric information,
which depends on four parameters, namely time, y, x and height.  Basically
the data set consists of two equal-size arrays: an array of 4-byte integers
as the index and an array of double-precision, 8-byte floating point
numbers to represent the dimension values."

``model_size`` is the length of each array, exactly the paper's notation;
the native representation is therefore ``model_size × 12`` bytes.

Values are atmospheric-style quantities quantized to centi-units: Table 1's
XML measurement (99 % overhead ⇒ ≈5 lexical characters per number) tells us
the original sample's values printed short, as observational data does —
full-precision random doubles would print 17 characters and triple the XML
size, misrepresenting the paper's own workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netcdf.model import Dataset
from repro.xdm.builder import array, element
from repro.xdm.nodes import DocumentNode, ElementNode


@dataclass(frozen=True)
class LeadDataset:
    """The two equal-size arrays; ``model_size == len(index) == len(values)``."""

    index: np.ndarray  #: int32, shape (model_size,)
    values: np.ndarray  #: float64, shape (model_size,)

    def __post_init__(self) -> None:
        if self.index.shape != self.values.shape:
            raise ValueError("index and values must have equal length")

    @property
    def model_size(self) -> int:
        return int(self.index.size)

    @property
    def native_bytes(self) -> int:
        """Size of the native representation: model_size × (4 + 8)."""
        return int(self.index.nbytes + self.values.nbytes)

    # ------------------------------------------------------------------
    # conversions to the systems under test

    def to_bxdm(self) -> ElementNode:
        """The unified-scheme payload: two ArrayElements, namespace-free
        with one-character item names (the paper's Table 1 XML setup)."""
        return element(
            "d",
            array("i", self.index, item_name="i"),
            array("v", self.values, item_name="v"),
        )

    def to_document(self) -> DocumentNode:
        return DocumentNode([self.to_bxdm()])

    def to_netcdf(self) -> Dataset:
        """The separated-scheme payload: a classic netCDF dataset."""
        ds = Dataset()
        ds.attributes["title"] = "LEAD-like atmospheric sample"
        if self.model_size:
            ds.create_dimension("model", self.model_size)
            dims: tuple[str, ...] = ("model",)
        else:
            dims = ("model",)
            ds.create_dimension("model", 1)  # classic format needs length ≥ 1
            # zero-size datasets are only used for the zero point of Fig. 4,
            # which short-circuits before serialization
        ds.create_variable("index", self.index if self.model_size else np.zeros(1, "i4"), dims)
        ds.create_variable("values", self.values if self.model_size else np.zeros(1, "f8"), dims)
        return ds

    @classmethod
    def from_bxdm(cls, node: ElementNode) -> "LeadDataset":
        from repro.xdm.path import children_named

        index = children_named(node, "i")[0].values
        values = children_named(node, "v")[0].values
        return cls(np.asarray(index, dtype="i4"), np.asarray(values, dtype="f8"))

    # ------------------------------------------------------------------

    def verify(self) -> dict:
        """The verification the paper's server performs on every value.

        Vectorized checks: the index is the expected 0..n-1 ramp and every
        value is inside the physically-plausible band the generator uses.
        Returns a result record (all Python scalars) for the response
        message.
        """
        n = self.model_size
        index_ok = bool(np.array_equal(self.index, np.arange(n, dtype="i4")))
        finite = np.isfinite(self.values)
        in_range = (self.values >= _VALUE_LO) & (self.values <= _VALUE_HI)
        valid = int(np.count_nonzero(finite & in_range))
        return {
            "count": n,
            "valid": valid,
            "index_ok": index_ok,
            "ok": index_ok and valid == n,
            "checksum": float(self.values.sum()),
        }


_VALUE_LO = -150.0
_VALUE_HI = 1150.0


def lead_dataset(model_size: int, seed: int = 0) -> LeadDataset:
    """Generate a deterministic LEAD-like dataset of the given model size.

    Values mimic the sample file's dimension values (temperatures/heights
    in plausible ranges), quantized to 2 decimals — see module docstring.
    """
    rng = np.random.default_rng(seed)
    index = np.arange(model_size, dtype="i4")
    values = np.round(rng.uniform(0.0, 1000.0, model_size), 2)
    return LeadDataset(index, values)
